"""Benchmark-harness helpers.

Each ``benchmarks/test_figXX.py`` regenerates one of the paper's tables or
figures through ``pytest-benchmark`` (timing the whole experiment driver)
and writes the reproduction table to ``results/<figure>.txt``.

Scale selection: ``REPRO_SCALE=smoke|default|full`` (default: smoke, so the
harness completes in minutes; use ``default``/``full`` for paper-grade
numbers as recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import pathlib
import sys

sys.setrecursionlimit(100000)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def scale() -> str:
    return os.environ.get("REPRO_SCALE", "smoke")


def save_result(name: str, result) -> None:
    """Persist an ExperimentResult (or dict of them) under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    if isinstance(result, dict):
        text = "\n\n".join(part.to_text() for part in result.values())
    else:
        text = result.to_text()
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_and_save(benchmark, name: str, fn, **kwargs):
    """Benchmark one experiment driver and persist its table."""
    result = benchmark.pedantic(lambda: fn(scale=scale(), **kwargs), rounds=1, iterations=1)
    save_result(name, result)
    return result
