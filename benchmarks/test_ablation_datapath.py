"""Ablation: jsldrsmi datapath — parallel vs serial untag.

Fig. 12 performs the untagging shift *in parallel* with the Not-a-SMI
check, so the extended load has the same latency as a plain ldr.  This
bench re-times Fig. 13 with a +1-cycle serial untag to show how much of
the extension's win depends on that datapath choice.
"""

import dataclasses

from conftest import save_result, scale

from repro.experiments.common import ExperimentResult, resolve_scale
from repro.experiments.fig13_isa_speedup import collect_traces
from repro.suite import smi_kernels
from repro.uarch.pipeline.configs import O3_KPG, INORDER_LITTLE
from repro.uarch.pipeline.inorder import simulate


def test_ablation_smi_datapath(benchmark):
    def run():
        chosen = resolve_scale(scale())
        warmup = max(6, chosen.iterations // 4)
        result = ExperimentResult(
            experiment="Ablation: SMI-load datapath",
            description="extension speedup: parallel untag (paper) vs +1-cycle serial",
            columns=["benchmark", "cpu", "parallel %", "serial %"],
        )
        kernels = smi_kernels()[:3] if chosen.name == "smoke" else smi_kernels()
        for spec in kernels:
            base = collect_traces(spec, "arm64", 1, warmup, 2)[0]
            extended = collect_traces(spec, "arm64+smi", 1, warmup, 2)[0]
            for cpu in (INORDER_LITTLE, O3_KPG):
                base_cycles = simulate(base, cpu).cycles
                parallel = simulate(extended, cpu).cycles
                serial = simulate(
                    extended, dataclasses.replace(cpu, smi_load_extra=1)
                ).cycles
                result.rows.append(
                    {
                        "benchmark": spec.name,
                        "cpu": cpu.name,
                        "parallel %": (base_cycles / parallel - 1) * 100.0,
                        "serial %": (base_cycles / serial - 1) * 100.0,
                    }
                )
        result.notes.append(
            "the parallel untag of Fig. 12 is what keeps the extended load"
            " at plain-ldr latency; a serial datapath gives back part of the"
            " speedup on latency-sensitive (in-order) cores"
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_datapath", result)
    for row in result.rows:
        assert row["serial %"] <= row["parallel %"] + 0.5
