"""Ablation: branch-predictor strength vs the 'branches are nearly free'
claim.

The paper's Fig. 10 conclusion — check *branches* barely matter because
they are almost always predicted — should weaken on a core with a bad
predictor.  We simulate the same traces with normal and pathological
mispredict penalties/predictors.
"""

import dataclasses

from conftest import save_result, scale

from repro.engine import Engine, EngineConfig
from repro.experiments.common import ExperimentResult, resolve_scale
from repro.suite import smi_kernels
from repro.uarch.pipeline.configs import O3_KPG
from repro.uarch.pipeline.inorder import simulate


def _trace(spec, branches, warmup):
    engine = Engine(EngineConfig(target="arm64", emit_check_branches=branches))
    engine.load(spec.source)
    engine.call_global("setup")
    for _ in range(warmup):
        engine.call_global("run")
    engine.executor.trace = []
    for _ in range(2):
        engine.call_global("run")
    trace = engine.executor.trace
    engine.executor.trace = None
    return trace


def test_ablation_predictor_strength(benchmark):
    def run():
        chosen = resolve_scale(scale())
        warmup = max(6, chosen.iterations // 3)
        result = ExperimentResult(
            experiment="Ablation: predictor strength",
            description="speedup from removing check branches vs mispredict penalty",
            columns=["benchmark", "penalty=12", "penalty=40", "penalty=80"],
        )
        kernels = smi_kernels()[:3] if chosen.name == "smoke" else smi_kernels()
        for spec in kernels:
            with_branches = _trace(spec, True, warmup)
            without = _trace(spec, False, warmup)
            row = {"benchmark": spec.name}
            for penalty in (12, 40, 80):
                cpu = dataclasses.replace(O3_KPG, mispredict_penalty=penalty)
                base = simulate(with_branches, cpu).cycles
                nobr = simulate(without, cpu).cycles
                row[f"penalty={penalty}"] = (base / nobr - 1) * 100.0
            result.rows.append(row)
        result.notes.append(
            "deopt branches themselves predict near-perfectly; the penalty"
            " sensitivity comes from the second-order effect the paper also"
            " observes: removing them improves prediction of the *remaining*"
            " branches (gshare history pollution) — amplified here because"
            " our dense kernels carry several times the paper's deopt-branch"
            " share"
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_predictor", result)
    assert result.rows
