"""Ablation: 31-bit vs 32-bit SMIs.

Paper Section II-B.2: "32-bit SMIs still use the LSB for tagging, and
require the same deoptimization checks and untagging shift.  Therefore,
our results do not depend on the chosen SMIs representation."  We verify:
static check counts are identical and steady-state overheads nearly so.
"""

from conftest import save_result, scale

from repro.engine import EngineConfig
from repro.experiments.common import ExperimentResult, resolve_scale, suite_for_scale
from repro.suite import BenchmarkRunner, NoiseModel


def test_ablation_smi_width(benchmark):
    def run():
        chosen = resolve_scale(scale())
        result = ExperimentResult(
            experiment="Ablation: SMI width",
            description="31-bit vs 32-bit SMIs: checks emitted + steady cycles",
            columns=[
                "benchmark", "checks 31b", "checks 32b", "steady 31b", "steady 32b",
            ],
        )
        for spec in suite_for_scale(chosen):
            row = {"benchmark": spec.name}
            for bits in (31, 32):
                config = EngineConfig(target="arm64", smi_bits=bits)
                outcome = BenchmarkRunner(
                    spec, config, NoiseModel(enabled=False)
                ).run(iterations=chosen.iterations)
                assert outcome.valid, (spec.name, bits)
                row[f"checks {bits}b"] = outcome.code_stats["deopt_branches"]
                row[f"steady {bits}b"] = outcome.steady_state_cycles
            result.rows.append(row)
        result.notes.append(
            "paper: results do not depend on the SMI representation; the"
            " same checks and untagging shifts are required either way"
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_smi_width", result)
    for row in result.rows:
        if row["steady 31b"] and row["steady 32b"]:
            ratio = row["steady 31b"] / row["steady 32b"]
            assert 0.7 < ratio < 1.4, row
