"""Ablation: PC-sampling attribution window vs ground truth.

The paper picks a 1-instruction window on x64 and 2 on ARM64 because "a
window size of two aligns best with the exact overhead measurements".  Our
compiler provenance provides the ground truth the authors lacked, so this
bench re-attributes the *same* samples under windows 0-3 and compares.
"""

from conftest import save_result, scale

from repro.engine import Engine, EngineConfig
from repro.experiments.common import ExperimentResult, resolve_scale, suite_for_scale
from repro.profiling.attribution import attribute_samples
from repro.profiling.sampler import attach_sampler

WINDOWS = (0, 1, 2, 3)


def _profile(spec, iterations, target="arm64"):
    engine = Engine(EngineConfig(target=target))
    engine.load(spec.source)
    engine.call_global("setup")
    for _ in range(max(4, iterations // 4)):
        engine.call_global("run")
    sampler = attach_sampler(engine, 211.0)
    for _ in range(iterations):
        engine.call_global("run")
    return sampler


def test_ablation_window_size(benchmark):
    def run():
        chosen = resolve_scale(scale())
        result = ExperimentResult(
            experiment="Ablation: attribution window",
            description="window-heuristic overhead vs compiler ground truth (arm64)",
            columns=["benchmark"]
            + [f"w={w} %" for w in WINDOWS]
            + ["truth %", "truth+shared %"],
        )
        for spec in suite_for_scale(chosen):
            sampler = _profile(spec, chosen.iterations)
            row = {"benchmark": spec.name}
            for window in WINDOWS:
                estimate = attribute_samples(sampler, "window", window=window)
                row[f"w={window} %"] = 100.0 * estimate.overhead
            truth = attribute_samples(sampler, "truth")
            truth_shared = attribute_samples(sampler, "truth", count_shared=True)
            row["truth %"] = 100.0 * truth.overhead
            row["truth+shared %"] = 100.0 * truth_shared.overhead
            result.rows.append(row)
        result.notes.append(
            "paper: a window of 2 'aligns best with the exact overhead"
            " measurements' on ARM64 — small windows undercount RISC checks,"
            " larger ones absorb unrelated neighbours"
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_window", result)
    # Window estimates must be monotone in the window size.
    for row in result.rows:
        values = [row[f"w={w} %"] for w in WINDOWS]
        assert values == sorted(values)
