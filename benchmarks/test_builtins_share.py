"""Section VII — builtin share of execution time."""

from conftest import run_and_save

from repro.experiments import builtin_time


def test_builtin_share(benchmark):
    result = run_and_save(benchmark, "builtins", builtin_time.run)
    shares = {row["benchmark"]: row["builtin %"] for row in result.rows}
    assert all(0 <= share <= 100 for share in shares.values())
