"""Fig. 1 — check density per 100 JIT instructions."""

from conftest import run_and_save

from repro.experiments import fig01_check_density


def test_fig01_check_density(benchmark):
    result = run_and_save(benchmark, "fig01", fig01_check_density.run)
    densities = [
        value
        for row in result.rows
        for key, value in row.items()
        if key.endswith("checks/100") and value
    ]
    assert densities
    # Paper: 2-10 checks per 100 instructions; our kernel-sized benchmarks
    # run denser (see EXPERIMENTS.md) but stay in a plausible band.
    assert all(0 < d < 40 for d in densities)
