"""Fig. 3 — annotated assembly listing with PC samples."""

from conftest import run_and_save

from repro.experiments import fig03_annotated_asm


def test_fig03_annotated_listing(benchmark):
    result = run_and_save(benchmark, "fig03", fig03_annotated_asm.run)
    text = result.to_text()
    assert "check" in text
