"""Fig. 4 — check frequency and overhead by group."""

from conftest import run_and_save

from repro.experiments import fig04_breakdown


def test_fig04_breakdown(benchmark):
    tables = run_and_save(benchmark, "fig04", fig04_breakdown.run)
    overhead = tables["overhead"]
    regex_rows = [r for r in overhead.rows if r["benchmark"].startswith("REGEX")]
    other_rows = [r for r in overhead.rows if not r["benchmark"].startswith("REGEX")]
    if regex_rows and other_rows:
        # Paper: regex benchmarks show essentially no check overhead.
        regex_mean = sum(r["total %"] for r in regex_rows) / len(regex_rows)
        other_mean = sum(r["total %"] for r in other_rows) / len(other_rows)
        assert regex_mean < other_mean
