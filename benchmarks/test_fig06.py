"""Fig. 6 — per-iteration time with vs without checks (+ leftovers)."""

from conftest import run_and_save, scale

from repro.experiments import fig06_iteration_profile, leftover


def test_fig06_iteration_profile(benchmark):
    result = run_and_save(benchmark, "fig06", fig06_iteration_profile.run)
    diffs = [row["time diff %"] for row in result.rows]
    assert sum(diffs) / len(diffs) > 0  # checks cost time on average
    speedups = [row["steady speedup vs iter0"] for row in result.rows]
    assert max(speedups) > 1.5  # warm-up curve exists


def test_leftover_checks(benchmark):
    result = benchmark.pedantic(
        lambda: leftover.run(scale=scale()), rounds=1, iterations=1
    )
    from conftest import save_result

    save_result("leftover", result)
    assert result.notes
