"""Fig. 7 — per-benchmark speedups from both estimators."""

from conftest import run_and_save

from repro.experiments import fig07_speedups


def test_fig07_speedups(benchmark):
    result = run_and_save(benchmark, "fig07", fig07_speedups.run)
    speedups = [row["removal speedup"] for row in result.rows]
    assert all(s > 0.85 for s in speedups)
    assert max(speedups) > 1.02
