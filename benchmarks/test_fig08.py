"""Fig. 8 — speedups by benchmark category."""

from conftest import run_and_save

from repro.experiments import fig08_categories


def test_fig08_categories(benchmark):
    result = run_and_save(benchmark, "fig08", fig08_categories.run)
    by_category = {row["category"]: row for row in result.rows}
    if "Regex" in by_category and "Sparse" in by_category:
        # Paper: math/sparse benefit most, regex essentially not at all.
        assert (
            by_category["Regex"]["removal speedup (geomean)"]
            <= by_category["Sparse"]["removal speedup (geomean)"]
        )
