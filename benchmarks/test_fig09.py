"""Fig. 9 — correlation of the two overhead estimators."""

from conftest import run_and_save

from repro.experiments import fig09_correlation


def test_fig09_correlation(benchmark):
    result = run_and_save(benchmark, "fig09", fig09_correlation.run)
    for row in result.rows:
        assert row["r"] > 0  # statistically positive correlation
