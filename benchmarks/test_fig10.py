"""Fig. 10 — removing only the check branches."""

from conftest import run_and_save

from repro.experiments import fig10_branch_cost


def test_fig10_branch_cost(benchmark):
    result = run_and_save(benchmark, "fig10", fig10_branch_cost.run)
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    branches = mean([row["d branches %"] for row in result.rows])
    cycles = mean([row["d cycles %"] for row in result.rows])
    # Paper: -20 % branches but only -1..-2 % cycles.
    assert branches < -5
    assert abs(cycles) < abs(branches)
