"""Fig. 13 — SMI ISA extension speedups on the gem5-like CPU models."""

from conftest import run_and_save

from repro.experiments import fig13_isa_speedup


def test_fig13_isa_speedup(benchmark):
    result = run_and_save(benchmark, "fig13", fig13_isa_speedup.run)
    reductions = [row["time reduction %"] for row in result.rows]
    assert sum(reductions) / len(reductions) > 0  # net win (paper: ~3 %)
    instr = [row["instr reduction %"] for row in result.rows]
    assert sum(instr) / len(instr) > 1  # fewer retired instructions (paper: ~4 %)
