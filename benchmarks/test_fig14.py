"""Fig. 14 — execution-time distributions, default vs SMI-extended ISA."""

from conftest import run_and_save

from repro.experiments import fig14_distributions


def test_fig14_distributions(benchmark):
    result = run_and_save(benchmark, "fig14", fig14_distributions.run)
    assert result.rows
    assert {row["isa"] for row in result.rows} == {"default", "smi-ext"}
