#!/usr/bin/env python3
"""Measure deoptimization-check overhead on one benchmark, both ways.

Replicates the paper's two estimators (Sections III-A and III-B) on a
single benchmark of your choice:

* PC sampling with the window heuristic -> estimated overhead per check
  group (plus the ground-truth attribution the paper could not have);
* check removal (Fig. 5 short-circuiting) -> measured speedup.

Run:  python examples/check_overhead_analysis.py [BENCHMARK] [TARGET]
      python examples/check_overhead_analysis.py SPMV-CSR-SMI arm64
"""

import sys

from repro.engine import Engine, EngineConfig
from repro.jit.checks import CheckGroup
from repro.profiling.attribution import attribute_samples
from repro.profiling.sampler import attach_sampler
from repro.suite import BenchmarkRunner, NoiseModel, determine_removable_kinds, get_benchmark

ITERATIONS = 60


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "SPMV-CSR-SMI"
    target = sys.argv[2] if len(sys.argv) > 2 else "arm64"
    spec = get_benchmark(name)
    print(f"benchmark {spec.name} [{spec.category}] on {target}\n")

    # ---- estimator 1: PC sampling --------------------------------------
    engine = Engine(EngineConfig(target=target))
    engine.load(spec.source)
    engine.call_global("setup")
    for _ in range(ITERATIONS // 4):
        engine.call_global("run")  # warm up
    sampler = attach_sampler(engine, period=211.0)
    for _ in range(ITERATIONS):
        engine.call_global("run")

    window = attribute_samples(sampler, "window")
    truth = attribute_samples(sampler, "truth", count_shared=True)
    print("== PC sampling (perf-style) ==")
    print(f"   samples: {sampler.total_samples} ({window.jit_share:.0%} in JIT code)")
    print(f"   check overhead (window heuristic): {window.overhead:.1%}")
    print(f"   check overhead (ground truth):     {truth.overhead:.1%}")
    print("   by group (window):")
    for group, share in sorted(window.by_group().items(), key=lambda kv: -kv[1]):
        print(f"      {group.value:<12} {share:.1%}")
    print(f"   estimated speedup if removed: {window.estimated_speedup:.3f}x")

    # ---- estimator 2: check removal -------------------------------------
    removable, leftovers = determine_removable_kinds(
        spec, EngineConfig(target=target), iterations=ITERATIONS // 2
    )
    if leftovers:
        print(
            "\n   leftover checks kept for correctness: "
            + ", ".join(sorted(k.name for k in leftovers))
        )
    base = BenchmarkRunner(spec, EngineConfig(target=target), NoiseModel(enabled=False)).run(
        iterations=ITERATIONS
    )
    removed = BenchmarkRunner(
        spec,
        EngineConfig(target=target, removed_checks=removable),
        NoiseModel(enabled=False),
    ).run(iterations=ITERATIONS)
    assert removed.result == base.result or spec.tolerance, "removal broke semantics!"

    speedup = base.steady_state_cycles / removed.steady_state_cycles
    print("\n== check removal (TurboFan-patch-style) ==")
    print(f"   steady-state cycles with checks:    {base.steady_state_cycles:12.0f}")
    print(f"   steady-state cycles without checks: {removed.steady_state_cycles:12.0f}")
    print(f"   measured speedup: {speedup:.3f}x")
    print(
        "\nThe two estimates use entirely different machinery; their"
        " agreement (or gap) is what the paper's Fig. 9 quantifies."
    )


if __name__ == "__main__":
    main()
