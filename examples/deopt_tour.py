#!/usr/bin/env python3
"""A guided tour of deoptimization: trigger every major eager check.

For each check group of the paper's taxonomy (Section II-B), warms a
function on one type profile and then feeds it an input that violates the
speculation, printing the deopt event and the re-optimized behaviour.

Run:  python examples/deopt_tour.py
"""

from repro.engine import Engine, EngineConfig

SCENARIOS = [
    (
        "Not-a-SMI (SMI group)",
        "function f(x) { return x + 1; }",
        [(1,)] * 30,
        (2.5,),
    ),
    (
        "Overflow (Arithmetic group)",
        "function f(x) { return x + 1; }",
        [(1,)] * 30,
        (2**30 - 1,),
    ),
    (
        "Out-of-bounds (Bounds group)",
        """
        var a = [1, 2, 3, 4];
        function f(i) { return a[i]; }
        """,
        [(1,), (2,)] * 15,
        (17,),
    ),
    (
        "Wrong map (Map group)",
        """
        function f(o) { return o.x; }
        """,
        [({"x": 1},)] * 30,
        ({"other": 0, "x": 2},),
    ),
    (
        "Wrong call target (Type group)",
        """
        function one() { return 1; }
        function two() { return 2; }
        var fn = one;
        function f() { return fn(); }
        function swap() { fn = two; }
        """,
        [()] * 30,
        None,  # handled specially below
    ),
    (
        "Division by zero (Arithmetic group)",
        "function f(a, b) { return a / b; }",
        [(8, 2)] * 30,
        (8, 0),
    ),
    (
        "Lost precision (Arithmetic group)",
        "function f(a, b) { return a / b; }",
        [(8, 2)] * 30,
        (7, 2),
    ),
]


def main() -> None:
    for title, source, warm_calls, trigger in SCENARIOS:
        engine = Engine(EngineConfig(target="arm64"))
        engine.load(source)
        for args in warm_calls:
            engine.call_global("f", *args)
        shared = next(fn for fn in engine.functions if fn.name == "f")
        assert shared.code is not None, title

        if trigger is None:  # the call-target scenario rebinds the global
            engine.call_global("swap")
            result = engine.call_global("f")
        else:
            result = engine.call_global("f", *trigger)

        events = [e for e in engine.deopt_events]
        print(f"== {title} ==")
        print(f"   trigger result: {result!r}")
        for event in events[-2:]:
            print(
                f"   deopt: {event.kind.name} ({event.kind.name in title and 'as expected' or event.kind.name})"
                f" at bytecode {event.bytecode_pc}"
            )
        print(f"   code discarded: {shared.code is None},"
              f" reopt budget used: {shared.reopt_count}")
        print()

    print(
        "Each failure resumed in the interpreter at the checkpoint before"
        " the failed operation (paper Section II-B), generalized the type"
        " feedback, and re-optimized with a raised tier-up threshold."
    )


if __name__ == "__main__":
    main()
