#!/usr/bin/env python3
"""The jsldrsmi ISA extension, end to end (paper Section V).

Compiles an SMI-heavy kernel for plain ARM64 and for ARM64 with the SMI
load extension, shows the machine-code diff (ldr+asr / ldr+tst+b.ne+asr
fused into a single jsldrsmi with commit-time bailout), then times both on
the gem5-like in-order and out-of-order CPU models.

Run:  python examples/isa_extension_demo.py
"""

from repro.engine import Engine, EngineConfig
from repro.isa.base import MOp
from repro.suite import get_benchmark
from repro.uarch import GEM5_CPUS, simulate

KERNEL = "DP"
WARMUP = 30
MEASURED = 3


def compile_and_trace(target: str):
    spec = get_benchmark(KERNEL)
    engine = Engine(EngineConfig(target=target))
    engine.load(spec.source)
    engine.call_global("setup")
    for _ in range(WARMUP):
        engine.call_global("run")
    engine.executor.trace = []
    for _ in range(MEASURED):
        engine.call_global("run")
    trace = engine.executor.trace
    engine.executor.trace = None
    hot = max(
        (f for f in engine.functions if f.code is not None),
        key=lambda f: len(f.code.instrs),
    )
    fused = sum(
        sum(1 for i in f.code.instrs if i.op == MOp.JSLDRSMI)
        for f in engine.functions
        if f.code is not None
    )
    return hot.code, trace, fused


def main() -> None:
    base_code, base_trace, _ = compile_and_trace("arm64")
    ext_code, ext_trace, fused = compile_and_trace("arm64+smi")

    print(f"== {KERNEL} kernel, default ARM64 ==")
    print(base_code.annotated_asm())
    print(f"\n== {KERNEL} kernel, ARM64 + SMI load extension ==")
    print(ext_code.annotated_asm())

    print(f"\n{fused} SMI loads fused into jsldrsmi (check + untag folded in)")
    print(
        f"dynamic instructions per measurement: {len(base_trace)} -> "
        f"{len(ext_trace)} "
        f"({100 * (1 - len(ext_trace) / len(base_trace)):.1f} % fewer retired"
        " instructions; paper: ~4 %)"
    )

    print(f"\n{'CPU model':<16} {'default':>12} {'smi-ext':>12} {'speedup':>9}")
    for cpu in GEM5_CPUS:
        base_stats = simulate(base_trace, cpu)
        ext_stats = simulate(ext_trace, cpu)
        speedup = base_stats.cycles / ext_stats.cycles
        print(
            f"{cpu.name:<16} {base_stats.cycles:12.0f} {ext_stats.cycles:12.0f}"
            f" {speedup:8.3f}x"
        )
    print(
        "\npaper Fig. 13: ~3 % average execution-time reduction, up to 10 %"
        " on SMI-heavy kernels; in-order cores benefit slightly more on"
        " average."
    )


if __name__ == "__main__":
    main()
