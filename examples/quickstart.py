#!/usr/bin/env python3
"""Quickstart: run JavaScript through the engine and watch it tier up.

Demonstrates the pipeline of the paper's Fig. 2: interpretation with type
feedback, speculative optimization, the deoptimization checks in the
generated machine code, and a live deoptimization when a speculation fails.

Run:  python examples/quickstart.py
"""

from repro import Engine, EngineConfig

SOURCE = """
function weightedSum(values, weights) {
  var acc = 0;
  for (var i = 0; i < values.length; i++) {
    acc = acc + values[i] * weights[i];
  }
  return acc;
}

var values  = [1, 2, 3, 4, 5, 6, 7, 8];
var weights = [8, 7, 6, 5, 4, 3, 2, 1];
function run() { return weightedSum(values, weights); }
"""


def main() -> None:
    engine = Engine(EngineConfig(target="arm64"))
    engine.load(SOURCE)

    print("== warming up (interpreter collects type feedback) ==")
    result = None
    for i in range(30):
        result = engine.call_global("run")
        if any(f.code is not None for f in engine.functions):
            print(f"   tiered up to optimized code after iteration {i}")
            break
    for _ in range(10):
        result = engine.call_global("run")
    print(f"   result = {result}")

    # weightedSum is small and side-effect free, so the optimizer inlines it
    # into run(); inspect whichever function ended up holding the hot code.
    shared = max(
        (f for f in engine.functions if f.code is not None),
        key=lambda f: len(f.code.instrs),
    )
    print(f"   hot compiled function: {shared.name}"
          f" (weightedSum was inlined into it)" if shared.name == "run" else "")
    stats = shared.code.check_instruction_stats()
    print("\n== optimized machine code (ARM64 flavour) ==")
    print(shared.code.annotated_asm())
    print(
        f"\n   {len(shared.code.deopt_points)} deoptimization checks over "
        f"{stats['body_instructions']} instructions "
        f"({100 * len(shared.code.deopt_points) / stats['body_instructions']:.1f}"
        " checks per 100 instructions — the paper's Fig. 1 metric)"
    )

    print("\n== now break a speculation: store a double into the SMI array ==")
    engine.load("function poison() { values[3] = 4.5; }")
    engine.call_global("poison")
    result = engine.call_global("run")
    print(f"   result after poisoning = {result}")
    for event in engine.deopt_events:
        print(
            f"   deopt event: {event.kind.name} in {event.function_name}"
            f" at bytecode {event.bytecode_pc}"
        )
    print(
        "\n   the engine fell back to the interpreter, generalized its"
        " feedback, and will re-optimize with double arithmetic."
    )


if __name__ == "__main__":
    main()
