"""Full differential sweep: blockjit on vs off must be byte-identical.

Runs every benchmark on both ISAs in three modes (plain, PC-sampled,
fault-injected) and asserts bitwise-identical results, cycle totals,
per-pc sample counts and deopt records between the step loop and the
block-compiled executor.  The block side runs with typed block variants
(repro.analysis.typeflow plans) force-enabled, so the sweep is also the
acceptance oracle for check elision: a typed variant that drops a check
it should not drop diverges here.  CI runs the same oracle on the smoke
subset via tests/machine/test_blockjit_diff.py; this script is the
exhaustive acceptance sweep (about 10 minutes of CPU).

Usage: PYTHONPATH=src python scripts/blockjit_sweep.py
"""

import sys

from repro.engine import Engine, EngineConfig
from repro.profiling.sampler import attach_sampler
from repro.resilience.faults import FaultInjector, plan_for
from repro.suite.runner import BenchmarkRunner
from repro.suite.spec import all_benchmarks

ITERATIONS = 20
SAMPLE_PERIOD = 467.0


def plain_or_injected(spec, target, blockjit, inject):
    config = EngineConfig(target=target, blockjit=blockjit, typed_blocks=True)
    runner = BenchmarkRunner(spec, config)
    injector = (
        FaultInjector(plan_for(spec.name, seed=7, iterations=ITERATIONS))
        if inject
        else None
    )
    r = runner.run(iterations=ITERATIONS, injector=injector)
    return {
        "result": r.result,
        "cycles": r.total_cycles,
        "deopts": r.deopts,
        "hw": r.hw_stats,
    }


def sampled(spec, target, blockjit):
    engine = Engine(
        EngineConfig(target=target, blockjit=blockjit, typed_blocks=True)
    )
    engine.load(spec.source)
    engine.call_global("setup")
    for i in range(8):
        engine.current_iteration = i
        engine.call_global("run")
    sampler = attach_sampler(engine, SAMPLE_PERIOD)
    values = []
    for i in range(ITERATIONS):
        engine.current_iteration = 8 + i
        values.append(engine.call_global("run"))
    # Normalize sample keys: id(code) differs across engines, but both
    # runs register code objects in the same deterministic order.
    order = {cid: n for n, cid in enumerate(sampler._code_by_id)}
    samples = sorted(
        ((order[cid], pc), count)
        for (cid, pc), count in sampler.jit_samples.items()
    )
    return {
        "values": values,
        "cycles": engine.executor.cycles,
        "samples": samples,
        "other": sampler.other_samples,
    }


def main():
    failures = []
    for spec in all_benchmarks():
        for target in ("arm64", "x64"):
            for mode in ("plain", "sample", "inject"):
                if mode == "sample":
                    off = sampled(spec, target, False)
                    on = sampled(spec, target, True)
                else:
                    off = plain_or_injected(spec, target, False, mode == "inject")
                    on = plain_or_injected(spec, target, True, mode == "inject")
                tag = f"{spec.name}/{target}/{mode}"
                if off == on:
                    print(f"ok   {tag}", flush=True)
                else:
                    failures.append(tag)
                    print(f"FAIL {tag}", flush=True)
                    for key in off:
                        if off[key] != on[key]:
                            print(f"     {key}: step={off[key]!r}", flush=True)
                            print(f"     {key}: block={on[key]!r}", flush=True)
    print(f"\n{len(failures)} divergent configurations", flush=True)
    if failures:
        for tag in failures:
            print("  ", tag)
        sys.exit(1)


if __name__ == "__main__":
    main()
