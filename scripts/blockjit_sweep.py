"""Full differential sweep: all three executor tiers must be byte-identical.

Runs every benchmark on both ISAs in three modes (plain, PC-sampled,
fault-injected) and asserts bitwise-identical results, cycle totals,
per-pc sample counts and deopt records between the step loop, the
block-compiled executor and the trace tier.  The block side runs with
typed block variants (repro.analysis.typeflow plans) force-enabled and
the lazy block versioning tier (repro.machine.lbbv) force-armed on
every compiled config, so the sweep is also the acceptance oracle for
check elision — including the trace tier's *chain* guard elision and
lbbv's guard-free version chaining: a typed variant, a stitched chain,
a specialized version body or a rechained edge that drops a check it
should not drop diverges here.  The trace
tier runs with low promotion thresholds (REPRO_TRACEJIT_* set below) so
chains actually form and execute within the 20-iteration cells.  CI
runs the same oracle on the smoke subset via
tests/machine/test_tracejit_diff.py; this script is the exhaustive
acceptance sweep (about 15 minutes of CPU).

Usage: PYTHONPATH=src python scripts/blockjit_sweep.py
"""

import os
import sys

# Must be set before any engine is built: low thresholds so the trace
# tier promotes within short sweep cells instead of idling in counting.
os.environ.setdefault("REPRO_TRACEJIT_BUDGET", "400")
os.environ.setdefault("REPRO_TRACEJIT_HOT", "8")
os.environ.setdefault("REPRO_TRACEJIT_ENTRY", "8")
# Arm the versioning tier on every compiled config regardless of the
# session default, so all 186 cells differentially test version bodies,
# dispatchers and rechained edges against the step loop.
os.environ["REPRO_LBBV"] = "1"

from repro.engine import Engine, EngineConfig
from repro.profiling.sampler import attach_sampler
from repro.resilience.faults import FaultInjector, plan_for
from repro.suite.runner import BenchmarkRunner
from repro.suite.spec import all_benchmarks

ITERATIONS = 20
SAMPLE_PERIOD = 467.0

#: tier name -> EngineConfig knobs
TIERS = {
    "step": dict(blockjit=False, tracejit=False),
    "block": dict(blockjit=True, tracejit=False),
    "trace": dict(blockjit=True, tracejit=True),
}


def plain_or_injected(spec, target, tier, inject):
    config = EngineConfig(target=target, typed_blocks=True, **TIERS[tier])
    runner = BenchmarkRunner(spec, config)
    injector = (
        FaultInjector(plan_for(spec.name, seed=7, iterations=ITERATIONS))
        if inject
        else None
    )
    r = runner.run(iterations=ITERATIONS, injector=injector)
    return {
        "result": r.result,
        "cycles": r.total_cycles,
        "deopts": r.deopts,
        "hw": r.hw_stats,
    }


def sampled(spec, target, tier):
    engine = Engine(
        EngineConfig(target=target, typed_blocks=True, **TIERS[tier])
    )
    engine.load(spec.source)
    engine.call_global("setup")
    for i in range(8):
        engine.current_iteration = i
        engine.call_global("run")
    sampler = attach_sampler(engine, SAMPLE_PERIOD)
    values = []
    for i in range(ITERATIONS):
        engine.current_iteration = 8 + i
        values.append(engine.call_global("run"))
    # Normalize sample keys: id(code) differs across engines, but both
    # runs register code objects in the same deterministic order.
    order = {cid: n for n, cid in enumerate(sampler._code_by_id)}
    samples = sorted(
        ((order[cid], pc), count)
        for (cid, pc), count in sampler.jit_samples.items()
    )
    return {
        "values": values,
        "cycles": engine.executor.cycles,
        "samples": samples,
        "other": sampler.other_samples,
    }


def main():
    failures = []
    for spec in all_benchmarks():
        for target in ("arm64", "x64"):
            for mode in ("plain", "sample", "inject"):
                if mode == "sample":
                    runs = {tier: sampled(spec, target, tier)
                            for tier in TIERS}
                else:
                    runs = {
                        tier: plain_or_injected(
                            spec, target, tier, mode == "inject")
                        for tier in TIERS
                    }
                tag = f"{spec.name}/{target}/{mode}"
                step = runs["step"]
                bad = [t for t in ("block", "trace") if runs[t] != step]
                if not bad:
                    print(f"ok   {tag}", flush=True)
                else:
                    failures.append(tag)
                    print(f"FAIL {tag} ({', '.join(bad)})", flush=True)
                    for tier in bad:
                        for key in step:
                            if step[key] != runs[tier][key]:
                                print(f"     {key}: step={step[key]!r}",
                                      flush=True)
                                print(f"     {key}: {tier}="
                                      f"{runs[tier][key]!r}", flush=True)
    print(f"\n{len(failures)} divergent configurations", flush=True)
    if failures:
        for tag in failures:
            print("  ", tag)
        sys.exit(1)


if __name__ == "__main__":
    main()
