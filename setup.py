"""Shim for environments without the `wheel` package (offline editable
installs): `python setup.py develop` or plain `pip install -e .` where
build isolation works."""

from setuptools import setup

setup()
