"""Reproduction of "The Cost of Speculation: Revisiting Overheads in the V8
JavaScript Engine" (Parravicini & Mueller, IISWC 2021).

A pure-Python, simulation-based reproduction: a V8-like tiered JavaScript
engine (interpreter with type feedback + speculative optimizing compiler
with explicit deoptimization checks), two modelled target ISAs (CISC
"x64", RISC "arm64") plus the paper's jsldrsmi SMI-load extension, a
functional machine simulator with timing models (fast cost model and
gem5-like in-order/out-of-order pipelines), a perf-style PC sampler, the
extended JetStream2-like benchmark suite, and per-figure experiment
drivers.

Quickstart::

    from repro import Engine, EngineConfig
    engine = Engine(EngineConfig(target="arm64"))
    engine.load("function f(x) { return x * 2 + 1; }")
    print(engine.call_global("f", 20))  # 41

Figures::

    python -m repro.experiments fig06 --scale default
"""

from .engine import Engine, EngineConfig, SharedFunction
from .jit.checks import CheckGroup, CheckKind, DeoptCategory

__version__ = "1.0.0"

__all__ = [
    "CheckGroup",
    "CheckKind",
    "DeoptCategory",
    "Engine",
    "EngineConfig",
    "SharedFunction",
    "__version__",
]
