"""Static analysis layer: IR graph verifier, machine-code linter, and
check-density analyzer for the speculative compilation pipeline.

The engine consults :func:`default_verify` whenever an
:class:`~repro.engine.EngineConfig` leaves ``verify=None``; tests flip
the default on via ``set_default_verify(True)`` in conftest, and the
``REPRO_VERIFY`` environment variable (``1``/``true``/``on``) does the
same for ad-hoc runs such as the benchmark drivers.
"""

from __future__ import annotations

import os

from .density import DensityReport, analyze_density
from .diagnostics import Diagnostic, Severity, errors, render_table, warnings
from .dominators import DominatorTree, reachable_blocks
from .mclint import assert_lint_clean, lint_code
from .typeflow import (
    BlockTypeSummary,
    CheckClassification,
    TypedBlockPlan,
    TypeflowResult,
    analyze_typeflow,
    cross_validate,
    join_typeval,
    render_fact,
    typed_plans,
)
from .verifier import VerificationError, assert_valid, verify_graph

__all__ = [
    "BlockTypeSummary",
    "CheckClassification",
    "DensityReport",
    "Diagnostic",
    "DominatorTree",
    "Severity",
    "TypedBlockPlan",
    "TypeflowResult",
    "VerificationError",
    "analyze_density",
    "analyze_typeflow",
    "assert_lint_clean",
    "assert_valid",
    "cross_validate",
    "default_verify",
    "errors",
    "join_typeval",
    "lint_code",
    "reachable_blocks",
    "render_fact",
    "render_table",
    "set_default_verify",
    "typed_plans",
    "verify_graph",
    "warnings",
]

_default_verify = os.environ.get("REPRO_VERIFY", "").strip().lower() in (
    "1", "true", "yes", "on",
)


def default_verify() -> bool:
    """Whether engines verify when their config leaves ``verify=None``."""
    return _default_verify


def set_default_verify(enabled: bool) -> None:
    """Set the process-wide verification default (used by test conftest)."""
    global _default_verify
    _default_verify = enabled
