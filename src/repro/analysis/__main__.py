"""``python -m repro.analysis`` — lint compiled benchmark code.

Compiles one or more suite benchmarks with per-pass IR verification
enabled, lints every emitted code object, runs the static check-density
analyzer, and prints a diagnostics table.  Exit status is non-zero when
any ERROR diagnostic is found.

Examples::

    python -m repro.analysis --benchmark FIB
    python -m repro.analysis --all --target x64
    python -m repro.analysis --benchmark NBODY --verbose
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..engine import EngineConfig
from ..suite import all_benchmarks, compile_benchmark, compiled_code_objects, get_benchmark
from .density import analyze_density
from .diagnostics import Diagnostic, Severity, render_table
from .mclint import lint_code
from .verifier import VerificationError


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Verify and lint the compiled code of suite benchmarks.",
    )
    parser.add_argument(
        "--benchmark", "-b", action="append", default=[],
        help="benchmark name (repeatable); see repro.suite",
    )
    parser.add_argument(
        "--all", action="store_true", help="analyze every registered benchmark"
    )
    parser.add_argument(
        "--target", default="arm64", choices=("x64", "arm64", "arm64+smi"),
        help="compilation target (default: arm64)",
    )
    parser.add_argument(
        "--iterations", type=int, default=40,
        help="warmup iterations before analyzing (default: 40)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="also show INFO diagnostics (attribution-window shape)",
    )
    options = parser.parse_args(argv)

    if options.all:
        specs = all_benchmarks()
    elif options.benchmark:
        try:
            specs = [get_benchmark(name) for name in options.benchmark]
        except KeyError as missing:
            known = ", ".join(spec.name for spec in all_benchmarks())
            parser.error(f"unknown benchmark {missing}; known: {known}")
    else:
        parser.error("pass --benchmark NAME (repeatable) or --all")

    exit_code = 0
    for spec in specs:
        diagnostics: List[Diagnostic] = []
        config = EngineConfig(target=options.target, verify=True)
        try:
            engine = compile_benchmark(spec, config, iterations=options.iterations)
        except VerificationError as failure:
            print(render_table(failure.diagnostics,
                               title=f"== {spec.name} [{options.target}] =="))
            exit_code = 1
            continue
        codes = compiled_code_objects(engine)
        density_lines: List[str] = []
        for code in codes:
            diagnostics.extend(lint_code(code))
            report = analyze_density(code)
            diagnostics.extend(report.diagnostics)
            density_lines.extend(report.rows())
        if not options.verbose:
            diagnostics = [
                d for d in diagnostics if d.severity != Severity.INFO
            ]
        if any(d.severity == Severity.ERROR for d in diagnostics):
            exit_code = 1
        print(render_table(
            diagnostics,
            title=(f"== {spec.name} [{options.target}] — "
                   f"{len(codes)} code object(s) =="),
        ))
        for line in density_lines:
            print(line)
        print()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
