"""``python -m repro.analysis`` — lint and typeflow-audit benchmark code.

Two subcommands over the compiled code of suite benchmarks (the first
positional argument; ``lint`` is the default, so existing invocations
keep working):

``lint``
    Compiles benchmarks with per-pass IR verification enabled, lints
    every emitted code object, runs the static check-density analyzer,
    and prints a diagnostics table.

``typeflow``
    Runs the flow-sensitive type-state analysis
    (:mod:`repro.analysis.typeflow`) over every code object the engine
    compiled, reports the static check-density delta (all checks vs the
    *required*-only residual), the dynamic check executions the typed
    block tier actually elided, and **cross-validates** static
    classifications against the engine's dynamic check-trip profile: a
    redundant-classified check that dynamically deoptimized is an
    analysis soundness bug and fails the run.  ``--json PATH`` writes
    the full machine-readable report (the CI artifact).

Exit status is non-zero when any ERROR diagnostic is found.

Examples::

    python -m repro.analysis --benchmark FIB
    python -m repro.analysis lint --all --target x64 --jobs 4
    python -m repro.analysis typeflow --all --jobs 4 --json typeflow.json
    python -m repro.analysis typeflow --benchmark NBODY --target x64

``--jobs`` analyzes benchmarks on worker processes; lint reports are
cached in the persistent result cache (keyed by engine fingerprint, so
any source change re-analyzes) unless ``--no-cache`` is given.  Typeflow
reports include dynamic profiles, so they are never disk-cached.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Tuple

from ..engine import EngineConfig
from ..exec import MISS, DiskCache
from ..suite import all_benchmarks, compile_benchmark, compiled_code_objects, get_benchmark
from .density import analyze_density
from .diagnostics import Diagnostic, Severity, render_table
from .mclint import lint_code
from .verifier import VerificationError


def analyze_one(name: str, target: str, iterations: int, verbose: bool) -> Tuple[int, str]:
    """Compile + lint one benchmark; returns (exit_code, report text)."""
    spec = get_benchmark(name)
    config = EngineConfig(target=target, verify=True)
    lines: List[str] = []
    try:
        engine = compile_benchmark(spec, config, iterations=iterations)
    except VerificationError as failure:
        lines.append(render_table(failure.diagnostics,
                                  title=f"== {spec.name} [{target}] =="))
        return 1, "\n".join(lines)
    diagnostics: List[Diagnostic] = []
    codes = compiled_code_objects(engine)
    density_lines: List[str] = []
    for code in codes:
        diagnostics.extend(lint_code(code))
        report = analyze_density(code)
        diagnostics.extend(report.diagnostics)
        density_lines.extend(report.rows())
    if not verbose:
        diagnostics = [d for d in diagnostics if d.severity != Severity.INFO]
    exit_code = 1 if any(d.severity == Severity.ERROR for d in diagnostics) else 0
    lines.append(render_table(
        diagnostics,
        title=(f"== {spec.name} [{target}] — "
               f"{len(codes)} code object(s) =="),
    ))
    lines.extend(density_lines)
    return exit_code, "\n".join(lines)


def typeflow_one(
    name: str, target: str, iterations: int, verbose: bool
) -> Tuple[int, str, Dict[str, object]]:
    """Analyze + cross-validate one benchmark.

    Returns (exit_code, report text, machine-readable record).
    """
    from .typeflow import REDUNDANT, REQUIRED, analyze_typeflow, cross_validate

    spec = get_benchmark(name)
    config = EngineConfig(target=target, verify=True)
    try:
        engine = compile_benchmark(spec, config, iterations=iterations)
    except VerificationError as failure:
        text = render_table(failure.diagnostics,
                            title=f"== {spec.name} [{target}] ==")
        return 1, text, {"benchmark": name, "target": target,
                         "error": "verification failed"}
    # The full compilation history, not just live codes: a check that
    # tripped usually discarded its code object, and those trips are
    # exactly what the validator must see.
    codes = list(engine._code_objects)
    diagnostics = cross_validate(codes, engine.check_trips)
    counts = {"checks": 0, REDUNDANT: 0, "hoistable": 0, REQUIRED: 0,
              "eligible": 0}
    body = 0
    functions = []
    for code in codes:
        result = analyze_typeflow(code)
        for key, value in result.counts.items():
            counts[key] += value
        body += result.body_instructions
        functions.append(result.to_json() if verbose else {
            "function": result.function,
            "code_serial": getattr(code, "serial", -1),
            "counts": result.counts,
            "residual_density": result.residual_density(),
        })
    static_density = 100.0 * counts["checks"] / body if body else 0.0
    residual_density = 100.0 * counts[REQUIRED] / body if body else 0.0
    typed = engine.typed_check_stats()
    executed = engine.executor.stats.deopt_branch_instrs
    elided = typed["branch_checks_elided"] + typed["smi_tag_tests_elided"]
    reduction = 100.0 * elided / executed if executed else 0.0
    errors = [d for d in diagnostics if d.severity == Severity.ERROR]

    lines = [
        f"== {spec.name} [{target}] — {len(codes)} code object(s) ==",
        f"  checks: {counts['checks']} — {counts[REDUNDANT]} redundant, "
        f"{counts['hoistable']} hoistable, {counts[REQUIRED]} required "
        f"({counts['eligible']} elidable by the typed tier)",
        f"  static density: {static_density:.2f} -> residual "
        f"{residual_density:.2f} checks per 100 instructions",
        f"  dynamic: {elided}/{executed} check executions elided "
        f"({reduction:.1f}%), {typed['entry_guards_evaluated']} guards, "
        f"{typed['guard_failures']} guard failures",
        f"  soundness: {len(errors)} violation(s) over "
        f"{sum(engine.check_trips.values())} recorded check trip(s)",
    ]
    if diagnostics:
        lines.append(render_table(diagnostics, title="typeflow soundness"))
    record = {
        "benchmark": name,
        "target": target,
        "code_objects": len(codes),
        "counts": counts,
        "static_density": static_density,
        "residual_density": residual_density,
        "dynamic": {
            **typed,
            "deopt_branches_executed": executed,
            "reduction_percent": reduction,
        },
        "check_trips": sum(engine.check_trips.values()),
        "soundness_violations": [d.message for d in errors],
        "functions": functions,
    }
    return (1 if errors else 0), "\n".join(lines), record


def _analyze_star(task: Tuple[str, str, int, bool]) -> Tuple[int, str]:
    return analyze_one(*task)


def _typeflow_star(
    task: Tuple[str, str, int, bool]
) -> Tuple[int, str, Dict[str, object]]:
    return typeflow_one(*task)


def _report_token(name: str, target: str, iterations: int, verbose: bool) -> str:
    key = f"analysis-v1|{name}|{target}|{iterations}|{int(verbose)}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Verify, lint and typeflow-audit the compiled code of "
        "suite benchmarks.",
    )
    parser.add_argument(
        "command", nargs="?", default="lint", choices=("lint", "typeflow"),
        help="lint (default): verify + lint + density; typeflow: static "
        "type-state classification cross-validated against dynamic deopts",
    )
    parser.add_argument(
        "--benchmark", "-b", action="append", default=[],
        help="benchmark name (repeatable); see repro.suite",
    )
    parser.add_argument(
        "--all", action="store_true", help="analyze every registered benchmark"
    )
    parser.add_argument(
        "--target", default=None, choices=("x64", "arm64", "arm64+smi"),
        help="compilation target (default: arm64 for lint; both arm64 "
        "and x64 for typeflow)",
    )
    parser.add_argument(
        "--iterations", type=int, default=40,
        help="warmup iterations before analyzing (default: 40)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="lint: also show INFO diagnostics; typeflow: full per-block "
        "summaries in the JSON report",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="analyze benchmarks on this many worker processes",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write cached analysis reports",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="typeflow only: write the machine-readable report here",
    )
    options = parser.parse_args(argv)

    if options.all:
        specs = all_benchmarks()
    elif options.benchmark:
        try:
            specs = [get_benchmark(name) for name in options.benchmark]
        except KeyError as missing:
            known = ", ".join(spec.name for spec in all_benchmarks())
            parser.error(f"unknown benchmark {missing}; known: {known}")
    else:
        parser.error("pass --benchmark NAME (repeatable) or --all")

    if options.command == "typeflow":
        return _run_typeflow(options, specs)

    target = options.target or "arm64"
    disk = None if options.no_cache else DiskCache()
    tasks = [
        (spec.name, target, options.iterations, options.verbose)
        for spec in specs
    ]
    reports: dict = {}
    pending = []
    if disk is not None:
        for task in tasks:
            cached = disk.get(_report_token(*task))
            if cached is MISS:
                pending.append(task)
            else:
                reports[task] = cached
    else:
        pending = tasks

    if pending:
        if options.jobs > 1 and len(pending) > 1:
            workers = min(options.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                fresh = list(pool.map(_analyze_star, pending))
        else:
            fresh = [analyze_one(*task) for task in pending]
        for task, report in zip(pending, fresh):
            reports[task] = report
            if disk is not None:
                disk.put(_report_token(*task), report)

    exit_code = 0
    for task in tasks:
        code, text = reports[task]
        exit_code = max(exit_code, code)
        print(text)
        print()
    return exit_code


def _run_typeflow(options, specs) -> int:
    targets = (options.target,) if options.target else ("arm64", "x64")
    tasks = [
        (spec.name, target, options.iterations, options.verbose)
        for target in targets
        for spec in specs
    ]
    if options.jobs > 1 and len(tasks) > 1:
        workers = min(options.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_typeflow_star, tasks))
    else:
        results = [typeflow_one(*task) for task in tasks]

    exit_code = 0
    records = []
    for code, text, record in results:
        exit_code = max(exit_code, code)
        records.append(record)
        print(text)
        print()
    totals = {
        "benchmarks": len(specs),
        "targets": list(targets),
        "soundness_violations": sum(
            len(r.get("soundness_violations", ())) for r in records
        ),
        "checks": sum(r.get("counts", {}).get("checks", 0) for r in records),
        "redundant": sum(
            r.get("counts", {}).get("redundant", 0) for r in records
        ),
        "hoistable": sum(
            r.get("counts", {}).get("hoistable", 0) for r in records
        ),
        "elided_dynamic": sum(
            r.get("dynamic", {}).get("branch_checks_elided", 0)
            + r.get("dynamic", {}).get("smi_tag_tests_elided", 0)
            for r in records
        ),
    }
    print(
        f"typeflow: {totals['checks']} checks across "
        f"{totals['benchmarks']} benchmark(s) x {len(targets)} target(s) — "
        f"{totals['redundant']} redundant, {totals['hoistable']} hoistable, "
        f"{totals['elided_dynamic']} dynamic check executions elided, "
        f"{totals['soundness_violations']} soundness violation(s)"
    )
    if options.json:
        with open(options.json, "w", encoding="utf-8") as sink:
            json.dump({"summary": totals, "results": records}, sink, indent=2)
        print(f"wrote {options.json}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
