"""``python -m repro.analysis`` — lint compiled benchmark code.

Compiles one or more suite benchmarks with per-pass IR verification
enabled, lints every emitted code object, runs the static check-density
analyzer, and prints a diagnostics table.  Exit status is non-zero when
any ERROR diagnostic is found.

Examples::

    python -m repro.analysis --benchmark FIB
    python -m repro.analysis --all --target x64 --jobs 4
    python -m repro.analysis --benchmark NBODY --verbose

``--jobs`` analyzes benchmarks on worker processes; reports are cached in
the persistent result cache (keyed by engine fingerprint, so any source
change re-analyzes) unless ``--no-cache`` is given.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import List, Tuple

from ..engine import EngineConfig
from ..exec import MISS, DiskCache
from ..suite import all_benchmarks, compile_benchmark, compiled_code_objects, get_benchmark
from .density import analyze_density
from .diagnostics import Diagnostic, Severity, render_table
from .mclint import lint_code
from .verifier import VerificationError


def analyze_one(name: str, target: str, iterations: int, verbose: bool) -> Tuple[int, str]:
    """Compile + lint one benchmark; returns (exit_code, report text)."""
    spec = get_benchmark(name)
    config = EngineConfig(target=target, verify=True)
    lines: List[str] = []
    try:
        engine = compile_benchmark(spec, config, iterations=iterations)
    except VerificationError as failure:
        lines.append(render_table(failure.diagnostics,
                                  title=f"== {spec.name} [{target}] =="))
        return 1, "\n".join(lines)
    diagnostics: List[Diagnostic] = []
    codes = compiled_code_objects(engine)
    density_lines: List[str] = []
    for code in codes:
        diagnostics.extend(lint_code(code))
        report = analyze_density(code)
        diagnostics.extend(report.diagnostics)
        density_lines.extend(report.rows())
    if not verbose:
        diagnostics = [d for d in diagnostics if d.severity != Severity.INFO]
    exit_code = 1 if any(d.severity == Severity.ERROR for d in diagnostics) else 0
    lines.append(render_table(
        diagnostics,
        title=(f"== {spec.name} [{target}] — "
               f"{len(codes)} code object(s) =="),
    ))
    lines.extend(density_lines)
    return exit_code, "\n".join(lines)


def _analyze_star(task: Tuple[str, str, int, bool]) -> Tuple[int, str]:
    return analyze_one(*task)


def _report_token(name: str, target: str, iterations: int, verbose: bool) -> str:
    key = f"analysis-v1|{name}|{target}|{iterations}|{int(verbose)}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Verify and lint the compiled code of suite benchmarks.",
    )
    parser.add_argument(
        "--benchmark", "-b", action="append", default=[],
        help="benchmark name (repeatable); see repro.suite",
    )
    parser.add_argument(
        "--all", action="store_true", help="analyze every registered benchmark"
    )
    parser.add_argument(
        "--target", default="arm64", choices=("x64", "arm64", "arm64+smi"),
        help="compilation target (default: arm64)",
    )
    parser.add_argument(
        "--iterations", type=int, default=40,
        help="warmup iterations before analyzing (default: 40)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="also show INFO diagnostics (attribution-window shape)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="analyze benchmarks on this many worker processes",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write cached analysis reports",
    )
    options = parser.parse_args(argv)

    if options.all:
        specs = all_benchmarks()
    elif options.benchmark:
        try:
            specs = [get_benchmark(name) for name in options.benchmark]
        except KeyError as missing:
            known = ", ".join(spec.name for spec in all_benchmarks())
            parser.error(f"unknown benchmark {missing}; known: {known}")
    else:
        parser.error("pass --benchmark NAME (repeatable) or --all")

    disk = None if options.no_cache else DiskCache()
    tasks = [
        (spec.name, options.target, options.iterations, options.verbose)
        for spec in specs
    ]
    reports: dict = {}
    pending = []
    if disk is not None:
        for task in tasks:
            cached = disk.get(_report_token(*task))
            if cached is MISS:
                pending.append(task)
            else:
                reports[task] = cached
    else:
        pending = tasks

    if pending:
        if options.jobs > 1 and len(pending) > 1:
            workers = min(options.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                fresh = list(pool.map(_analyze_star, pending))
        else:
            fresh = [analyze_one(*task) for task in pending]
        for task, report in zip(pending, fresh):
            reports[task] = report
            if disk is not None:
                disk.put(_report_token(*task), report)

    exit_code = 0
    for task in tasks:
        code, text = reports[task]
        exit_code = max(exit_code, code)
        print(text)
        print()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
