"""Static check-density analysis over compiled code.

Counts guards per 100 body instructions *without executing anything*,
straight from the emitted :class:`~repro.jit.codegen.CodeObject` — one
check = one registered deopt point, body = every instruction that is not
a ``DEOPT`` stub.  The result is cross-validated against the dynamic
pipeline's :func:`repro.profiling.attribution.static_check_density` (the
Fig. 1 metric); any disagreement is an ERROR diagnostic because it means
the two layers no longer count the same thing.

Cross-ISA comparability: each ISA attributes a fixed ``check_window`` of
condition instructions per deopt branch (1 on x64, 2 on ARM64), but many
checks — x64 float checks, single-``TSTI`` smi checks on ARM64 — emit
condition runs of a different length (the window-shape INFO diagnostics
of :mod:`repro.analysis.mclint`).  Those outliers used to skew the single
aggregate row differently per ISA; they are now counted separately, so
:meth:`DensityReport.rows` reports an aggregate row over
window-conforming checks (``comparable_density``) that lines up across
arm64/x64, plus an explicit outlier row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..isa.base import MOp
from ..isa.semantics import BLOCK_END_OPS
from ..jit.checks import CheckKind
from ..jit.codegen import CodeObject
from ..profiling.attribution import static_check_density
from .diagnostics import Diagnostic, Severity


@dataclass
class DensityReport:
    """Static guard counts for one code object."""

    function: str
    target: str
    body_instructions: int
    check_count: int
    #: checks per 100 body instructions (Fig. 1's metric)
    density: float
    by_kind: Dict[CheckKind, int] = field(default_factory=dict)
    #: deopt-branch instructions actually present (differs from
    #: ``check_count`` when branches are suppressed or checks are soft)
    deopt_branches: int = 0
    #: instructions attributed to check conditions (same-check-id runs
    #: feeding each deopt branch)
    condition_instructions: int = 0
    #: branch checks whose condition run differs from the ISA's
    #: ``check_window`` — split out of the comparable aggregate so rows
    #: line up across ISAs
    window_outliers: int = 0
    outlier_kinds: Dict[CheckKind, int] = field(default_factory=dict)
    #: density over window-conforming checks only — the cross-ISA
    #: comparable aggregate
    comparable_density: float = 0.0
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def rows(self) -> List[str]:
        lines = [
            f"{self.function} [{self.target}]: {self.check_count} checks / "
            f"{self.body_instructions} instructions = {self.density:.2f} per 100 "
            f"({self.deopt_branches} deopt branches)",
            f"  comparable (window-conforming): "
            f"{self.check_count - self.window_outliers} checks = "
            f"{self.comparable_density:.2f} per 100",
        ]
        if self.window_outliers:
            kinds = ", ".join(
                f"{kind.name.lower()}={count}"
                for kind, count in sorted(
                    self.outlier_kinds.items(), key=lambda e: e[0].name
                )
            )
            lines.append(
                f"  window outliers: {self.window_outliers} "
                f"({kinds}) — condition runs differ from the "
                f"{self.target} check window"
            )
        for kind, count in sorted(self.by_kind.items(), key=lambda e: (-e[1], e[0].name)):
            lines.append(f"  {kind.name.lower():28s} {count}")
        return lines


def analyze_density(code: CodeObject) -> DensityReport:
    """Count checks statically and cross-validate against the profiler."""
    body = 0
    deopt_branches = 0
    distinct_stub_ids = set()
    for instr in code.instrs:
        if instr.op == MOp.DEOPT:
            # Soft deopts appear twice (inline + stub); a check is one
            # deopt *point*, so count distinct ids, not instructions.
            distinct_stub_ids.add(int(instr.imm))
            continue
        body += 1
        if instr.is_deopt_branch:
            deopt_branches += 1

    check_count = len(code.deopt_points)
    density = 100.0 * check_count / body if body else 0.0
    by_kind: Dict[CheckKind, int] = {}
    for point in code.deopt_points.values():
        by_kind[point.kind] = by_kind.get(point.kind, 0) + 1

    # Per-branch condition runs, the same backward walk the mclint
    # window-shape pass performs: a run whose length differs from the
    # ISA's check_window is an attribution outlier and is excluded from
    # the comparable aggregate.
    window = code.target.check_window
    condition_instructions = 0
    window_outliers = 0
    outlier_kinds: Dict[CheckKind, int] = {}
    for pc, instr in enumerate(code.instrs):
        if not (instr.op == MOp.BCC and instr.is_deopt_branch):
            continue
        run = 0
        back = pc - 1
        while back >= 0:
            previous = code.instrs[back]
            if previous.op in BLOCK_END_OPS or previous.check_id != instr.check_id:
                break
            run += 1
            back -= 1
        condition_instructions += run
        if run != window:
            window_outliers += 1
            point = code.deopt_points.get(instr.check_id)
            if point is not None:
                outlier_kinds[point.kind] = outlier_kinds.get(point.kind, 0) + 1
    conforming = check_count - window_outliers
    comparable_density = 100.0 * conforming / body if body else 0.0

    report = DensityReport(
        function=code.shared.info.name,
        target=code.target.name,
        body_instructions=body,
        check_count=check_count,
        density=density,
        by_kind=by_kind,
        deopt_branches=deopt_branches,
        condition_instructions=condition_instructions,
        window_outliers=window_outliers,
        outlier_kinds=outlier_kinds,
        comparable_density=comparable_density,
    )

    reference = static_check_density(code)
    if abs(density - reference) > 1e-9:
        report.diagnostics.append(
            Diagnostic(
                Severity.ERROR,
                "density",
                "density-cross-validation",
                f"static analyzer computes {density:.4f} checks/100 but "
                f"profiling.attribution reports {reference:.4f} — the two "
                "layers disagree on what a check is",
            )
        )
    unregistered = distinct_stub_ids - set(code.deopt_points)
    if unregistered:
        report.diagnostics.append(
            Diagnostic(
                Severity.ERROR,
                "density",
                "density-cross-validation",
                f"DEOPT stubs for unregistered check ids {sorted(unregistered)}",
            )
        )
    return report
