"""Diagnostic records shared by the graph verifier and the machine linter.

Every invariant violation, attribution-bias observation or density mismatch
is reported as a :class:`Diagnostic`: a severity, the invariant's name, a
human-readable message and an anchor (IR node / block, or machine pc) so a
failing pass can name exactly what broke.  ``errors`` vs ``warnings`` is
the contract with the engine: verification raises only on errors; warnings
and infos describe measurement bias (e.g. attribution-window mismatches)
that is interesting but not wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a verification or lint pass."""

    severity: Severity
    source: str  # "verifier" | "mclint" | "density"
    invariant: str  # short invariant name, e.g. "def-dominates-use"
    message: str
    #: IR anchors (graph verifier)
    node_id: Optional[int] = None
    block_id: Optional[int] = None
    #: machine anchor (linter)
    pc: Optional[int] = None

    def anchor(self) -> str:
        parts = []
        if self.block_id is not None:
            parts.append(f"B{self.block_id}")
        if self.node_id is not None:
            parts.append(f"n{self.node_id}")
        if self.pc is not None:
            parts.append(f"pc {self.pc}")
        return ":".join(parts) if parts else "-"

    def __str__(self) -> str:
        return (
            f"[{self.severity.value}] {self.source}/{self.invariant}"
            f" @ {self.anchor()}: {self.message}"
        )


def errors(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity == Severity.ERROR]


def warnings(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity == Severity.WARNING]


def render_table(diagnostics: Sequence[Diagnostic], title: str = "") -> str:
    """Fixed-width diagnostics table for the ``python -m repro.analysis``
    CLI (and for error messages raised out of the pipeline)."""
    header = ("severity", "source", "invariant", "anchor", "message")
    rows = [
        (d.severity.value, d.source, d.invariant, d.anchor(), d.message)
        for d in diagnostics
    ]
    widths = [
        max(len(header[col]), *(len(r[col]) for r in rows)) if rows else len(header[col])
        for col in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if not rows:
        lines.append("(no diagnostics)")
    return "\n".join(lines)
