"""Dominator computation over the IR block CFG.

Iterative dataflow in reverse postorder (Cooper/Harvey/Kennedy "A Simple,
Fast Dominance Algorithm"): small graphs, no Lengauer-Tarjan machinery
needed.  Unreachable blocks are excluded — after :func:`schedule_rpo` drops
them from ``graph.blocks``, stale entries can survive in reachable blocks'
``predecessors`` lists, so every predecessor is filtered against the
reachable set before use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.graph import Graph
from ..ir.nodes import Block


def reachable_blocks(graph: Graph) -> List[Block]:
    """Blocks reachable from the entry via successor edges, in RPO."""
    postorder: List[Block] = []
    visited: Set[int] = {graph.entry.id}
    stack = [(graph.entry, iter(graph.entry.successors))]
    while stack:
        block, successors = stack[-1]
        advanced = False
        for successor in successors:
            if successor.id not in visited:
                visited.add(successor.id)
                stack.append((successor, iter(successor.successors)))
                advanced = True
                break
        if not advanced:
            postorder.append(block)
            stack.pop()
    return list(reversed(postorder))


class DominatorTree:
    """Immediate dominators + O(tree depth) dominance queries."""

    def __init__(self, graph: Graph) -> None:
        self.rpo = reachable_blocks(graph)
        self._rpo_index: Dict[int, int] = {b.id: i for i, b in enumerate(self.rpo)}
        self.idom: Dict[int, Optional[Block]] = {}
        self._depth: Dict[int, int] = {}
        self._compute(graph.entry)

    def is_reachable(self, block: Block) -> bool:
        return block.id in self._rpo_index

    def _compute(self, entry: Block) -> None:
        index = self._rpo_index
        idom: Dict[int, Optional[Block]] = {entry.id: entry}

        def intersect(a: Block, b: Block) -> Block:
            while a.id != b.id:
                while index[a.id] > index[b.id]:
                    parent = idom[a.id]
                    assert parent is not None
                    a = parent
                while index[b.id] > index[a.id]:
                    parent = idom[b.id]
                    assert parent is not None
                    b = parent
            return a

        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                new_idom: Optional[Block] = None
                for pred in block.predecessors:
                    if pred.id not in index or pred.id not in idom:
                        continue  # unreachable or not yet processed
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(pred, new_idom)
                if new_idom is not None and idom.get(block.id) is not new_idom:
                    idom[block.id] = new_idom
                    changed = True

        self.idom = {}
        for block in self.rpo:
            if block is entry:
                self.idom[block.id] = None
            else:
                self.idom[block.id] = idom.get(block.id)
        depth: Dict[int, int] = {entry.id: 0}
        for block in self.rpo:
            if block is entry:
                continue
            parent = self.idom.get(block.id)
            # RPO guarantees the idom was processed first.
            depth[block.id] = depth[parent.id] + 1 if parent is not None else 0
        self._depth = depth

    def dominates(self, a: Block, b: Block) -> bool:
        """True iff ``a`` dominates ``b`` (reflexive)."""
        if a.id not in self._depth or b.id not in self._depth:
            return False
        walk: Optional[Block] = b
        while walk is not None and self._depth[walk.id] >= self._depth[a.id]:
            if walk.id == a.id:
                return True
            walk = self.idom.get(walk.id)
        return False
