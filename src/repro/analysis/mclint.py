"""Static linter for compiled :class:`~repro.jit.codegen.CodeObject`s.

Five families of checks over the emitted machine code, for both ISA
shapes:

* **control** — every branch target lands inside the code object (an
  unpatched ``-1`` target means a forgotten fixup);
* **block partition** — the fused-block partition the block-compiled
  executor (:mod:`repro.machine.blockjit`) batches timing over is
  validated against the label/branch structure: spans tile the code in
  order, every branch target starts a block, and no block crosses a
  branch, call, or deopt commit point (``jsldrsmi``/``DEOPT``) — i.e.
  every such instruction is the *last* of its block, which is what makes
  block-batched statistics and the single-add cycle charge exact;
* **deopt wiring** — every deopt branch jumps to a registered bailout
  stub whose ``DEOPT`` immediate matches the branch's check id; every
  stub's check id has a :class:`DeoptPoint`; frame-state locations name
  allocatable registers/slots only (a scratch register in a frame state
  is a value the check-condition emission may clobber before the deopt
  reads it);
* **dataflow** — a forward defined-before-use analysis over the machine
  CFG (meet = intersection): no integer/float register, frame slot or
  condition flag is consumed before something defines it, including the
  implicit reads of ``RET``, ``DEOPT`` frame states and call arguments;
* **attribution shape** — the run of condition instructions feeding each
  deopt branch is compared against the target's ``check_window`` (1 on
  x64, 2 on ARM64).  Mismatches are exactly the window-heuristic
  attribution bias of paper §III-A, so they are reported as INFO, never
  raised on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.base import MachineInstr, MOp
from ..isa.semantics import (
    BLOCK_END_OPS,
    FUSED_BLOCK_END_OPS,
    InstrEffect,
    effect_of,
    fused_block_edges,
    fused_block_leaders,
    leaders_of,
    successors_of,
)
from ..jit.codegen import CodeObject
from ..machine.blockjit import block_spans
from ..jit.deopt import Location
from .diagnostics import Diagnostic, Severity, errors
from .verifier import VerificationError


def lint_code(code: CodeObject) -> List[Diagnostic]:
    """Lint one compiled code object; returns diagnostics (never raises)."""
    return _Linter(code).run()


def assert_lint_clean(code: CodeObject) -> List[Diagnostic]:
    """Lint and raise :class:`VerificationError` on any error."""
    diagnostics = lint_code(code)
    bad = errors(diagnostics)
    if bad:
        name = code.shared.info.name
        raise VerificationError(
            f"machine-code lint failed for {name!r} [{code.target.name}]", bad
        )
    return diagnostics


#: Dataflow state: (int-reg mask, float-reg mask, frame-slot mask, flags ok).
_State = Tuple[int, int, int, bool]


class _Linter:
    def __init__(self, code: CodeObject) -> None:
        self.code = code
        self.instrs = code.instrs
        self.diagnostics: List[Diagnostic] = []
        self.stub_pcs: Dict[int, int] = {
            pc: int(instr.imm)
            for pc, instr in enumerate(self.instrs)
            if instr.op == MOp.DEOPT
        }

    def report(self, severity: Severity, invariant: str, message: str,
               pc: Optional[int] = None) -> None:
        self.diagnostics.append(
            Diagnostic(severity, "mclint", invariant, message, pc=pc)
        )

    def error(self, invariant: str, message: str, pc: Optional[int] = None) -> None:
        self.report(Severity.ERROR, invariant, message, pc)

    def run(self) -> List[Diagnostic]:
        self._check_branch_targets()
        self._check_block_partition()
        self._check_trace_edges()
        self._check_deopt_wiring()
        self._check_frame_state_locations()
        self._check_dataflow()
        self._check_window_shape()
        self._check_typed_plans()
        return self.diagnostics

    # -- control ---------------------------------------------------------

    def _check_branch_targets(self) -> None:
        count = len(self.instrs)
        for pc, instr in enumerate(self.instrs):
            if instr.op not in (MOp.B, MOp.BCC):
                continue
            if not 0 <= instr.target < count:
                self.error(
                    "branch-target",
                    f"{instr.op.name} target {instr.target} outside "
                    f"[0, {count}) (unpatched fixup?)",
                    pc,
                )

    # -- fused-block partition -------------------------------------------

    def _check_block_partition(self) -> None:
        """Validate the blockjit partition the block executor relies on.

        The block-compiled executor charges each block's cycle cost in
        one add and its static statistics in one batch; both are exact
        only if (a) control can enter a block solely at its first pc and
        (b) any instruction that can leave the block — branch, call,
        ``RET``, ``DEOPT``, or a ``jsldrsmi`` commit point — is the
        block's last.  Violations here mean the fast tier would diverge
        from the step loop, so they are ERRORs.
        """
        instrs = self.instrs
        if not instrs:
            return
        count = len(instrs)
        spans = block_spans(instrs)
        starts = {start for start, _end in spans}
        previous_end = 0
        for start, end in spans:
            if start != previous_end or not start < end <= count:
                self.error(
                    "block-partition",
                    f"fused-block span [{start}, {end}) does not tile the "
                    f"code (previous span ended at {previous_end})",
                    start,
                )
            previous_end = end
        if previous_end != count:
            self.error(
                "block-partition",
                f"fused-block spans cover [0, {previous_end}) but the code "
                f"object has {count} instructions",
            )
        for pc, instr in enumerate(instrs):
            if instr.op in (MOp.B, MOp.BCC) and 0 <= instr.target < count:
                if instr.target not in starts:
                    self.error(
                        "block-partition",
                        f"{instr.op.name} target {instr.target} is not a "
                        "fused-block leader; the block executor could enter "
                        "a block mid-body",
                        pc,
                    )
            if instr.op in FUSED_BLOCK_END_OPS and pc + 1 < count:
                if pc + 1 not in starts:
                    self.error(
                        "block-partition",
                        f"{instr.op.name} at pc {pc} is followed by a "
                        "non-leader: a fused block would cross this "
                        "branch/call/deopt commit point",
                        pc,
                    )

    def _check_trace_edges(self) -> None:
        """Cross-validate the fused-block edge metadata the trace tier uses.

        :func:`~repro.isa.semantics.fused_block_edges` summarises each
        block by its *last* instruction; the trace compiler
        (:mod:`repro.machine.tracejit`) refuses to stitch a chain whose
        hop is not in that set.  Here the same edge set is re-derived
        independently from the machine CFG (:func:`successors_of` on the
        block's last pc, successors restricted to block leaders) and any
        asymmetric difference is an ERROR: a missing edge would make the
        trace tier reject a legal chain, a phantom edge would let it
        stitch blocks control flow can never connect.
        """
        instrs = self.instrs
        if not instrs:
            return
        count = len(instrs)
        leaders = sorted(fused_block_leaders(tuple(instrs)))
        block_of = {start: i for i, start in enumerate(leaders)}
        declared = fused_block_edges(tuple(instrs))
        derived = set()
        for bid, start in enumerate(leaders):
            end = leaders[bid + 1] if bid + 1 < len(leaders) else count
            for succ in successors_of(end - 1, instrs[end - 1], count):
                if succ in block_of:
                    derived.add((bid, block_of[succ]))
        for src, dst in sorted(declared - derived):
            self.error(
                "trace-edges",
                f"fused_block_edges declares edge {src}->{dst} the machine "
                "CFG does not have; the trace tier could stitch blocks "
                "control flow never connects",
                leaders[src],
            )
        for src, dst in sorted(derived - declared):
            self.error(
                "trace-edges",
                f"machine-CFG edge {src}->{dst} is missing from "
                "fused_block_edges; the trace tier would reject a legal "
                "chain through it",
                leaders[src],
            )

    # -- deopt wiring ----------------------------------------------------

    def _check_deopt_wiring(self) -> None:
        points = self.code.deopt_points
        sites = self.code.check_sites
        for pc, check_id in self.stub_pcs.items():
            if check_id not in points:
                self.error(
                    "deopt-registered",
                    f"DEOPT stub names check id {check_id}, which has no "
                    "registered DeoptPoint",
                    pc,
                )
            if check_id not in sites:
                self.error(
                    "deopt-registered",
                    f"DEOPT stub names check id {check_id}, which has no "
                    "registered CheckSite",
                    pc,
                )
        for pc, instr in enumerate(self.instrs):
            if instr.op == MOp.BCC and instr.is_deopt_branch:
                stub_id = self.stub_pcs.get(instr.target)
                if stub_id is None:
                    self.error(
                        "deopt-target",
                        f"deopt branch (check id {instr.check_id}) targets "
                        f"pc {instr.target}, which is not a DEOPT stub",
                        pc,
                    )
                elif instr.check_id >= 0 and stub_id != instr.check_id:
                    self.error(
                        "deopt-target",
                        f"deopt branch for check id {instr.check_id} lands "
                        f"on the stub of check id {stub_id}",
                        pc,
                    )
            elif instr.op == MOp.BCC and instr.target in self.stub_pcs:
                self.report(
                    Severity.WARNING,
                    "deopt-target",
                    "non-deopt conditional branch targets a DEOPT stub; the "
                    "window heuristic will misattribute its samples",
                    pc,
                )
            if instr.op == MOp.JSLDRSMI and instr.check_id >= 0:
                if self.code.smi_load_checks.get(pc) != instr.check_id:
                    self.error(
                        "deopt-registered",
                        f"JSLDRSMI with check id {instr.check_id} missing "
                        "from smi_load_checks (commit-time bailout would "
                        "not resolve)",
                        pc,
                    )
        for check_id, site in sites.items():
            if site.branch_pc >= 0:
                branch = (
                    self.instrs[site.branch_pc]
                    if site.branch_pc < len(self.instrs) else None
                )
                if branch is None or branch.op != MOp.BCC or not branch.is_deopt_branch:
                    self.error(
                        "deopt-registered",
                        f"check site {check_id} records branch_pc "
                        f"{site.branch_pc}, which is not a deopt branch",
                        site.branch_pc,
                    )
            if site.stub_pc >= 0 and self.stub_pcs.get(site.stub_pc) != check_id:
                self.error(
                    "deopt-registered",
                    f"check site {check_id} records stub_pc {site.stub_pc}, "
                    "which is not its DEOPT stub",
                    site.stub_pc,
                )

    # -- frame-state locations -------------------------------------------

    def _location_ok(self, location: Location, check_id: int, what: str) -> None:
        if location.kind not in ("reg", "freg", "slot"):
            return  # constants have no machine home to clobber
        if not isinstance(location.value, int):
            self.error(
                "frame-state-location",
                f"deopt point {check_id}: {what} has non-integer "
                f"{location.kind} index {location.value!r}",
            )
            return
        int_lo, int_hi = self.code.allocatable_int_regs
        float_lo, float_hi = self.code.allocatable_float_regs
        if location.kind == "reg" and not int_lo <= location.value < int_hi:
            self.error(
                "frame-state-location",
                f"deopt point {check_id}: {what} lives in r{location.value}, "
                f"outside the allocatable pool [{int_lo}, {int_hi}) — a "
                "scratch register the check condition may clobber",
            )
        elif location.kind == "freg" and not float_lo <= location.value < float_hi:
            self.error(
                "frame-state-location",
                f"deopt point {check_id}: {what} lives in f{location.value}, "
                f"outside the allocatable pool [{float_lo}, {float_hi})",
            )
        elif location.kind == "slot" and not 0 <= location.value < self.code.allocatable_slots:
            self.error(
                "frame-state-location",
                f"deopt point {check_id}: {what} lives in frame slot "
                f"{location.value}, outside [0, {self.code.allocatable_slots})",
            )

    def _check_frame_state_locations(self) -> None:
        for check_id, point in self.code.deopt_points.items():
            for value in point.values:
                self._location_ok(value.location, check_id, f"r{value.interp_reg}")
            if point.this_location is not None:
                self._location_ok(point.this_location[0], check_id, "this")

    # -- defined-before-use dataflow -------------------------------------

    def _deopt_effect(self, instr: MachineInstr) -> InstrEffect:
        """The frame-state reads of a DEOPT stub (or inline soft deopt)."""
        effect = InstrEffect()
        point = self.code.deopt_points.get(int(instr.imm))
        if point is None:
            return effect  # already reported by _check_deopt_wiring
        locations: List[Location] = [v.location for v in point.values]
        if point.this_location is not None:
            locations.append(point.this_location[0])
        for location in locations:
            if not isinstance(location.value, int):
                continue  # malformed; reported by _check_frame_state_locations
            if location.kind == "reg":
                effect.int_uses.add(location.value)
            elif location.kind == "freg":
                effect.float_uses.add(location.value)
            elif location.kind == "slot":
                effect.slot_uses.add(location.value)
        return effect

    def _effect(self, instr: MachineInstr) -> InstrEffect:
        if instr.op == MOp.DEOPT:
            return self._deopt_effect(instr)
        return effect_of(instr)

    def _check_dataflow(self) -> None:
        instrs = self.instrs
        if not instrs:
            return
        count = len(instrs)
        gpr = self.code.target.gpr_count
        fpr = self.code.target.fpr_count
        slots = self.code.stack_slots
        leaders = sorted(leaders_of(tuple(instrs)))
        block_of: Dict[int, int] = {}  # leader pc -> index in `leaders`
        for index, leader in enumerate(leaders):
            block_of[leader] = index
        block_end = {
            leader: (leaders[index + 1] if index + 1 < len(leaders) else count)
            for index, leader in enumerate(leaders)
        }

        # Entry state: JS arguments + `this` arrive in r0..r7; nothing else.
        entry: _State = ((1 << 8) - 1, 0, 0, False)
        in_state: Dict[int, _State] = {0: entry}

        def transfer(state: _State, pc: int, report: bool) -> _State:
            int_mask, float_mask, slot_mask, flags = state
            instr = instrs[pc]
            effect = self._effect(instr)
            if report:
                self._report_uses(pc, instr, effect, state, gpr, fpr, slots)
            for reg in effect.int_defs:
                if 0 <= reg < gpr:
                    int_mask |= 1 << reg
            for reg in effect.float_defs:
                if 0 <= reg < fpr:
                    float_mask |= 1 << reg
            for slot in effect.slot_defs:
                if 0 <= slot < slots:
                    slot_mask |= 1 << slot
            if effect.kills_flags:
                flags = False
            if effect.sets_flags:
                flags = True
            return (int_mask, float_mask, slot_mask, flags)

        # Fixpoint (silent), then one reporting pass with the final states.
        worklist = [0]
        while worklist:
            leader = worklist.pop()
            state = in_state[leader]
            last_pc = leader
            for pc in range(leader, block_end[leader]):
                last_pc = pc
                state = transfer(state, pc, report=False)
                if instrs[pc].op in BLOCK_END_OPS:
                    break
            for successor in successors_of(last_pc, instrs[last_pc], count):
                if successor not in block_of:
                    continue  # bad target, reported elsewhere
                merged = (
                    state if successor not in in_state
                    else _meet(in_state[successor], state)
                )
                if in_state.get(successor) != merged:
                    in_state[successor] = merged
                    worklist.append(successor)

        for leader in leaders:
            if leader not in in_state:
                continue  # unreachable code: nothing to lint
            state = in_state[leader]
            for pc in range(leader, block_end[leader]):
                state = transfer(state, pc, report=True)
                if instrs[pc].op in BLOCK_END_OPS:
                    break

    def _report_uses(self, pc: int, instr: MachineInstr, effect: InstrEffect,
                     state: _State, gpr: int, fpr: int, slots: int) -> None:
        int_mask, float_mask, slot_mask, flags = state
        for reg in sorted(effect.int_uses):
            if not 0 <= reg < gpr:
                self.error(
                    "register-range",
                    f"{instr.op.name} reads integer register r{reg}, "
                    f"outside [0, {gpr})",
                    pc,
                )
            elif not int_mask >> reg & 1:
                self.error(
                    "read-before-def",
                    f"{instr.op.name} reads r{reg} before any definition",
                    pc,
                )
        for reg in sorted(effect.float_uses):
            if not 0 <= reg < fpr:
                self.error(
                    "register-range",
                    f"{instr.op.name} reads float register f{reg}, "
                    f"outside [0, {fpr})",
                    pc,
                )
            elif not float_mask >> reg & 1:
                self.error(
                    "read-before-def",
                    f"{instr.op.name} reads f{reg} before any definition",
                    pc,
                )
        for slot in sorted(effect.slot_uses):
            if not 0 <= slot < slots:
                self.error(
                    "register-range",
                    f"{instr.op.name} reads frame slot {slot}, outside "
                    f"[0, {slots})",
                    pc,
                )
            elif not slot_mask >> slot & 1:
                self.error(
                    "read-before-def",
                    f"{instr.op.name} reads frame slot {slot} before any "
                    "store",
                    pc,
                )
        if effect.reads_flags and not flags:
            self.error(
                "flags-before-use",
                f"{instr.op.name} consumes condition flags with no live "
                "flag-setting instruction on some path",
                pc,
            )

    # -- attribution-window shape ----------------------------------------

    def _check_window_shape(self) -> None:
        window = self.code.target.check_window
        for pc, instr in enumerate(self.instrs):
            if not (instr.op == MOp.BCC and instr.is_deopt_branch):
                continue
            if instr.target not in self.stub_pcs:
                continue  # broken wiring, reported elsewhere
            run = 0
            back = pc - 1
            while back >= 0:
                previous = self.instrs[back]
                if previous.op in BLOCK_END_OPS or previous.check_id != instr.check_id:
                    break
                run += 1
                back -= 1
            if run < window:
                self.report(
                    Severity.INFO,
                    "window-shape",
                    f"check id {instr.check_id}: {run} condition "
                    f"instruction(s) precede the deopt branch but the "
                    f"{self.code.target.name} window is {window} — the "
                    f"heuristic overcounts {window - run} unrelated "
                    "instruction(s)",
                    pc,
                )
            elif run > window:
                self.report(
                    Severity.INFO,
                    "window-shape",
                    f"check id {instr.check_id}: {run} condition "
                    f"instruction(s) precede the deopt branch, exceeding "
                    f"the {self.code.target.name} window of {window} — the "
                    f"heuristic undercounts {run - window} instruction(s)",
                    pc,
                )


    # -- typed block variants (repro.analysis.typeflow plans) ------------

    def _check_typed_plans(self) -> None:
        """Validate the typed-variant elision plans against the code.

        The block compiler consumes these plans verbatim, so a malformed
        plan is a typed block that silently diverges from the step loop:
        every plan must sit on its block's single check site, carry
        exactly one hoisted guard per assumed fact (none when the proof
        is unconditional), only rewrite condition instructions of that
        check, and never skip an instruction with a register/slot effect
        (the divergence sentinel compares full register files).
        """
        from .typeflow import HOISTABLE, typed_plans

        try:
            plans = typed_plans(self.code)
        except Exception as failure:  # noqa: BLE001 - surface, don't crash
            self.error(
                "typed-entry-guard",
                f"typeflow plan construction failed: "
                f"{type(failure).__name__}: {failure}",
            )
            return
        if not plans:
            return
        spans = block_spans(self.instrs)
        result = self.code._typeflow
        for bid, plan in sorted(plans.items()):
            if not 0 <= bid < len(spans) or (plan.start, plan.end) != spans[bid]:
                self.error(
                    "typed-entry-guard",
                    f"typed plan for block {bid} spans [{plan.start}, "
                    f"{plan.end}), which is not that block",
                    plan.site_pc,
                )
                continue
            start, end = spans[bid]
            if plan.site_pc != end - 1:
                self.error(
                    "typed-entry-guard",
                    f"typed plan for block {bid} elides pc {plan.site_pc}, "
                    f"but the block's only check site is its last "
                    f"instruction (pc {end - 1})",
                    plan.site_pc,
                )
            site = self.instrs[plan.site_pc]
            if plan.site == "branch":
                if site.op != MOp.BCC or not site.is_deopt_branch \
                        or site.check_id != plan.check_id:
                    self.error(
                        "typed-entry-guard",
                        f"typed plan for block {bid} names a branch check "
                        f"{plan.check_id} but pc {plan.site_pc} is not its "
                        "deopt branch",
                        plan.site_pc,
                    )
                elif self.stub_pcs.get(site.target) != plan.check_id:
                    self.error(
                        "typed-entry-guard",
                        f"typed plan for block {bid}: elided branch does "
                        "not target the registered DEOPT stub of check "
                        f"{plan.check_id} — the generic fallback would "
                        "bail to the wrong stub",
                        plan.site_pc,
                    )
            elif plan.site == "jsldrsmi":
                if site.op != MOp.JSLDRSMI or \
                        self.code.smi_load_checks.get(plan.site_pc) != plan.check_id:
                    self.error(
                        "typed-entry-guard",
                        f"typed plan for block {bid} names a jsldrsmi check "
                        f"{plan.check_id} but pc {plan.site_pc} is not its "
                        "registered commit point",
                        plan.site_pc,
                    )
            else:
                self.error(
                    "typed-entry-guard",
                    f"typed plan for block {bid} has unknown site kind "
                    f"{plan.site!r}",
                    plan.site_pc,
                )
            # Exactly one hoisted guard per assumed fact: the plan assumes
            # plan.fact, so guards is () only for a proven-redundant site.
            if len(set(plan.guards)) != len(plan.guards) or \
                    plan.guards not in ((), (plan.fact,)):
                self.error(
                    "typed-entry-guard",
                    f"typed plan for block {bid} guards {plan.guards!r} do "
                    f"not match its assumed fact {plan.fact!r}",
                    plan.site_pc,
                )
            elif result is not None:
                verdict = result.classifications.get(plan.check_id)
                hoisted = verdict is not None and verdict.klass == HOISTABLE
                if hoisted != bool(plan.guards):
                    self.error(
                        "typed-entry-guard",
                        f"typed plan for block {bid} carries "
                        f"{len(plan.guards)} guard(s) but check "
                        f"{plan.check_id} is classified "
                        f"{verdict.klass if verdict else 'unknown'}",
                        plan.site_pc,
                    )
            for pc, action in plan.actions:
                if not start <= pc < plan.site_pc:
                    self.error(
                        "typed-entry-guard",
                        f"typed plan for block {bid} rewrites pc {pc}, "
                        f"outside its condition run [{start}, "
                        f"{plan.site_pc})",
                        pc,
                    )
                    continue
                instr = self.instrs[pc]
                effect = effect_of(instr)
                if action[0] == "skip" and (
                    effect.int_defs or effect.float_defs or effect.slot_defs
                ):
                    self.error(
                        "typed-entry-guard",
                        f"typed plan for block {bid} skips pc {pc} "
                        f"({instr.op.name}), which defines machine state — "
                        "the typed variant would diverge from the step "
                        "loop's register file",
                        pc,
                    )
                elif action[0] == "const" and (
                    instr.op != MOp.LDR or instr.dst != action[1]
                ):
                    self.error(
                        "typed-entry-guard",
                        f"typed plan for block {bid} constant-folds pc {pc} "
                        f"({instr.op.name} -> r{instr.dst}), but the action "
                        f"writes r{action[1]}",
                        pc,
                    )


def _meet(a: _State, b: _State) -> _State:
    return (a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] and b[3])


# -- lazy block versioning ---------------------------------------------------


def check_version_chains(table) -> List[Diagnostic]:
    """``version-entry-guard``: a chained edge may only skip guards whose
    facts the predecessor's state establishes.

    Re-derives, independently of :mod:`repro.machine.lbbv`'s own chain
    walk, the outgoing edge state of every chain source — a compiled
    block version (entry = the block's static entry facts plus the
    version's key) or a rechained base block (entry = the static entry
    facts alone) — and checks that the state *proves every fact of the
    target version's key*.  A chained edge enters its target with zero
    entry guards, so any unproven key fact is a hole the dispatcher
    would otherwise have tested: severity ERROR.  Wiring (target
    exists, targets the recorded successor) is checked first so a
    corrupt table does not mask a guard hole.
    """
    diagnostics: List[Diagnostic] = []

    def error(message: str) -> None:
        diagnostics.append(
            Diagnostic(Severity.ERROR, "mclint", "version-entry-guard",
                       message)
        )

    ctx = table.ctx
    if ctx is None:
        return diagnostics

    def edge_states(bid, entry):
        states = {}
        for succ, state in ctx.out_states(bid, frozenset(entry)):
            held = states.get(succ)
            states[succ] = state if held is None else (held & state)
        return states

    def check_edges(source: str, bid, entry, chained):
        states = edge_states(bid, entry)
        for succ, index in chained:
            target = table.by_index.get(index)
            if target is None:
                error(f"{source} chains edge ->{succ} to driver index "
                      f"{index}, which is not a registered version")
                continue
            if target.bid != succ:
                error(f"{source} chains edge ->{succ} to version "
                      f"{index}, which versions block {target.bid}")
                continue
            state = states.get(succ)
            if state is None:
                error(f"{source} chains edge ->{succ}, but the typeflow "
                      "analysis derives no such edge")
                continue
            unproven = [f for f in target.key
                        if not ctx.establishes(state, (f,))]
            if unproven:
                error(f"{source} chains edge ->{succ} into version "
                      f"{index} guard-free, but its edge state does not "
                      f"establish key fact(s) {sorted(map(repr, unproven))}")

    static_entry = ctx.static_entry
    for bid, versions in sorted(table.versions.items()):
        entry_base = static_entry.get(bid, frozenset())
        for version in versions:
            if version.compiled is None and not version.chained_out:
                continue
            check_edges(
                f"version {version.index} of block {bid}",
                bid, entry_base | version.key, version.chained_out,
            )
    for bid, targets in sorted(table.rechained.items()):
        check_edges(
            f"rechained block {bid}",
            bid, static_entry.get(bid, frozenset()),
            sorted(targets.items()),
        )
    return diagnostics


def assert_version_chains_clean(table) -> List[Diagnostic]:
    """Check the version-entry-guard invariant; raise on any error."""
    diagnostics = check_version_chains(table)
    bad = errors(diagnostics)
    if bad:
        name = table.code.shared.info.name
        raise VerificationError(
            f"version chain lint failed for {name!r} "
            f"[{table.code.target.name}]", bad
        )
    return diagnostics
