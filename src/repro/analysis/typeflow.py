"""Flow-sensitive type-state abstract interpretation over machine code.

PR 1 built the verification layer (IR verifier + machine linter); this
module turns it into an *optimization oracle*, in the style of lazy
basic-block versioning and its typed-object-shapes extension
(Chevalier-Boisvert & Feeley, arXiv 1411.0352 / 1507.02437) — done
statically, over the same fused-block partition the block-compiled
executor runs (:func:`repro.isa.semantics.fused_block_leaders`), so the
blockjit tier can compile *typed block variants* up front instead of
discovering types one deopt at a time.

Two analyses run over the machine CFG:

* a **must-analysis** of *facts* (meet = intersection): hard predicates
  about machine state that hold on every path to a program point —
  tag-bit parities, register/constant equalities, map-word equalities,
  unsigned-bounds relations, and element-tag predicates.  Facts are
  established by the fall-through edge of each deopt check (the only way
  past a map check is with the expected map) and by constant/ALU parity
  transfer (:func:`repro.isa.semantics.abstract_transfer_of`); they are
  killed by register redefinition, and heap-dependent facts by any heap
  store or call.  Because a fact member of the in-state reaches the
  point along *every* path, fact implication subsumes the classic
  "dominated by an equivalent check" rule and additionally proves
  redundancy through diamonds where no single dominating check exists.
* a **may-analysis** of the type lattice ``{smi, double, boxed-number,
  string, object(shape-set), heap-object, unknown}`` (join = least upper
  bound, shape sets capped at :data:`MAX_SHAPE_SET` then widened to
  ``heap-object``), producing the per-block entry/exit
  :class:`BlockTypeSummary` artifacts.

Every ``jsldrsmi`` / map-check / bounds-check / tag-check site is then
classified:

* **redundant** — its passing fact is implied by the must-state at the
  site (including the elements-kind proof: an indexed ``jsldrsmi`` whose
  base has a proven ``PACKED_SMI`` map *and* a proven bounds fact cannot
  load a tagged pointer); the typed block variant drops the test with no
  guard;
* **hoistable** — not implied, but the fact's registers are unmodified
  from block entry to the site (and no heap store intervenes for
  memory facts), so one *hoisted entry guard* per assumed fact makes
  the straight-line body safe; guard failure tail-calls the generic
  block variant;
* **required** — everything else (conditions shared with main-line
  arithmetic, facts outside the language, unstable operands).

The **soundness contract** (cross-validated by ``python -m
repro.analysis typeflow`` and the ``typeflow-soundness`` CI job): a
check classified *redundant* can never dynamically fire.  The engine
records every eager deopt as ``(code.serial, check_id)``
(:attr:`repro.engine.Engine.check_trips`); any trip of a
redundant-classified check is an analysis soundness bug, surfaced as an
ERROR diagnostic plus a ``repro.supervise`` crash bundle.  The analysis
deliberately routes all opcode transfer through the module-level
``abstract_transfer_of`` binding so the mutation tests can seed an
unsound transfer function and assert the cross-validator rejects it.

Engine-level assumption made explicit: bounds-checked indices are
produced by overflow-checked SMI arithmetic, so the check's unsigned
32-bit compare is exact for them — the same assumption the emitted
bounds check itself makes.

The lattice has a second consumer since PR 8: the deoptless dispatcher
(:mod:`repro.machine.continuations`) keys its specialized continuations
by the *negation* of the facts proved here (``"!" + render_fact``), and
pre-seeds its variant table from every ``TypedBlockPlan``'s fact and
hoisted guards — each names a type-state whose failure the dispatcher
may observe, so the first real dispatch into one is a warm seeded hit.
The sentinel's dispatch audit re-evaluates the same facts dynamically
(:func:`repro.machine.continuations.fact_holds`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.base import CC, FRAME_BASE, MachineInstr, MOp
from ..isa.semantics import abstract_transfer_of, effect_of, successors_of
from ..jit.codegen import CodeObject
from ..machine.blockjit import block_spans
from ..values.maps import ElementsKind
from ..values.tagged import pointer_tag
from .diagnostics import Diagnostic, Severity

#: A fact is a small tuple; the first element is its tag:
#:   ("par", reg, p)              bit0 of regs[reg] == p
#:   ("spar", slot, p)            bit0 of frame[slot] == p
#:   ("regeq", reg, word)         regs[reg] == word
#:   ("map", reg, disp, word)     heap[(regs[reg] >> 1) + disp] == word
#:   ("ub", idx, base, disp)      (regs[idx] & u32) < (heap[(regs[base]
#:                                >> 1) + disp] & u32)
#:   ("memsmi", base, idx, scale, disp)
#:                                the word at the operand address is an
#:                                even int (idx may be -1: no index)
Fact = Tuple

#: heap-dependent fact tags (killed by stores and calls)
_HEAP_FACTS = ("map", "ub", "memsmi")

REDUNDANT = "redundant"
HOISTABLE = "hoistable"
REQUIRED = "required"

#: shape-set width cap of the may-analysis: a join producing more maps
#: than this widens to plain ``heap-object`` (guarantees termination
#: under shape-set growth at loop heads).
MAX_SHAPE_SET = 4

#: type-lattice values: (kind, shapes); shapes is a frozenset of map
#: words for kind == "object", else None.  "unknown" is represented by
#: absence from the state dict.
TypeVal = Tuple[str, Optional[FrozenSet[int]]]

_HEAP_KINDS = ("boxed-number", "string", "object", "heap-object")


def render_fact(f: Fact) -> str:
    tag = f[0]
    if tag == "par":
        return f"r{f[1]} is {'smi' if f[2] == 0 else 'heap-ptr'}"
    if tag == "spar":
        return f"slot{f[1]} is {'smi' if f[2] == 0 else 'heap-ptr'}"
    if tag == "regeq":
        return f"r{f[1]} == {f[2]}"
    if tag == "map":
        return f"map(r{f[1]}+{f[2]}) == {f[3]}"
    if tag == "ub":
        return f"r{f[1]} <u len[r{f[2]}+{f[3]}]"
    if tag == "memsmi":
        idx = f"+r{f[2]}<<{f[3]}" if f[2] >= 0 else ""
        return f"[r{f[1]}{idx}+{f[4]}] is smi"
    return repr(f)


def _fact_regs(f: Fact) -> Tuple[int, ...]:
    """Integer registers a fact's truth depends on."""
    tag = f[0]
    if tag in ("par", "regeq", "map"):
        return (f[1],)
    if tag == "ub":
        return (f[1], f[2])
    if tag == "memsmi":
        return (f[1],) if f[2] < 0 else (f[1], f[2])
    return ()


def join_typeval(a: Optional[TypeVal], b: Optional[TypeVal]) -> Optional[TypeVal]:
    """Least upper bound of two lattice values; None is unknown (top)."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    if a[0] == "object" and b[0] == "object":
        union = (a[1] or frozenset()) | (b[1] or frozenset())
        if len(union) > MAX_SHAPE_SET:
            return ("heap-object", None)  # widening
        return ("object", union)
    if a[0] in _HEAP_KINDS and b[0] in _HEAP_KINDS:
        return ("heap-object", None)
    return None


def render_typeval(value: Optional[TypeVal]) -> str:
    if value is None:
        return "unknown"
    kind, shapes = value
    if kind == "object" and shapes:
        return "object{" + ",".join(str(w) for w in sorted(shapes)) + "}"
    return kind


@dataclass
class CheckClassification:
    """Subsumption verdict for one check site."""

    check_id: int
    kind: str  # CheckKind name ("" when no DeoptPoint is registered)
    site: str  # "branch" | "jsldrsmi"
    pc: int
    block: int
    klass: str  # redundant | hoistable | required
    fact: Optional[Fact]
    reason: str
    #: True when the typed-block tier may actually elide the test (all
    #: structural soundness conditions hold, not just the proof)
    eligible: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "check_id": self.check_id,
            "kind": self.kind,
            "site": self.site,
            "pc": self.pc,
            "block": self.block,
            "class": self.klass,
            "fact": render_fact(self.fact) if self.fact is not None else None,
            "reason": self.reason,
            "eligible": self.eligible,
        }


@dataclass
class BlockTypeSummary:
    """Machine-readable per-block artifact consumed by the blockjit tier
    (and exported by the typeflow CLI)."""

    block: int
    start: int
    end: int
    entry_types: Dict[str, str]
    exit_types: Dict[str, str]
    entry_facts: Tuple[str, ...]
    check: Optional[CheckClassification] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "block": self.block,
            "span": [self.start, self.end],
            "entry_types": dict(sorted(self.entry_types.items())),
            "exit_types": dict(sorted(self.exit_types.items())),
            "entry_facts": list(self.entry_facts),
            "check": self.check.to_json() if self.check is not None else None,
        }


#: per-pc replacement actions inside a typed block variant:
#:   ("skip",)             pure flag computation — emit nothing
#:   ("const", dst, word)  heap load with statically-known value — emit
#:                         ``regs[dst] = word`` (bit-identical register
#:                         state, no heap traffic)
#:   ("keep",)             emit verbatim (register defs, shared work)
Action = Tuple


@dataclass(frozen=True)
class TypedBlockPlan:
    """Elision recipe for one block, consumed by
    :mod:`repro.machine.blockjit` when compiling the typed variant."""

    bid: int
    start: int
    end: int
    check_id: int
    site: str  # "branch" | "jsldrsmi"
    site_pc: int
    fact: Fact
    #: entry guards — one per assumed fact; empty for provably-redundant
    #: elisions (no dynamic test at all)
    guards: Tuple[Fact, ...]
    #: (pc, action) for every condition instruction of the check
    actions: Tuple[Tuple[int, Action], ...]
    #: condition instructions whose work is skipped or constant-folded
    n_cond_elided: int = 0


@dataclass
class TypeflowResult:
    """Full analysis result for one code object."""

    function: str
    target: str
    summaries: List[BlockTypeSummary] = field(default_factory=list)
    classifications: Dict[int, CheckClassification] = field(default_factory=dict)
    plans: Dict[int, TypedBlockPlan] = field(default_factory=dict)
    flags_live: bool = False
    body_instructions: int = 0

    @property
    def counts(self) -> Dict[str, int]:
        counts = {REDUNDANT: 0, HOISTABLE: 0, REQUIRED: 0,
                  "checks": 0, "eligible": 0}
        for c in self.classifications.values():
            counts[c.klass] += 1
            counts["checks"] += 1
            if c.eligible:
                counts["eligible"] += 1
        return counts

    def residual_density(self) -> float:
        """Checks per 100 body instructions counting only *required*
        checks — the static density the code would have if every proven
        check were deleted (the paper's Section III-B metric, derived
        from proofs instead of kind lists)."""
        if not self.body_instructions:
            return 0.0
        return 100.0 * self.counts[REQUIRED] / self.body_instructions

    def to_json(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "target": self.target,
            "flags_live": self.flags_live,
            "body_instructions": self.body_instructions,
            "counts": self.counts,
            "residual_density": self.residual_density(),
            "blocks": [s.to_json() for s in self.summaries],
            "checks": [
                c.to_json()
                for _cid, c in sorted(self.classifications.items())
            ],
        }


@dataclass
class _Site:
    """One check site: the last instruction of its fused block."""

    bid: int
    site_pc: int
    check_id: int
    site: str  # "branch" | "jsldrsmi"
    fact: Optional[Fact]
    run_pcs: Tuple[int, ...] = ()


class _Typeflow:
    def __init__(self, code: CodeObject) -> None:
        self.code = code
        self.instrs: List[MachineInstr] = list(code.instrs)
        self.count = len(self.instrs)
        self.spans = block_spans(self.instrs) if self.instrs else []
        self.block_at: Dict[int, int] = {
            start: bid for bid, (start, _end) in enumerate(self.spans)
        }
        #: map word -> Map, for elements-kind / instance-type resolution
        self.maps = {}
        for a_map in getattr(code, "map_dependencies", ()) or ():
            address = getattr(a_map, "address", -1)
            if isinstance(address, int) and address >= 0:
                self.maps[pointer_tag(address)] = a_map
        self.sites: Dict[int, _Site] = {}
        self.entry_facts: Dict[int, FrozenSet[Fact]] = {}
        self.pc_facts: Dict[int, FrozenSet[Fact]] = {}
        self.entry_types: Dict[int, Dict] = {}
        self.exit_types: Dict[int, Dict] = {}

    # -- fact transfer ---------------------------------------------------

    def _parity(self, desc: Tuple, facts: Set[Fact]) -> Optional[int]:
        def atom(a: Tuple[str, int]) -> Optional[int]:
            kind, index = a
            if kind == "k":
                return index
            par_tag = "par" if kind == "r" else "spar"
            for f in facts:
                if f[0] == par_tag and f[1] == index:
                    return f[2]
                if kind == "r" and f[0] == "regeq" and f[1] == index:
                    return f[2] & 1
            return None

        op = desc[0]
        if op == "const":
            return desc[1]
        if op == "copy":
            return atom(desc[1])
        a, b = atom(desc[1]), atom(desc[2])
        if op == "xor":
            return a ^ b if a is not None and b is not None else None
        if op == "and":
            if a == 0 or b == 0:
                return 0
            if a == 1 and b == 1:
                return 1
            return None
        if op == "or":
            if a == 1 or b == 1:
                return 1
            if a == 0 and b == 0:
                return 0
            return None
        return None

    def _kill(self, facts: Set[Fact], dest: Tuple[str, int]) -> None:
        kind, index = dest
        if kind == "s":
            doomed = [f for f in facts if f[0] == "spar" and f[1] == index]
        else:
            doomed = [f for f in facts if index in _fact_regs(f)]
        for f in doomed:
            facts.discard(f)

    def _apply(self, facts: Set[Fact], instr: MachineInstr) -> None:
        at = abstract_transfer_of(instr)
        if at.kills_heap:
            doomed = [f for f in facts if f[0] in _HEAP_FACTS]
            for f in doomed:
                facts.discard(f)
        dest = at.dest
        if dest is None:
            return
        if instr.op == MOp.MOVR and instr.dst == instr.s1:
            return  # no-op move preserves everything
        additions: List[Fact] = []
        if at.parity is not None:
            p = self._parity(at.parity, facts)
            if p is not None:
                tag = "par" if dest[0] == "r" else "spar"
                additions.append((tag, dest[1], p))
        if instr.op == MOp.MOVI:
            additions.append(("regeq", instr.dst, int(instr.imm)))
        elif instr.op == MOp.MOVR:
            src = instr.s1
            for f in facts:
                if f[0] in ("par", "regeq") and f[1] == src:
                    additions.append((f[0], instr.dst) + f[2:])
                elif f[0] == "map" and f[1] == src:
                    additions.append(("map", instr.dst, f[2], f[3]))
        self._kill(facts, dest)
        for f in additions:
            facts.add(f)

    def _add_fact(self, facts: Set[Fact], f: Fact) -> None:
        facts.add(f)
        if f[0] == "regeq":
            facts.add(("par", f[1], f[2] & 1))

    # -- check-site discovery --------------------------------------------

    def _def_in_run(self, reg: int, before: int,
                    run: Tuple[int, ...]) -> Optional[MachineInstr]:
        """Last in-run definition of ``reg`` before pc ``before``."""
        for pc in sorted(run, reverse=True):
            if pc >= before:
                continue
            instr = self.instrs[pc]
            if reg in effect_of(instr).int_defs:
                return instr
        return None

    def _branch_fact(self, run: Tuple[int, ...],
                     branch: MachineInstr) -> Optional[Fact]:
        setter_pc = None
        for pc in sorted(run, reverse=True):
            if effect_of(self.instrs[pc]).sets_flags:
                setter_pc = pc
                break
        if setter_pc is None:
            return None
        setter = self.instrs[setter_pc]
        cc = int(branch.cc)
        op = setter.op
        if op == MOp.TSTI and int(setter.imm) == 1 and setter.s1 >= 0:
            if cc == int(CC.NE):
                return ("par", setter.s1, 0)  # checked_untag: deopt if odd
            if cc == int(CC.EQ):
                return ("par", setter.s1, 1)  # check_heap_object
            return None
        mem = setter.mem
        if op == MOp.CMPI_MEM and cc == int(CC.NE) and mem is not None:
            base, index, _scale, disp = mem
            if base >= 0 and index < 0:
                return ("map", base, disp, int(setter.imm))
            return None
        if op == MOp.CMP_MEM and cc == int(CC.HS) and mem is not None:
            base, index, _scale, disp = mem
            if base >= 0 and index < 0 and setter.s1 >= 0:
                return ("ub", setter.s1, base, disp)
            return None
        if op == MOp.CMPI and cc == int(CC.NE) and setter.s1 >= 0:
            return ("regeq", setter.s1, int(setter.imm))
        if op == MOp.CMP:
            rhs_def = self._def_in_run(setter.s2, setter_pc, run)
            if cc == int(CC.NE) and rhs_def is not None and rhs_def.op == MOp.MOVI:
                word = int(rhs_def.imm)
                lhs_def = self._def_in_run(setter.s1, setter_pc, run)
                if lhs_def is not None and lhs_def.op == MOp.LDR:
                    lmem = lhs_def.mem
                    if lmem is not None and lmem[0] >= 0 and lmem[1] < 0:
                        return ("map", lmem[0], lmem[3], word)
                    return None
                return ("regeq", setter.s1, word)
            if cc == int(CC.HS) and rhs_def is not None and rhs_def.op == MOp.LDR:
                lmem = rhs_def.mem
                if lmem is not None and lmem[0] >= 0 and lmem[1] < 0 \
                        and setter.s1 >= 0:
                    return ("ub", setter.s1, lmem[0], lmem[3])
            return None
        return None

    def _find_sites(self) -> None:
        for bid, (start, end) in enumerate(self.spans):
            last_pc = end - 1
            last = self.instrs[last_pc]
            if last.op == MOp.BCC and last.is_deopt_branch \
                    and last.check_id >= 0:
                run: List[int] = []
                back = last_pc - 1
                while back >= start and \
                        self.instrs[back].check_id == last.check_id:
                    run.append(back)
                    back -= 1
                run_pcs = tuple(sorted(run))
                fact = self._branch_fact(run_pcs, last)
                self.sites[bid] = _Site(
                    bid, last_pc, last.check_id, "branch", fact, run_pcs
                )
            elif last.op == MOp.JSLDRSMI and last.check_id >= 0 \
                    and last.mem is not None:
                base, index, scale, disp = last.mem
                fact: Optional[Fact] = None
                if base >= 0 and base != FRAME_BASE:
                    fact = ("memsmi", base, index, scale, disp)
                self.sites[bid] = _Site(
                    bid, last_pc, last.check_id, "jsldrsmi", fact
                )

    # -- must-analysis (facts) -------------------------------------------

    def _out_edges(
        self, bid: int, entry: FrozenSet[Fact],
        record: Optional[Dict[int, FrozenSet[Fact]]] = None,
    ) -> List[Tuple[int, FrozenSet[Fact]]]:
        start, end = self.spans[bid]
        facts: Set[Fact] = set(entry)
        for pc in range(start, end - 1):
            if record is not None:
                record[pc] = frozenset(facts)
            self._apply(facts, self.instrs[pc])
        last_pc = end - 1
        last = self.instrs[last_pc]
        if record is not None:
            record[last_pc] = frozenset(facts)
        edges: List[Tuple[int, FrozenSet[Fact]]] = []
        op = last.op
        if op == MOp.BCC:
            taken = self.block_at.get(last.target)
            if taken is not None:
                edges.append((taken, frozenset(facts)))
            fall = self.block_at.get(last_pc + 1)
            if fall is not None:
                through = set(facts)
                site = self.sites.get(bid)
                if site is not None and site.site == "branch" \
                        and site.fact is not None:
                    self._add_fact(through, site.fact)
                edges.append((fall, frozenset(through)))
        elif op == MOp.B:
            target = self.block_at.get(last.target)
            if target is not None:
                edges.append((target, frozenset(facts)))
        elif op in (MOp.RET, MOp.DEOPT):
            pass
        else:
            self._apply(facts, last)
            if op == MOp.JSLDRSMI:
                site = self.sites.get(bid)
                if site is not None and site.fact is not None \
                        and last.dst not in _fact_regs(site.fact):
                    self._add_fact(facts, site.fact)
            successor = self.block_at.get(last_pc + 1)
            if successor is not None:
                edges.append((successor, frozenset(facts)))
        return edges

    def _run_must(self) -> None:
        if not self.spans:
            return
        self.entry_facts = {0: frozenset()}
        work = deque([0])
        while work:
            bid = work.popleft()
            for succ, state in self._out_edges(bid, self.entry_facts[bid]):
                known = self.entry_facts.get(succ)
                if known is None:
                    self.entry_facts[succ] = state
                    work.append(succ)
                else:
                    merged = known & state
                    if merged != known:
                        self.entry_facts[succ] = merged
                        work.append(succ)
        for bid, entry in self.entry_facts.items():
            self._out_edges(bid, entry, record=self.pc_facts)

    # -- may-analysis (type summaries) -----------------------------------

    def _typeval_parity(self, types: Dict, desc: Tuple) -> Optional[int]:
        def atom(a: Tuple[str, int]) -> Optional[int]:
            kind, index = a
            if kind == "k":
                return index
            value = types.get((kind, index))
            if value is None:
                return None
            if value[0] == "smi":
                return 0
            if value[0] in _HEAP_KINDS:
                return 1
            return None  # double / anything else: no tag parity

        op = desc[0]
        if op == "const":
            return desc[1]
        if op == "copy":
            return atom(desc[1])
        a, b = atom(desc[1]), atom(desc[2])
        if op == "xor":
            return a ^ b if a is not None and b is not None else None
        if op == "and":
            if a == 0 or b == 0:
                return 0
            if a == 1 and b == 1:
                return 1
            return None
        if op == "or":
            if a == 1 or b == 1:
                return 1
            if a == 0 and b == 0:
                return 0
            return None
        return None

    def _apply_types(self, types: Dict, instr: MachineInstr) -> None:
        effect = effect_of(instr)
        for freg in effect.float_defs:
            types[("f", freg)] = ("double", None)
        at = abstract_transfer_of(instr)
        dest = at.dest
        if dest is None:
            if instr.op == MOp.STRF and instr.mem is not None \
                    and instr.mem[0] == FRAME_BASE:
                types[("s", instr.mem[3])] = ("double", None)
            return
        key = (dest[0], dest[1])
        if at.parity is not None and at.parity[0] == "copy":
            value = types.get((at.parity[1][0], at.parity[1][1]))
            if value is not None:
                types[key] = value
            else:
                types.pop(key, None)
            return
        p = self._typeval_parity(types, at.parity) if at.parity else None
        if p == 0:
            types[key] = ("smi", None)
        elif p == 1:
            types[key] = ("heap-object", None)
        else:
            types.pop(key, None)

    def _shape_value(self, word: int) -> TypeVal:
        a_map = self.maps.get(word)
        if a_map is not None:
            type_name = getattr(getattr(a_map, "instance_type", None), "name", "")
            if type_name == "HEAP_NUMBER":
                return ("boxed-number", None)
            if type_name == "STRING":
                return ("string", None)
        return ("object", frozenset({word}))

    def _refine_types(self, types: Dict, fact: Fact) -> None:
        tag = fact[0]
        if tag == "par":
            key = ("r", fact[1])
            if fact[2] == 0:
                types[key] = ("smi", None)
            elif types.get(key) is None:
                types[key] = ("heap-object", None)
        elif tag == "regeq":
            self._refine_types(types, ("par", fact[1], fact[2] & 1))
        elif tag == "map" and fact[2] == 0:
            current = types.get(("r", fact[1]))
            refined = self._shape_value(fact[3])
            if current is None or current[0] in ("heap-object", "object"):
                types[("r", fact[1])] = refined

    def _out_type_edges(self, bid: int, entry: Dict) -> List[Tuple[int, Dict]]:
        start, end = self.spans[bid]
        types = dict(entry)
        for pc in range(start, end - 1):
            self._apply_types(types, self.instrs[pc])
        last_pc = end - 1
        last = self.instrs[last_pc]
        self.exit_types[bid] = dict(types)
        edges: List[Tuple[int, Dict]] = []
        if last.op == MOp.BCC:
            taken = self.block_at.get(last.target)
            if taken is not None:
                edges.append((taken, dict(types)))
            fall = self.block_at.get(last_pc + 1)
            if fall is not None:
                through = dict(types)
                site = self.sites.get(bid)
                if site is not None and site.site == "branch" \
                        and site.fact is not None:
                    self._refine_types(through, site.fact)
                edges.append((fall, through))
        elif last.op == MOp.B:
            target = self.block_at.get(last.target)
            if target is not None:
                edges.append((target, dict(types)))
        elif last.op in (MOp.RET, MOp.DEOPT):
            pass
        else:
            self._apply_types(types, last)
            self.exit_types[bid] = dict(types)
            successor = self.block_at.get(last_pc + 1)
            if successor is not None:
                edges.append((successor, dict(types)))
        return edges

    def _run_may(self) -> None:
        if not self.spans:
            return
        self.entry_types = {0: {}}
        work = deque([0])
        # The system is monotone over a finite-height lattice (shape
        # sets are capped), so this terminates; the round bound is a
        # defensive backstop only.
        rounds = 0
        limit = 64 * max(1, len(self.spans)) * max(1, len(self.spans))
        while work and rounds < limit:
            rounds += 1
            bid = work.popleft()
            for succ, state in self._out_type_edges(bid, self.entry_types[bid]):
                known = self.entry_types.get(succ)
                if known is None:
                    self.entry_types[succ] = state
                    work.append(succ)
                    continue
                merged = {}
                for key in known.keys() & state.keys():
                    joined = join_typeval(known[key], state[key])
                    if joined is not None:
                        merged[key] = joined
                if merged != known:
                    self.entry_types[succ] = merged
                    work.append(succ)

    # -- classification ---------------------------------------------------

    def _resolve_packed_smi(self, word: int) -> bool:
        a_map = self.maps.get(word)
        return a_map is not None and \
            a_map.elements_kind == ElementsKind.PACKED_SMI

    def _implied(self, state: FrozenSet[Fact], fact: Fact) -> Tuple[bool, str]:
        if fact in state:
            return True, f"fact [{render_fact(fact)}] holds on every path"
        tag = fact[0]
        if tag == "par":
            for f in state:
                if f[0] == "regeq" and f[1] == fact[1] \
                        and (f[2] & 1) == fact[2]:
                    return True, (
                        f"r{fact[1]} is the constant {f[2]} "
                        f"(parity {fact[2]})"
                    )
        if tag == "memsmi" and fact[2] >= 0:
            # Elements-kind proof (typed object shapes): a bounds-checked
            # indexed load from an object with a proven PACKED_SMI map
            # cannot observe a tagged pointer.
            base, index = fact[1], fact[2]
            has_bounds = any(
                f[0] == "ub" and f[1] == index and f[2] == base
                for f in state
            )
            if has_bounds:
                for f in state:
                    if f[0] == "map" and f[1] == base and f[2] == 0 \
                            and self._resolve_packed_smi(f[3]):
                        return True, (
                            f"r{base} has a PACKED_SMI map (word {f[3]}) "
                            f"and r{index} is bounds-checked against it"
                        )
        return False, ""

    def _stable_from_entry(self, bid: int, site: _Site) -> bool:
        fact = site.fact
        assert fact is not None
        regs = set(_fact_regs(fact))
        heap_dependent = fact[0] in _HEAP_FACTS
        start, _end = self.spans[bid]
        for pc in range(start, site.site_pc):
            instr = self.instrs[pc]
            if regs & effect_of(instr).int_defs:
                return False
            if heap_dependent and abstract_transfer_of(instr).kills_heap:
                return False
        return True

    def _actions(self, site: _Site) -> Optional[Tuple[Tuple[int, Action], ...]]:
        """Per-pc replacement actions, or None when the site cannot be
        elided soundly (a condition instruction defines a fact register,
        or the branch does not target a deopt stub)."""
        fact = site.fact
        assert fact is not None
        fact_regs = set(_fact_regs(fact))
        if site.site == "jsldrsmi":
            return ()
        branch = self.instrs[site.site_pc]
        if not (0 <= branch.target < self.count
                and self.instrs[branch.target].op == MOp.DEOPT):
            return None
        actions: List[Tuple[int, Action]] = []
        for pc in site.run_pcs:
            instr = self.instrs[pc]
            effect = effect_of(instr)
            if effect.int_defs & fact_regs:
                return None  # the condition perturbs what we reason about
            pure_flags = (
                effect.sets_flags
                and not effect.int_defs
                and not effect.float_defs
                and not effect.slot_defs
                and not instr.shared_with_main
                and instr.check_id == site.check_id
            )
            if pure_flags:
                actions.append((pc, ("skip",)))
            elif (
                instr.op == MOp.LDR
                and fact[0] == "map"
                and instr.mem is not None
                and instr.mem[0] == fact[1]
                and instr.mem[1] < 0
                and instr.mem[3] == fact[2]
            ):
                # The loaded word is the proven map word: substitute the
                # constant so register state stays bit-identical without
                # the heap access.
                actions.append((pc, ("const", instr.dst, fact[3])))
            else:
                actions.append((pc, ("keep",)))
        return tuple(actions)

    def _classify(self) -> Dict[int, CheckClassification]:
        result: Dict[int, CheckClassification] = {}
        points = getattr(self.code, "deopt_points", {}) or {}
        for bid, site in sorted(self.sites.items()):
            point = points.get(site.check_id)
            kind_name = point.kind.name if point is not None else ""
            entry = self.entry_facts.get(bid)
            if entry is None:
                result[site.check_id] = CheckClassification(
                    site.check_id, kind_name, site.site, site.site_pc, bid,
                    REQUIRED, site.fact, "unreachable block", False,
                )
                continue
            if site.fact is None:
                result[site.check_id] = CheckClassification(
                    site.check_id, kind_name, site.site, site.site_pc, bid,
                    REQUIRED, None,
                    "no fact in the analysis language for this condition",
                    False,
                )
                continue
            state = self.pc_facts.get(site.site_pc, frozenset())
            implied, why = self._implied(state, site.fact)
            if implied:
                actions = self._actions(site)
                result[site.check_id] = CheckClassification(
                    site.check_id, kind_name, site.site, site.site_pc, bid,
                    REDUNDANT, site.fact, why, actions is not None,
                )
                continue
            if self._stable_from_entry(bid, site):
                actions = self._actions(site)
                result[site.check_id] = CheckClassification(
                    site.check_id, kind_name, site.site, site.site_pc, bid,
                    HOISTABLE, site.fact,
                    f"fact [{render_fact(site.fact)}] is stable from block "
                    "entry; one hoisted guard covers it",
                    actions is not None,
                )
                continue
            result[site.check_id] = CheckClassification(
                site.check_id, kind_name, site.site, site.site_pc, bid,
                REQUIRED, site.fact,
                "operands or heap state change between block entry and "
                "the check",
                False,
            )
        return result

    def _build_plans(
        self, classifications: Dict[int, CheckClassification]
    ) -> Dict[int, TypedBlockPlan]:
        plans: Dict[int, TypedBlockPlan] = {}
        for bid, site in self.sites.items():
            verdict = classifications.get(site.check_id)
            if verdict is None or not verdict.eligible or site.fact is None:
                continue
            actions = self._actions(site)
            if actions is None:
                continue
            elided = sum(1 for _pc, act in actions if act[0] != "keep")
            start, end = self.spans[bid]
            plans[bid] = TypedBlockPlan(
                bid=bid,
                start=start,
                end=end,
                check_id=site.check_id,
                site=site.site,
                site_pc=site.site_pc,
                fact=site.fact,
                guards=(site.fact,) if verdict.klass == HOISTABLE else (),
                actions=actions,
                n_cond_elided=elided,
            )
        return plans

    def _compute_flags_live(self) -> bool:
        for start, end in self.spans:
            for pc in range(start, end):
                effect = effect_of(self.instrs[pc])
                if effect.reads_flags:
                    return True
                if effect.sets_flags:
                    break
        return False

    # -- entry point ------------------------------------------------------

    def run(self) -> TypeflowResult:
        name = getattr(getattr(self.code.shared, "info", None), "name", "?")
        result = TypeflowResult(function=name, target=self.code.target.name)
        result.body_instructions = sum(
            1 for i in self.instrs if i.op != MOp.DEOPT
        )
        if not self.instrs:
            return result
        self._find_sites()
        self._run_must()
        self._run_may()
        result.flags_live = self._compute_flags_live()
        result.classifications = self._classify()
        if not result.flags_live:
            result.plans = self._build_plans(result.classifications)
        by_block = {c.block: c for c in result.classifications.values()}
        for bid, (start, end) in enumerate(self.spans):
            if bid not in self.entry_facts:
                continue  # unreachable: no summary
            entry_t = self.entry_types.get(bid, {})
            exit_t = self.exit_types.get(bid, {})
            result.summaries.append(BlockTypeSummary(
                block=bid,
                start=start,
                end=end,
                entry_types={
                    f"{k[0]}{k[1]}": render_typeval(v)
                    for k, v in entry_t.items()
                },
                exit_types={
                    f"{k[0]}{k[1]}": render_typeval(v)
                    for k, v in exit_t.items()
                },
                entry_facts=tuple(sorted(
                    render_fact(f) for f in self.entry_facts[bid]
                )),
                check=by_block.get(bid),
            ))
        return result


#: fact tags the machine tier can test dynamically — the shared guard
#: vocabulary: :func:`repro.machine.blockjit._guard_test` compiles each
#: of these to a register/heap predicate and
#: :func:`repro.machine.continuations.fact_holds` re-evaluates the same
#: predicates interpretively.  ``spar`` facts (frame-slot parity) are
#: deliberately absent: they have no compiled guard, so version keys
#: and dispatch states are restricted to this vocabulary.
GUARDABLE_FACTS: Tuple[str, ...] = ("par", "regeq", "map", "ub", "memsmi")


def guardable_fact(fact: Fact) -> bool:
    """True when the machine tier can dynamically test ``fact``."""
    return bool(fact) and fact[0] in GUARDABLE_FACTS


def version_key(state) -> FrozenSet[Fact]:
    """Canonical LBBV version key for a fact state: the dynamically
    testable (guardable) subset.  Facts outside the guard vocabulary
    cannot be established by a dispatcher nor promised across a chained
    edge, so they never participate in version identity."""
    return frozenset(f for f in state if guardable_fact(f))


class VersionAnalysis:
    """Per-code-object analysis context for runtime block versioning.

    Wraps the prepared must-analysis (:class:`_Typeflow` after site
    discovery and fixpoint) and exposes the two queries the LBBV tier
    needs beyond the static result:

    * :meth:`out_states` — per-edge *outgoing* type-states under an
      arbitrary (version-specific) entry state, computed by the same
      sound transfer function the static analysis converged with; and
    * :meth:`plan_for` — a guard-free :class:`TypedBlockPlan` for the
      block's check site when the version's entry state propagates to
      an implication at the site, i.e. the version may elide the check
      with **zero** entry guards because its key already promises the
      fact.

    The static per-block entry facts (:attr:`static_entry`) are the
    meet over *all* paths; a version key is the state along *one*
    observed path, so ``plan_for`` proves a superset of what the static
    tier could (that is the whole point of versioning).
    """

    def __init__(self, code: CodeObject) -> None:
        tf = _Typeflow(code)
        if tf.instrs:
            tf._find_sites()
            tf._run_must()
        self._tf = tf
        self.flags_live = tf._compute_flags_live() if tf.instrs else False
        self.spans = tf.spans
        self.sites = tf.sites
        #: converged must-state at each reachable block's entry
        self.static_entry: Dict[int, FrozenSet[Fact]] = tf.entry_facts
        # The lbbv tier's chain-gain search revisits the same
        # (block, entry-state) pairs across many DFS roots; the transfer
        # function is pure over the immutable code object, so both edge
        # and plan queries memoize cleanly.
        self._out_cache: Dict[
            Tuple[int, FrozenSet[Fact]],
            List[Tuple[int, FrozenSet[Fact]]],
        ] = {}
        self._plan_cache: Dict[
            Tuple[int, FrozenSet[Fact]], Optional[TypedBlockPlan]
        ] = {}

    def out_states(
        self, bid: int, entry,
    ) -> List[Tuple[int, FrozenSet[Fact]]]:
        """Outgoing ``(successor, fact-state)`` edges of ``bid`` under a
        custom entry state (sound for any entry that actually holds)."""
        key = (bid, frozenset(entry))
        cached = self._out_cache.get(key)
        if cached is None:
            cached = self._out_cache[key] = self._tf._out_edges(bid, key[1])
        return cached

    def state_at_site(self, bid: int, entry) -> Optional[FrozenSet[Fact]]:
        """Propagated fact state at the block's check site under
        ``entry``, or None when the block has no classified site."""
        site = self.sites.get(bid)
        if site is None:
            return None
        start, _end = self.spans[bid]
        facts: Set[Fact] = set(entry)
        for pc in range(start, site.site_pc):
            self._tf._apply(facts, self._tf.instrs[pc])
        return frozenset(facts)

    def plan_for(self, bid: int, entry) -> Optional[TypedBlockPlan]:
        """Guard-free elision plan for ``bid`` assuming ``entry`` holds
        at block entry; None when the site is not provably redundant
        under that state (versions never carry hoisted guards — a state
        that does not imply the fact simply gets no specialized body)."""
        if self.flags_live:
            return None
        site = self.sites.get(bid)
        if site is None or site.fact is None:
            return None
        memo_key = (bid, frozenset(entry))
        if memo_key in self._plan_cache:
            return self._plan_cache[memo_key]
        plan = self._plan_for_uncached(bid, memo_key[1], site)
        self._plan_cache[memo_key] = plan
        return plan

    def _plan_for_uncached(self, bid, entry, site):
        state = self.state_at_site(bid, entry)
        implied, _why = self._tf._implied(state, site.fact)
        if not implied:
            return None
        actions = self._tf._actions(site)
        if actions is None:
            return None
        elided = sum(1 for _pc, act in actions if act[0] != "keep")
        start, end = self.spans[bid]
        return TypedBlockPlan(
            bid=bid, start=start, end=end, check_id=site.check_id,
            site=site.site, site_pc=site.site_pc, fact=site.fact,
            guards=(), actions=actions, n_cond_elided=elided,
        )

    def establishes(self, state, facts) -> bool:
        """True when ``state`` implies every fact in ``facts`` — the
        legality predicate for a guard-free chained edge (mclint's
        ``version-entry-guard`` invariant re-derives edges with this)."""
        snapshot = frozenset(state)
        return all(self._tf._implied(snapshot, f)[0] for f in facts)


def version_analysis(code: CodeObject) -> VersionAnalysis:
    """Run (or fetch the cached) version-analysis context; cached on
    ``code._version_analysis`` like ``_typeflow`` (code objects are
    immutable once generation finishes)."""
    cached = getattr(code, "_version_analysis", None)
    if cached is not None:
        return cached
    ctx = VersionAnalysis(code)
    code._version_analysis = ctx
    return ctx


def edge_type_states(
    code: CodeObject,
) -> Dict[int, List[Tuple[int, FrozenSet[Fact]]]]:
    """Per-edge *outgoing* type-states of the converged must-analysis:
    ``{bid: [(succ, facts-on-that-edge), ...]}`` for every reachable
    block.  This is strictly finer than per-block entry facts — a merge
    point's entry state is the meet over these edges, and the
    difference between an individual edge state and the meet is exactly
    the precision the LBBV tier recovers by versioning."""
    ctx = version_analysis(code)
    edges: Dict[int, List[Tuple[int, FrozenSet[Fact]]]] = {}
    for bid, entry in ctx.static_entry.items():
        edges[bid] = ctx.out_states(bid, entry)
    return edges


def analyze_typeflow(code: CodeObject) -> TypeflowResult:
    """Run (or fetch the cached) typeflow analysis for one code object.

    Code objects are immutable once generation finishes, so the result
    is cached on ``code._typeflow`` exactly like ``_decoded``/``_blocks``.
    """
    cached = getattr(code, "_typeflow", None)
    if cached is not None:
        return cached
    result = _Typeflow(code).run()
    code._typeflow = result
    return result


def typed_plans(code: CodeObject) -> Dict[int, TypedBlockPlan]:
    """Elision plans per fused-block id, for the blockjit typed tier.

    Empty when the code object uses the flag-threading ABI (flags cross
    block boundaries; the typed variants do not thread elided flag
    state) or when nothing is provably elidable.
    """
    result = analyze_typeflow(code)
    if result.flags_live:
        return {}
    return result.plans


def cross_validate(
    codes, check_trips: Dict[Tuple[int, int], int], bundle_root=None,
) -> List[Diagnostic]:
    """Static-vs-dynamic soundness check over a run's code-object history.

    ``check_trips`` maps ``(code.serial, check_id)`` to the number of
    eager deopts the engine recorded for that check
    (:attr:`repro.engine.Engine.check_trips`).  Any trip of a check the
    analysis classified *redundant* is an analysis soundness bug: an
    ERROR diagnostic is returned and a ``typeflow-unsound`` crash bundle
    captured for ``python -m repro.supervise`` forensics.  Note that
    fault injection (:mod:`repro.resilience`) forces spurious trips that
    would false-positive here — the validator is only meaningful over
    uninjected runs, which is all the CLI and CI job perform.
    """
    from ..supervise.bundles import capture_bundle

    diagnostics: List[Diagnostic] = []
    for code in codes:
        result = analyze_typeflow(code)
        serial = getattr(code, "serial", -1)
        for check_id, verdict in sorted(result.classifications.items()):
            if verdict.klass != REDUNDANT:
                continue
            trips = check_trips.get((serial, check_id), 0)
            if not trips:
                continue
            message = (
                f"{result.function} [{result.target}] code #{serial}: check "
                f"{check_id} ({verdict.kind or 'unknown kind'}) classified "
                f"redundant [{verdict.reason}] but dynamically deoptimized "
                f"{trips} time(s) — unsound transfer or proof rule"
            )
            diagnostics.append(Diagnostic(
                Severity.ERROR, "typeflow", "typeflow-soundness", message,
                pc=verdict.pc,
            ))
            capture_bundle("typeflow-unsound", {
                "function": result.function,
                "target": result.target,
                "code_serial": serial,
                "check_id": check_id,
                "check_kind": verdict.kind,
                "pc": verdict.pc,
                "block": verdict.block,
                "fact": render_fact(verdict.fact)
                if verdict.fact is not None else None,
                "reason": verdict.reason,
                "dynamic_trips": trips,
                "counts": result.counts,
            }, root=bundle_root)
    return diagnostics
