"""Structural verifier for the speculative IR.

Checks the invariants the rest of the pipeline silently relies on (the
frame-state soundness conditions of Flueckiger et al., plus the structural
SSA discipline of the block-ordered sea of nodes):

* **structure** — node ids unique, ``node.block`` backpointers consistent,
  no dead node left scheduled, every input a live scheduled value node;
* **cfg** — predecessor/successor lists bidirectional, every non-empty
  reachable block terminated, control ops only in terminator position,
  branch/goto targets matching the successor lists;
* **phi** — phis grouped at the block start, input arity equal to the
  predecessor count, each input dominating its predecessor's exit;
* **def-dominates-use** — via :class:`DominatorTree`, with intra-block
  ordering for same-block uses;
* **frame states** — every check / deopt node owns a checkpoint, each
  checkpoint value is a live scheduled node dominating the check, the
  interpreter register indices are unique and in range.

The verifier never mutates the graph; it returns diagnostics.  Use
:func:`assert_valid` for the raise-on-error form (the per-pass hook in
:mod:`repro.ir.passes.pipeline` wraps it so the failing pass is named).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..bytecode.opcodes import FunctionInfo
from ..ir.graph import Graph
from ..ir.nodes import Block, Node
from ..jit.checks import CheckKind
from .diagnostics import Diagnostic, Severity, errors, render_table
from .dominators import DominatorTree

_TERMINATOR_OPS = ("branch", "goto", "return", "deopt")


class VerificationError(Exception):
    """Raised when a graph (or code object) violates an invariant."""

    def __init__(self, title: str, diagnostics: List[Diagnostic]) -> None:
        self.title = title
        self.diagnostics = diagnostics
        super().__init__(render_table(diagnostics, title=title))


def verify_graph(
    graph: Graph,
    phase: str = "",
    info: Optional[FunctionInfo] = None,
    removed_kinds: Optional[Set[CheckKind]] = None,
) -> List[Diagnostic]:
    """Verify all structural invariants; returns diagnostics (never raises).

    ``info`` (the function's bytecode metadata) enables the frame-state
    range checks; ``removed_kinds`` asserts the check-elimination
    postcondition that no check of a removed kind survived.
    """
    return _Verifier(graph, phase, info, removed_kinds).run()


def assert_valid(
    graph: Graph,
    phase: str = "",
    info: Optional[FunctionInfo] = None,
    removed_kinds: Optional[Set[CheckKind]] = None,
) -> List[Diagnostic]:
    """Verify and raise :class:`VerificationError` on any error."""
    diagnostics = verify_graph(graph, phase, info, removed_kinds)
    bad = errors(diagnostics)
    if bad:
        title = f"IR verification failed for {graph.name!r}"
        if phase:
            title += f" after pass {phase!r}"
        raise VerificationError(title, bad)
    return diagnostics


class _Verifier:
    def __init__(
        self,
        graph: Graph,
        phase: str,
        info: Optional[FunctionInfo],
        removed_kinds: Optional[Set[CheckKind]],
    ) -> None:
        self.graph = graph
        self.phase = phase
        self.info = info
        self.removed_kinds = removed_kinds
        self.diagnostics: List[Diagnostic] = []
        #: node id -> (block, position) for every scheduled node
        self.schedule: Dict[int, Tuple[Block, int]] = {}
        self.dom: Optional[DominatorTree] = None

    # -- reporting -------------------------------------------------------

    def error(self, invariant: str, message: str, node: Optional[Node] = None,
              block: Optional[Block] = None) -> None:
        self._report(Severity.ERROR, invariant, message, node, block)

    def warning(self, invariant: str, message: str, node: Optional[Node] = None,
                block: Optional[Block] = None) -> None:
        self._report(Severity.WARNING, invariant, message, node, block)

    def _report(self, severity: Severity, invariant: str, message: str,
                node: Optional[Node], block: Optional[Block]) -> None:
        if self.phase:
            message = f"{message} [after {self.phase}]"
        self.diagnostics.append(
            Diagnostic(
                severity,
                "verifier",
                invariant,
                message,
                node_id=node.id if node is not None else None,
                block_id=(
                    block.id if block is not None
                    else (node.block.id if node is not None and node.block is not None else None)
                ),
            )
        )

    # -- driver ----------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        self._check_structure()
        self._check_cfg()
        self.dom = DominatorTree(self.graph)
        reachable = {b.id for b in self.dom.rpo}
        for block in self.graph.blocks:
            if block.id not in reachable:
                continue
            self._check_block_nodes(block)
        if self.removed_kinds:
            self._check_removal_postcondition()
        return self.diagnostics

    # -- structure -------------------------------------------------------

    def _check_structure(self) -> None:
        seen_ids: Set[int] = set()
        for block in self.graph.blocks:
            for position, node in enumerate(block.nodes):
                if node.id in seen_ids:
                    self.error(
                        "unique-ids",
                        f"node n{node.id} ({node.op}) scheduled more than once",
                        node, block,
                    )
                seen_ids.add(node.id)
                self.schedule[node.id] = (block, position)
                if node.block is not block:
                    owner = f"B{node.block.id}" if node.block is not None else "None"
                    self.error(
                        "block-backpointer",
                        f"n{node.id} ({node.op}) scheduled in B{block.id} but "
                        f"node.block is {owner}",
                        node, block,
                    )
                if node.dead:
                    self.error(
                        "no-dead-scheduled",
                        f"dead node n{node.id} ({node.op}) still scheduled",
                        node, block,
                    )

    def _check_cfg(self) -> None:
        in_graph = {b.id for b in self.graph.blocks}
        if self.graph.entry.id not in in_graph:
            self.error("cfg-entry", "entry block missing from graph.blocks")
        for block in self.graph.blocks:
            for successor in block.successors:
                if block not in successor.predecessors:
                    self.error(
                        "cfg-bidirectional",
                        f"B{block.id} lists successor B{successor.id}, which "
                        f"does not list B{block.id} as predecessor",
                        block=block,
                    )
            for pred in block.predecessors:
                if block not in pred.successors:
                    self.error(
                        "cfg-bidirectional",
                        f"B{block.id} lists predecessor B{pred.id}, which "
                        f"does not list B{block.id} as successor",
                        block=block,
                    )

    # -- per-block node checks (reachable blocks only) -------------------

    def _check_block_nodes(self, block: Block) -> None:
        nodes = block.nodes
        if nodes:
            self._check_terminator(block)
        phi_region = True
        for position, node in enumerate(nodes):
            if node.op in _TERMINATOR_OPS and position != len(nodes) - 1:
                self.error(
                    "terminator-position",
                    f"control node n{node.id} ({node.op}) at position "
                    f"{position}, not at the block end",
                    node, block,
                )
            if node.op == "phi":
                if not phi_region:
                    self.error(
                        "phi-grouping",
                        f"phi n{node.id} appears after non-phi nodes",
                        node, block,
                    )
                self._check_phi(node, block)
            else:
                phi_region = False
                self._check_inputs(node, block, position)
            if node.is_check or node.op == "deopt":
                self._check_frame_state(node, block, position)

    def _check_terminator(self, block: Block) -> None:
        terminator = block.nodes[-1]
        if terminator.op not in _TERMINATOR_OPS:
            self.error(
                "block-terminated",
                f"reachable block B{block.id} ends in n{terminator.id} "
                f"({terminator.op}), not a terminator",
                terminator, block,
            )
            return
        successor_ids = {s.id for s in block.successors}
        if terminator.op == "goto":
            target = terminator.param("target_block")
            expected = {target.id} if target is not None else set()
            if target is None:
                self.error("goto-target", f"goto n{terminator.id} has no target",
                           terminator, block)
            elif target not in self.graph.blocks:
                self.error(
                    "goto-target",
                    f"goto n{terminator.id} targets B{target.id}, which is "
                    "not in the graph",
                    terminator, block,
                )
            if expected and successor_ids != expected:
                self.error(
                    "successor-consistency",
                    f"goto targets B{target.id} but successors are "
                    f"{sorted(successor_ids)}",
                    terminator, block,
                )
        elif terminator.op == "branch":
            true_block = terminator.param("true_block")
            false_block = terminator.param("false_block")
            if true_block is None or false_block is None:
                self.error(
                    "branch-targets",
                    f"branch n{terminator.id} missing true/false targets",
                    terminator, block,
                )
                return
            expected = {true_block.id, false_block.id}
            if successor_ids != expected:
                self.error(
                    "successor-consistency",
                    f"branch targets {sorted(expected)} but successors are "
                    f"{sorted(successor_ids)}",
                    terminator, block,
                )
            for target in (true_block, false_block):
                if target not in self.graph.blocks:
                    self.error(
                        "branch-targets",
                        f"branch n{terminator.id} targets B{target.id}, "
                        "which is not in the graph",
                        terminator, block,
                    )
        else:  # return / deopt end the function
            if successor_ids:
                self.error(
                    "successor-consistency",
                    f"{terminator.op} block B{block.id} has successors "
                    f"{sorted(successor_ids)}",
                    terminator, block,
                )

    # -- values ----------------------------------------------------------

    def _value_ok(self, node: Node, value: Node, role: str, invariant: str) -> bool:
        """Shared liveness checks for inputs and checkpoint values."""
        if value.dead:
            self.error(
                invariant,
                f"n{node.id} ({node.op}) {role} n{value.id} ({value.op}) is dead",
                node,
            )
            return False
        if value.id not in self.schedule:
            self.error(
                invariant,
                f"n{node.id} ({node.op}) {role} n{value.id} ({value.op}) is "
                "not scheduled in any block",
                node,
            )
            return False
        if not value.produces_value:
            self.error(
                invariant,
                f"n{node.id} ({node.op}) {role} n{value.id} ({value.op}) "
                "produces no value",
                node,
            )
            return False
        return True

    def _dominates_use(self, value: Node, use_block: Block, use_position: int) -> bool:
        assert self.dom is not None
        value_block, value_position = self.schedule[value.id]
        if value_block is use_block:
            return value_position < use_position
        return self.dom.dominates(value_block, use_block)

    def _check_inputs(self, node: Node, block: Block, position: int) -> None:
        for an_input in node.inputs:
            if not self._value_ok(node, an_input, "input", "no-dangling-inputs"):
                continue
            input_block, _ = self.schedule[an_input.id]
            assert self.dom is not None
            if not self.dom.is_reachable(input_block):
                self.error(
                    "def-dominates-use",
                    f"n{node.id} ({node.op}) input n{an_input.id} is defined "
                    f"in unreachable block B{input_block.id}",
                    node, block,
                )
                continue
            if not self._dominates_use(an_input, block, position):
                self.error(
                    "def-dominates-use",
                    f"definition n{an_input.id} ({an_input.op}) in "
                    f"B{input_block.id} does not dominate its use "
                    f"n{node.id} ({node.op}) in B{block.id}",
                    node, block,
                )

    def _check_phi(self, node: Node, block: Block) -> None:
        preds = block.predecessors
        if not preds:
            self.error(
                "phi-arity",
                f"phi n{node.id} in block B{block.id} with no predecessors",
                node, block,
            )
            return
        if len(node.inputs) != len(preds):
            self.error(
                "phi-arity",
                f"phi n{node.id} has {len(node.inputs)} inputs but "
                f"B{block.id} has {len(preds)} predecessors",
                node, block,
            )
        assert self.dom is not None
        for index, an_input in enumerate(node.inputs[: len(preds)]):
            pred = preds[index]
            if not self.dom.is_reachable(pred):
                continue  # stale predecessor left by schedule_rpo
            if not self._value_ok(node, an_input, f"input[{index}]", "no-dangling-inputs"):
                continue
            input_block, _ = self.schedule[an_input.id]
            if input_block is not pred and not self.dom.dominates(input_block, pred):
                self.error(
                    "def-dominates-use",
                    f"phi n{node.id} input[{index}] n{an_input.id} "
                    f"(B{input_block.id}) does not dominate incoming edge "
                    f"from B{pred.id}",
                    node, block,
                )

    # -- frame states ----------------------------------------------------

    def _check_frame_state(self, node: Node, block: Block, position: int) -> None:
        checkpoint = node.checkpoint
        if checkpoint is None:
            what = "check" if node.is_check else "deopt"
            kind = f" ({node.check_kind.name})" if node.check_kind is not None else ""
            self.error(
                "frame-state-present",
                f"{what} node n{node.id} ({node.op}){kind} has no checkpoint",
                node, block,
            )
            return
        if self.info is not None:
            if not 0 <= checkpoint.bytecode_pc < max(1, len(self.info.bytecode)):
                self.error(
                    "frame-state-pc",
                    f"checkpoint of n{node.id} resumes at bytecode pc "
                    f"{checkpoint.bytecode_pc}, outside [0, "
                    f"{len(self.info.bytecode)})",
                    node, block,
                )
        seen_regs: Set[int] = set()
        for reg, value in checkpoint.values:
            if reg in seen_regs:
                self.error(
                    "frame-state-regs",
                    f"checkpoint of n{node.id} assigns interpreter register "
                    f"r{reg} twice",
                    node, block,
                )
            seen_regs.add(reg)
            if self.info is not None and not 0 <= reg < self.info.register_count:
                self.error(
                    "frame-state-regs",
                    f"checkpoint of n{node.id} references interpreter "
                    f"register r{reg}, outside [0, {self.info.register_count})",
                    node, block,
                )
            self._check_frame_value(node, block, position, value, f"r{reg}")
        if checkpoint.this_node is not None:
            self._check_frame_value(node, block, position, checkpoint.this_node, "this")

    def _check_frame_value(self, node: Node, block: Block, position: int,
                           value: Node, slot: str) -> None:
        if not self._value_ok(node, value, f"frame-state value {slot}",
                              "frame-state-live"):
            return
        value_block, _ = self.schedule[value.id]
        assert self.dom is not None
        if not self.dom.is_reachable(value_block):
            self.error(
                "frame-state-live",
                f"frame-state value {slot} of n{node.id} lives in "
                f"unreachable block B{value_block.id}",
                node, block,
            )
            return
        if not self._dominates_use(value, block, position):
            self.error(
                "frame-state-live",
                f"frame-state value {slot} (n{value.id} in B{value_block.id}) "
                f"does not dominate its checkpoint n{node.id} in B{block.id}",
                node, block,
            )

    # -- pass postconditions ---------------------------------------------

    def _check_removal_postcondition(self) -> None:
        assert self.removed_kinds is not None
        from ..jit.checks import DeoptCategory, category_of

        hard_removed = {
            kind for kind in self.removed_kinds
            if category_of(kind) != DeoptCategory.SOFT
        }
        for node in self.graph.all_nodes():
            if node.dead or not node.is_check:
                continue
            if node.check_kind in hard_removed:
                self.error(
                    "check-elim-postcondition",
                    f"check n{node.id} ({node.op}) of removed kind "
                    f"{node.check_kind.name} survived elimination",
                    node,
                )
