"""Bytecode tier: opcodes, AST->bytecode compiler, disassembler."""

from .compiler import CompiledProgram, UnsupportedFeatureError, compile_source
from .disasm import disassemble, format_instr
from .opcodes import (
    BINARY_OPS,
    COMPARE_OPS,
    FEEDBACK_OPS,
    ConstantPool,
    FunctionInfo,
    Instr,
    Op,
)

__all__ = [
    "BINARY_OPS",
    "COMPARE_OPS",
    "CompiledProgram",
    "ConstantPool",
    "FEEDBACK_OPS",
    "FunctionInfo",
    "Instr",
    "Op",
    "UnsupportedFeatureError",
    "compile_source",
    "disassemble",
    "format_instr",
]
