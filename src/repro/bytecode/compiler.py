"""AST -> bytecode compiler (the engine's parser/Ignition front half).

Register allocation is simple and deterministic: parameters occupy the first
registers, hoisted locals the next block, and expression temporaries grow
past them with statement-level reset.  ``var``/``let``/``const`` are all
function-scoped (a documented subset simplification).

Top-level declarations become *globals*, so the common benchmark idiom of
top-level state shared by top-level functions works without closure support.
Capturing a non-global local of an enclosing function raises
:class:`UnsupportedFeatureError` — the JIT tier under study never compiles
such functions in our subset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..lang import ast_nodes as ast
from ..lang.errors import JSSyntaxError
from .opcodes import ConstantPool, FunctionInfo, Instr, Op

_BINARY_OPCODES = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "%": Op.MOD,
    "|": Op.BIT_OR,
    "&": Op.BIT_AND,
    "^": Op.BIT_XOR,
    "<<": Op.SHL,
    ">>": Op.SAR,
    ">>>": Op.SHR,
    "<": Op.TEST_LT,
    "<=": Op.TEST_LE,
    ">": Op.TEST_GT,
    ">=": Op.TEST_GE,
    "==": Op.TEST_EQ,
    "!=": Op.TEST_NE,
    "===": Op.TEST_EQ_STRICT,
    "!==": Op.TEST_NE_STRICT,
}

_COMPOUND_TO_BINARY = {
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
    "&=": "&",
    "|=": "|",
    "^=": "^",
    "<<=": "<<",
    ">>=": ">>",
    ">>>=": ">>>",
}


class UnsupportedFeatureError(JSSyntaxError):
    """Source uses a feature outside the supported subset."""


class CompiledProgram:
    """Result of compiling a whole source: a main function + a table.

    ``functions[0]`` is always the synthesized top-level ``<main>``.
    """

    def __init__(self, main: FunctionInfo, functions: List[FunctionInfo]) -> None:
        self.main = main
        self.functions = functions


class _Scope:
    def __init__(self, parent: Optional["_Scope"], is_function_toplevel: bool) -> None:
        self.parent = parent
        self.is_function_toplevel = is_function_toplevel
        self.bindings: Dict[str, int] = {}

    def lookup(self, name: str) -> Optional[int]:
        return self.bindings.get(name)

    def lookup_in_enclosing_functions(self, name: str) -> bool:
        scope = self.parent
        while scope is not None:
            if name in scope.bindings:
                return True
            scope = scope.parent
        return False


class _LoopContext:
    def __init__(self) -> None:
        self.break_patches: List[int] = []
        self.continue_patches: List[int] = []


class _FunctionCompiler:
    """Compiles a single function body to bytecode."""

    def __init__(
        self,
        program: "_ProgramCompiler",
        name: str,
        params: Sequence[str],
        is_toplevel: bool,
        parent_scope: Optional[_Scope],
    ) -> None:
        self.program = program
        self.name = name
        self.params = list(params)
        self.is_toplevel = is_toplevel
        self.scope = _Scope(parent_scope, is_function_toplevel=True)
        self.code: List[Instr] = []
        self.constants = ConstantPool()
        self.names: List[str] = []
        self._name_index: Dict[str, int] = {}
        self.feedback_slots = 0
        self.uses_this = False
        self.loop_stack: List[_LoopContext] = []
        for i, param in enumerate(self.params):
            self.scope.bindings[param] = i
        self.locals_end = len(self.params)
        self.next_temp = self.locals_end
        self.max_register = max(0, self.locals_end)

    # ------------------------------------------------------------------
    # Low-level helpers
    # ------------------------------------------------------------------

    def emit(self, op: Op, **kwargs) -> int:
        instr = Instr(op, **kwargs)
        self.code.append(instr)
        return len(self.code) - 1

    def new_feedback_slot(self) -> int:
        slot = self.feedback_slots
        self.feedback_slots += 1
        return slot

    def name_index(self, name: str) -> int:
        existing = self._name_index.get(name)
        if existing is not None:
            return existing
        index = len(self.names)
        self.names.append(name)
        self._name_index[name] = index
        return index

    def new_temp(self) -> int:
        reg = self.next_temp
        self.next_temp += 1
        self.max_register = max(self.max_register, self.next_temp)
        return reg

    def reset_temps(self) -> None:
        self.next_temp = self.locals_end

    def declare_local(self, name: str) -> int:
        existing = self.scope.bindings.get(name)
        if existing is not None:
            return existing
        reg = self.locals_end
        self.scope.bindings[name] = reg
        self.locals_end += 1
        self.next_temp = max(self.next_temp, self.locals_end)
        self.max_register = max(self.max_register, self.locals_end)
        return reg

    # ------------------------------------------------------------------
    # Hoisting
    # ------------------------------------------------------------------

    def hoist(self, body: Sequence[ast.Node]) -> None:
        """Pre-declare vars and compile nested function declarations."""
        for node in body:
            self._hoist_node(node)

    def _hoist_node(self, node: ast.Node) -> None:
        if isinstance(node, ast.VariableDeclaration):
            for name, _init in node.declarations:
                if not self.is_toplevel:
                    self.declare_local(name)
        elif isinstance(node, ast.FunctionDeclaration):
            function_index = self.program.compile_function(
                node.name, node.params, node.body, self.scope
            )
            if self.is_toplevel:
                temp = self.new_temp()
                self.emit(Op.CREATE_CLOSURE, dst=temp, a=function_index, line=node.line)
                self.emit(
                    Op.STORE_GLOBAL, a=self.name_index(node.name), b=temp, line=node.line
                )
                self.reset_temps()
            else:
                reg = self.declare_local(node.name)
                self.emit(Op.CREATE_CLOSURE, dst=reg, a=function_index, line=node.line)
        elif isinstance(node, ast.BlockStatement):
            self.hoist(node.body)
        elif isinstance(node, ast.IfStatement):
            self._hoist_node(node.consequent)
            if node.alternate is not None:
                self._hoist_node(node.alternate)
        elif isinstance(node, (ast.WhileStatement, ast.DoWhileStatement)):
            self._hoist_node(node.body)
        elif isinstance(node, ast.ForStatement):
            if node.init is not None:
                self._hoist_node(node.init)
            self._hoist_node(node.body)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def compile_body(self, body: Sequence[ast.Node]) -> FunctionInfo:
        self.hoist(body)
        for node in body:
            self.compile_statement(node)
        undef = self.new_temp()
        self.emit(Op.LOAD_CONST, dst=undef, a=self.constants.special("undefined"))
        self.emit(Op.RETURN, a=undef)
        return FunctionInfo(
            self.name,
            self.params,
            max(self.max_register, 1),
            self.code,
            self.constants,
            self.names,
            self.feedback_slots,
            uses_this=self.uses_this,
        )

    def compile_statement(self, node: ast.Node) -> None:
        if isinstance(node, ast.ExpressionStatement):
            self.compile_expression(node.expression)
            self.reset_temps()
        elif isinstance(node, ast.VariableDeclaration):
            self._compile_variable_declaration(node)
        elif isinstance(node, ast.FunctionDeclaration):
            pass  # handled during hoisting
        elif isinstance(node, ast.BlockStatement):
            for child in node.body:
                self.compile_statement(child)
        elif isinstance(node, ast.IfStatement):
            self._compile_if(node)
        elif isinstance(node, ast.WhileStatement):
            self._compile_while(node)
        elif isinstance(node, ast.DoWhileStatement):
            self._compile_do_while(node)
        elif isinstance(node, ast.ForStatement):
            self._compile_for(node)
        elif isinstance(node, ast.ReturnStatement):
            self._compile_return(node)
        elif isinstance(node, ast.BreakStatement):
            self._compile_break(node)
        elif isinstance(node, ast.ContinueStatement):
            self._compile_continue(node)
        elif isinstance(node, ast.EmptyStatement):
            pass
        else:
            raise UnsupportedFeatureError(
                f"unsupported statement {type(node).__name__}", node.line
            )

    def _compile_variable_declaration(self, node: ast.VariableDeclaration) -> None:
        for name, init in node.declarations:
            if init is None:
                if self.is_toplevel:
                    undef = self.new_temp()
                    self.emit(
                        Op.LOAD_CONST,
                        dst=undef,
                        a=self.constants.special("undefined"),
                        line=node.line,
                    )
                    self.emit(
                        Op.STORE_GLOBAL,
                        a=self.name_index(name),
                        b=undef,
                        line=node.line,
                    )
                continue
            value = self.compile_expression(init)
            if self.is_toplevel:
                self.emit(
                    Op.STORE_GLOBAL, a=self.name_index(name), b=value, line=node.line
                )
            else:
                reg = self.scope.bindings[name]
                if reg != value:
                    self.emit(Op.MOVE, dst=reg, a=value, line=node.line)
            self.reset_temps()

    def _compile_if(self, node: ast.IfStatement) -> None:
        test = self.compile_expression(node.test)
        jump_false = self.emit(Op.JUMP_IF_FALSE, b=test, line=node.line)
        self.reset_temps()
        self.compile_statement(node.consequent)
        if node.alternate is not None:
            jump_end = self.emit(Op.JUMP, line=node.line)
            self.code[jump_false].a = len(self.code)
            self.compile_statement(node.alternate)
            self.code[jump_end].a = len(self.code)
        else:
            self.code[jump_false].a = len(self.code)

    def _compile_while(self, node: ast.WhileStatement) -> None:
        loop = _LoopContext()
        self.loop_stack.append(loop)
        test_pos = len(self.code)
        test = self.compile_expression(node.test)
        jump_false = self.emit(Op.JUMP_IF_FALSE, b=test, line=node.line)
        self.reset_temps()
        self.compile_statement(node.body)
        self.emit(Op.JUMP, a=test_pos, line=node.line)
        end = len(self.code)
        self.code[jump_false].a = end
        self.loop_stack.pop()
        for patch in loop.break_patches:
            self.code[patch].a = end
        for patch in loop.continue_patches:
            self.code[patch].a = test_pos

    def _compile_do_while(self, node: ast.DoWhileStatement) -> None:
        loop = _LoopContext()
        self.loop_stack.append(loop)
        body_pos = len(self.code)
        self.compile_statement(node.body)
        test_pos = len(self.code)
        test = self.compile_expression(node.test)
        self.emit(Op.JUMP_IF_TRUE, a=body_pos, b=test, line=node.line)
        self.reset_temps()
        end = len(self.code)
        self.loop_stack.pop()
        for patch in loop.break_patches:
            self.code[patch].a = end
        for patch in loop.continue_patches:
            self.code[patch].a = test_pos

    def _compile_for(self, node: ast.ForStatement) -> None:
        if node.init is not None:
            self.compile_statement(node.init)
        loop = _LoopContext()
        self.loop_stack.append(loop)
        test_pos = len(self.code)
        jump_false = -1
        if node.test is not None:
            test = self.compile_expression(node.test)
            jump_false = self.emit(Op.JUMP_IF_FALSE, b=test, line=node.line)
            self.reset_temps()
        self.compile_statement(node.body)
        update_pos = len(self.code)
        if node.update is not None:
            self.compile_expression(node.update)
            self.reset_temps()
        self.emit(Op.JUMP, a=test_pos, line=node.line)
        end = len(self.code)
        if jump_false >= 0:
            self.code[jump_false].a = end
        self.loop_stack.pop()
        for patch in loop.break_patches:
            self.code[patch].a = end
        for patch in loop.continue_patches:
            self.code[patch].a = update_pos

    def _compile_return(self, node: ast.ReturnStatement) -> None:
        if node.argument is not None:
            value = self.compile_expression(node.argument)
        else:
            value = self.new_temp()
            self.emit(
                Op.LOAD_CONST, dst=value, a=self.constants.special("undefined"),
                line=node.line,
            )
        self.emit(Op.RETURN, a=value, line=node.line)
        self.reset_temps()

    def _compile_break(self, node: ast.BreakStatement) -> None:
        if not self.loop_stack:
            raise JSSyntaxError("break outside loop", node.line)
        self.loop_stack[-1].break_patches.append(self.emit(Op.JUMP, line=node.line))

    def _compile_continue(self, node: ast.ContinueStatement) -> None:
        if not self.loop_stack:
            raise JSSyntaxError("continue outside loop", node.line)
        self.loop_stack[-1].continue_patches.append(self.emit(Op.JUMP, line=node.line))

    # ------------------------------------------------------------------
    # Expressions (each returns the register holding the value)
    # ------------------------------------------------------------------

    def compile_expression(self, node: ast.Node) -> int:
        if isinstance(node, ast.NumberLiteral):
            dst = self.new_temp()
            self.emit(
                Op.LOAD_CONST,
                dst=dst,
                a=self.constants.number(node.value, node.is_integer),
                line=node.line,
            )
            return dst
        if isinstance(node, ast.StringLiteral):
            dst = self.new_temp()
            self.emit(
                Op.LOAD_CONST, dst=dst, a=self.constants.string(node.value), line=node.line
            )
            return dst
        if isinstance(node, ast.BooleanLiteral):
            dst = self.new_temp()
            self.emit(
                Op.LOAD_CONST,
                dst=dst,
                a=self.constants.special("true" if node.value else "false"),
                line=node.line,
            )
            return dst
        if isinstance(node, ast.NullLiteral):
            dst = self.new_temp()
            self.emit(
                Op.LOAD_CONST, dst=dst, a=self.constants.special("null"), line=node.line
            )
            return dst
        if isinstance(node, ast.UndefinedLiteral):
            dst = self.new_temp()
            self.emit(
                Op.LOAD_CONST,
                dst=dst,
                a=self.constants.special("undefined"),
                line=node.line,
            )
            return dst
        if isinstance(node, ast.Identifier):
            return self._compile_identifier(node)
        if isinstance(node, ast.ThisExpression):
            self.uses_this = True
            dst = self.new_temp()
            self.emit(Op.LOAD_THIS, dst=dst, line=node.line)
            return dst
        if isinstance(node, ast.ArrayLiteral):
            element_regs = [self.compile_expression(element) for element in node.elements]
            dst = self.new_temp()
            self.emit(Op.CREATE_ARRAY, dst=dst, c=element_regs, line=node.line)
            return dst
        if isinstance(node, ast.ObjectLiteral):
            keys = [self.name_index(key) for key, _value in node.properties]
            value_regs = [self.compile_expression(value) for _key, value in node.properties]
            dst = self.new_temp()
            self.emit(Op.CREATE_OBJECT, dst=dst, c=keys, e=value_regs, line=node.line)
            return dst
        if isinstance(node, ast.FunctionExpression):
            function_index = self.program.compile_function(
                node.name or "<anonymous>", node.params, node.body, self.scope
            )
            dst = self.new_temp()
            self.emit(Op.CREATE_CLOSURE, dst=dst, a=function_index, line=node.line)
            return dst
        if isinstance(node, ast.BinaryExpression):
            return self._compile_binary(node)
        if isinstance(node, ast.LogicalExpression):
            return self._compile_logical(node)
        if isinstance(node, ast.ConditionalExpression):
            return self._compile_conditional(node)
        if isinstance(node, ast.UnaryExpression):
            return self._compile_unary(node)
        if isinstance(node, ast.UpdateExpression):
            return self._compile_update(node)
        if isinstance(node, ast.AssignmentExpression):
            return self._compile_assignment(node)
        if isinstance(node, ast.CallExpression):
            return self._compile_call(node)
        if isinstance(node, ast.NewExpression):
            return self._compile_new(node)
        if isinstance(node, ast.MemberExpression):
            return self._compile_member_load(node)
        raise UnsupportedFeatureError(
            f"unsupported expression {type(node).__name__}", node.line
        )

    def _compile_identifier(self, node: ast.Identifier) -> int:
        reg = self.scope.lookup(node.name)
        if reg is not None:
            return reg
        if self.scope.lookup_in_enclosing_functions(node.name):
            raise UnsupportedFeatureError(
                f"closure capture of local {node.name!r} is outside the subset",
                node.line,
            )
        dst = self.new_temp()
        self.emit(
            Op.LOAD_GLOBAL,
            dst=dst,
            a=self.name_index(node.name),
            d=self.new_feedback_slot(),
            line=node.line,
        )
        return dst

    def _compile_binary(self, node: ast.BinaryExpression) -> int:
        if node.operator == ",":
            self.compile_expression(node.left)
            return self.compile_expression(node.right)
        opcode = _BINARY_OPCODES.get(node.operator)
        if opcode is None:
            raise UnsupportedFeatureError(
                f"unsupported operator {node.operator!r}", node.line
            )
        lhs = self.compile_expression(node.left)
        rhs = self.compile_expression(node.right)
        dst = self.new_temp()
        self.emit(
            opcode, dst=dst, a=lhs, b=rhs, d=self.new_feedback_slot(), line=node.line
        )
        return dst

    def _compile_logical(self, node: ast.LogicalExpression) -> int:
        dst = self.new_temp()
        lhs = self.compile_expression(node.left)
        self.emit(Op.MOVE, dst=dst, a=lhs, line=node.line)
        if node.operator == "&&":
            jump = self.emit(Op.JUMP_IF_FALSE, b=dst, line=node.line)
        else:
            jump = self.emit(Op.JUMP_IF_TRUE, b=dst, line=node.line)
        rhs = self.compile_expression(node.right)
        self.emit(Op.MOVE, dst=dst, a=rhs, line=node.line)
        self.code[jump].a = len(self.code)
        return dst

    def _compile_conditional(self, node: ast.ConditionalExpression) -> int:
        dst = self.new_temp()
        test = self.compile_expression(node.test)
        jump_false = self.emit(Op.JUMP_IF_FALSE, b=test, line=node.line)
        consequent = self.compile_expression(node.consequent)
        self.emit(Op.MOVE, dst=dst, a=consequent, line=node.line)
        jump_end = self.emit(Op.JUMP, line=node.line)
        self.code[jump_false].a = len(self.code)
        alternate = self.compile_expression(node.alternate)
        self.emit(Op.MOVE, dst=dst, a=alternate, line=node.line)
        self.code[jump_end].a = len(self.code)
        return dst

    def _compile_unary(self, node: ast.UnaryExpression) -> int:
        operand = self.compile_expression(node.operand)
        dst = self.new_temp()
        opcode = {
            "-": Op.NEG,
            "+": Op.TO_NUMBER,
            "!": Op.NOT,
            "~": Op.BIT_NOT,
            "typeof": Op.TYPEOF,
        }[node.operator]
        feedback = self.new_feedback_slot() if opcode in (Op.NEG, Op.TO_NUMBER) else -1
        self.emit(opcode, dst=dst, a=operand, d=feedback, line=node.line)
        return dst

    def _compile_update(self, node: ast.UpdateExpression) -> int:
        binary_op = Op.ADD if node.operator == "++" else Op.SUB
        one = self.new_temp()
        self.emit(Op.LOAD_CONST, dst=one, a=self.constants.number(1, True), line=node.line)
        if isinstance(node.target, ast.Identifier):
            old = self._compile_identifier(node.target)
            if not node.prefix:
                saved = self.new_temp()
                self.emit(Op.MOVE, dst=saved, a=old, line=node.line)
            new = self.new_temp()
            self.emit(
                binary_op, dst=new, a=old, b=one, d=self.new_feedback_slot(), line=node.line
            )
            self._store_identifier(node.target, new)
            return new if node.prefix else saved
        if isinstance(node.target, ast.MemberExpression):
            obj, key = self._compile_member_parts(node.target)
            old = self._emit_member_get(node.target, obj, key)
            if not node.prefix:
                saved = self.new_temp()
                self.emit(Op.MOVE, dst=saved, a=old, line=node.line)
            new = self.new_temp()
            self.emit(
                binary_op, dst=new, a=old, b=one, d=self.new_feedback_slot(), line=node.line
            )
            self._emit_member_set(node.target, obj, key, new)
            return new if node.prefix else saved
        raise UnsupportedFeatureError("invalid update target", node.line)

    def _store_identifier(self, node: ast.Identifier, value: int) -> None:
        reg = self.scope.lookup(node.name)
        if reg is not None:
            if reg != value:
                self.emit(Op.MOVE, dst=reg, a=value, line=node.line)
            return
        if self.scope.lookup_in_enclosing_functions(node.name):
            raise UnsupportedFeatureError(
                f"closure capture of local {node.name!r} is outside the subset",
                node.line,
            )
        self.emit(Op.STORE_GLOBAL, a=self.name_index(node.name), b=value, line=node.line)

    def _compile_member_parts(self, node: ast.MemberExpression) -> Tuple[int, int]:
        obj = self.compile_expression(node.object)
        if node.computed:
            key = self.compile_expression(node.property)
        else:
            assert isinstance(node.property, ast.Identifier)
            key = self.name_index(node.property.name)
        return obj, key

    def _emit_member_get(self, node: ast.MemberExpression, obj: int, key: int) -> int:
        dst = self.new_temp()
        if node.computed:
            self.emit(
                Op.GET_ELEMENT,
                dst=dst,
                a=obj,
                b=key,
                d=self.new_feedback_slot(),
                line=node.line,
            )
        else:
            self.emit(
                Op.GET_PROPERTY,
                dst=dst,
                a=obj,
                b=key,
                d=self.new_feedback_slot(),
                line=node.line,
            )
        return dst

    def _emit_member_set(
        self, node: ast.MemberExpression, obj: int, key: int, value: int
    ) -> None:
        if node.computed:
            self.emit(
                Op.SET_ELEMENT,
                a=obj,
                b=key,
                c=value,
                d=self.new_feedback_slot(),
                line=node.line,
            )
        else:
            self.emit(
                Op.SET_PROPERTY,
                a=obj,
                b=key,
                c=value,
                d=self.new_feedback_slot(),
                line=node.line,
            )

    def _compile_member_load(self, node: ast.MemberExpression) -> int:
        obj, key = self._compile_member_parts(node)
        return self._emit_member_get(node, obj, key)

    def _compile_assignment(self, node: ast.AssignmentExpression) -> int:
        if node.operator != "=":
            binary = _COMPOUND_TO_BINARY[node.operator]
            expanded = ast.AssignmentExpression(
                line=node.line,
                operator="=",
                target=node.target,
                value=ast.BinaryExpression(
                    line=node.line, operator=binary, left=node.target, right=node.value
                ),
            )
            return self._compile_assignment(expanded)
        if isinstance(node.target, ast.Identifier):
            value = self.compile_expression(node.value)
            self._store_identifier(node.target, value)
            return value
        if isinstance(node.target, ast.MemberExpression):
            obj, key = self._compile_member_parts(node.target)
            value = self.compile_expression(node.value)
            self._emit_member_set(node.target, obj, key, value)
            return value
        raise UnsupportedFeatureError("invalid assignment target", node.line)

    def _compile_call(self, node: ast.CallExpression) -> int:
        if (
            isinstance(node.callee, ast.MemberExpression)
            and not node.callee.computed
            and isinstance(node.callee.property, ast.Identifier)
        ):
            obj = self.compile_expression(node.callee.object)
            args = [self.compile_expression(argument) for argument in node.arguments]
            dst = self.new_temp()
            self.emit(
                Op.CALL_METHOD,
                dst=dst,
                b=obj,
                c=args,
                d=self.new_feedback_slot(),
                e=self.name_index(node.callee.property.name),
                line=node.line,
            )
            return dst
        callee = self.compile_expression(node.callee)
        args = [self.compile_expression(argument) for argument in node.arguments]
        dst = self.new_temp()
        self.emit(
            Op.CALL, dst=dst, b=callee, c=args, d=self.new_feedback_slot(), line=node.line
        )
        return dst

    def _compile_new(self, node: ast.NewExpression) -> int:
        callee = self.compile_expression(node.callee)
        args = [self.compile_expression(argument) for argument in node.arguments]
        dst = self.new_temp()
        self.emit(
            Op.NEW, dst=dst, b=callee, c=args, d=self.new_feedback_slot(), line=node.line
        )
        return dst


class _ProgramCompiler:
    """Compiles a program: top level plus all (transitively) nested functions."""

    def __init__(self) -> None:
        self.functions: List[FunctionInfo] = []

    def compile_program(self, program: ast.Program) -> CompiledProgram:
        main_compiler = _FunctionCompiler(
            self, "<main>", [], is_toplevel=True, parent_scope=None
        )
        self.functions.insert(0, None)  # type: ignore[arg-type] # reserve index 0
        main = main_compiler.compile_body(program.body)
        self.functions[0] = main
        for index, function in enumerate(self.functions):
            function.index = index
        return CompiledProgram(main, self.functions)

    def compile_function(
        self,
        name: str,
        params: Sequence[str],
        body: Sequence[ast.Node],
        parent_scope: Optional[_Scope],
    ) -> int:
        compiler = _FunctionCompiler(
            self, name, params, is_toplevel=False, parent_scope=parent_scope
        )
        index = len(self.functions)
        self.functions.append(None)  # type: ignore[arg-type] # reserve position
        info = compiler.compile_body(body)
        self.functions[index] = info
        return index


def compile_source(source: str) -> CompiledProgram:
    """Parse and compile ``source``; entry point for the engine."""
    from ..lang.parser import parse

    return _ProgramCompiler().compile_program(parse(source))
