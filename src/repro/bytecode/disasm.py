"""Human-readable bytecode listings (for debugging and documentation)."""

from __future__ import annotations

from typing import List

from .opcodes import FunctionInfo, Instr, Op


def format_instr(info: FunctionInfo, index: int, instr: Instr) -> str:
    op = instr.op
    parts: List[str] = [f"{index:4d}  {op.name:<16}"]

    def const(i: int) -> str:
        kind, value = info.constants[i]
        return f"{value!r}" if kind != "special" else str(value)

    def name(i: int) -> str:
        return info.names[i]

    if op == Op.LOAD_CONST:
        parts.append(f"r{instr.dst} <- {const(instr.a)}")
    elif op == Op.LOAD_GLOBAL:
        parts.append(f"r{instr.dst} <- global[{name(instr.a)}]  fb{instr.d}")
    elif op == Op.STORE_GLOBAL:
        parts.append(f"global[{name(instr.a)}] <- r{instr.b}")
    elif op == Op.MOVE:
        parts.append(f"r{instr.dst} <- r{instr.a}")
    elif op == Op.LOAD_THIS:
        parts.append(f"r{instr.dst} <- this")
    elif op in (Op.JUMP,):
        parts.append(f"-> {instr.a}")
    elif op in (Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE):
        parts.append(f"r{instr.b} -> {instr.a}")
    elif op == Op.GET_PROPERTY:
        parts.append(f"r{instr.dst} <- r{instr.a}.{name(instr.b)}  fb{instr.d}")
    elif op == Op.SET_PROPERTY:
        parts.append(f"r{instr.a}.{name(instr.b)} <- r{instr.c}  fb{instr.d}")
    elif op == Op.GET_ELEMENT:
        parts.append(f"r{instr.dst} <- r{instr.a}[r{instr.b}]  fb{instr.d}")
    elif op == Op.SET_ELEMENT:
        parts.append(f"r{instr.a}[r{instr.b}] <- r{instr.c}  fb{instr.d}")
    elif op == Op.CALL:
        args = ", ".join(f"r{r}" for r in (instr.c or []))
        parts.append(f"r{instr.dst} <- r{instr.b}({args})  fb{instr.d}")
    elif op == Op.CALL_METHOD:
        args = ", ".join(f"r{r}" for r in (instr.c or []))
        parts.append(f"r{instr.dst} <- r{instr.b}.{name(instr.e)}({args})  fb{instr.d}")
    elif op == Op.NEW:
        args = ", ".join(f"r{r}" for r in (instr.c or []))
        parts.append(f"r{instr.dst} <- new r{instr.b}({args})  fb{instr.d}")
    elif op == Op.CREATE_ARRAY:
        elems = ", ".join(f"r{r}" for r in (instr.c or []))
        parts.append(f"r{instr.dst} <- [{elems}]")
    elif op == Op.CREATE_OBJECT:
        pairs = ", ".join(
            f"{name(k)}: r{v}" for k, v in zip(instr.c or [], instr.e or [])
        )
        parts.append(f"r{instr.dst} <- {{{pairs}}}")
    elif op == Op.CREATE_CLOSURE:
        parts.append(f"r{instr.dst} <- closure #{instr.a}")
    elif op == Op.RETURN:
        parts.append(f"return r{instr.a}")
    else:
        operands = []
        if instr.dst >= 0:
            operands.append(f"r{instr.dst} <-")
        operands.append(f"r{instr.a}, r{instr.b}")
        if instr.d >= 0:
            operands.append(f"fb{instr.d}")
        parts.append(" ".join(operands))
    return " ".join(parts)


def disassemble(info: FunctionInfo) -> str:
    """Full listing of one function's bytecode."""
    header = f"function {info.name}({', '.join(info.params)})" \
             f"  registers={info.register_count} feedback={info.feedback_slot_count}"
    lines = [header]
    for index, instr in enumerate(info.bytecode):
        lines.append(format_instr(info, index, instr))
    return "\n".join(lines)
