"""Register-machine bytecode, the engine's first code representation.

Mirrors V8's Ignition tier in role (not in encoding): the parser lowers the
AST to compact bytecode; the interpreter executes it while recording type
feedback; the optimizing compiler later consumes bytecode + feedback.

Instructions are index-addressed (jump targets are instruction indices).
Operand meaning per opcode is documented in the :class:`Op` docstrings and
in :mod:`repro.bytecode.disasm`.
"""

from __future__ import annotations

from enum import IntEnum, auto
from typing import List, Optional, Sequence, Union


class Op(IntEnum):
    # dst <- constant_pool[a]
    LOAD_CONST = auto()
    # dst <- globals[name_pool[a]]          (feedback slot d)
    LOAD_GLOBAL = auto()
    # globals[name_pool[a]] <- src
    STORE_GLOBAL = auto()
    # dst <- src
    MOVE = auto()
    # dst <- `this`
    LOAD_THIS = auto()

    # Binary numeric / string ops: dst <- op(lhs, rhs), feedback slot d.
    ADD = auto()
    SUB = auto()
    MUL = auto()
    DIV = auto()
    MOD = auto()
    BIT_OR = auto()
    BIT_AND = auto()
    BIT_XOR = auto()
    SHL = auto()
    SAR = auto()  # signed >>
    SHR = auto()  # unsigned >>>

    # Unary ops: dst <- op(src), feedback slot d.
    NEG = auto()
    NOT = auto()  # logical !
    BIT_NOT = auto()
    TYPEOF = auto()
    TO_NUMBER = auto()  # unary +

    # Comparisons: dst <- test(lhs, rhs) as boolean, feedback slot d.
    TEST_LT = auto()
    TEST_LE = auto()
    TEST_GT = auto()
    TEST_GE = auto()
    TEST_EQ = auto()
    TEST_NE = auto()
    TEST_EQ_STRICT = auto()
    TEST_NE_STRICT = auto()

    # Control flow: jump to instruction index a (cond in b where applicable).
    JUMP = auto()
    JUMP_IF_FALSE = auto()
    JUMP_IF_TRUE = auto()

    # Property / element access (feedback slot d; name in name_pool[b]).
    GET_PROPERTY = auto()  # dst <- obj.name
    SET_PROPERTY = auto()  # obj.name <- src (src in c)
    GET_ELEMENT = auto()  # dst <- obj[key]
    SET_ELEMENT = auto()  # obj[key] <- src

    # Calls: args are a register list in c, feedback slot d.
    CALL = auto()  # dst <- callee(args)  callee reg in b
    CALL_METHOD = auto()  # dst <- obj.name(args); obj reg in b, name idx in e
    NEW = auto()  # dst <- new callee(args)

    # Literals.
    CREATE_ARRAY = auto()  # dst <- [regs in c]
    CREATE_OBJECT = auto()  # dst <- {name_pool[k]: reg for k, reg in zip(c, e)}
    CREATE_CLOSURE = auto()  # dst <- function_table[a]

    RETURN = auto()  # return src (in a)


#: Opcodes that carry a type-feedback slot in operand ``d``.
FEEDBACK_OPS = frozenset(
    {
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.DIV,
        Op.MOD,
        Op.BIT_OR,
        Op.BIT_AND,
        Op.BIT_XOR,
        Op.SHL,
        Op.SAR,
        Op.SHR,
        Op.NEG,
        Op.TO_NUMBER,
        Op.TEST_LT,
        Op.TEST_LE,
        Op.TEST_GT,
        Op.TEST_GE,
        Op.TEST_EQ,
        Op.TEST_NE,
        Op.GET_PROPERTY,
        Op.SET_PROPERTY,
        Op.GET_ELEMENT,
        Op.SET_ELEMENT,
        Op.CALL,
        Op.CALL_METHOD,
        Op.NEW,
    }
)

BINARY_OPS = frozenset(
    {
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.DIV,
        Op.MOD,
        Op.BIT_OR,
        Op.BIT_AND,
        Op.BIT_XOR,
        Op.SHL,
        Op.SAR,
        Op.SHR,
    }
)

COMPARE_OPS = frozenset(
    {
        Op.TEST_LT,
        Op.TEST_LE,
        Op.TEST_GT,
        Op.TEST_GE,
        Op.TEST_EQ,
        Op.TEST_NE,
        Op.TEST_EQ_STRICT,
        Op.TEST_NE_STRICT,
    }
)


class Instr:
    """One bytecode instruction.

    ``dst`` is the destination register (or -1), ``a``..``c`` are operands
    whose meaning depends on the opcode (``c`` may be a register list for
    calls/literals), ``d`` is the feedback slot (or -1), ``e`` an auxiliary
    operand, and ``line`` the source line.
    """

    __slots__ = ("op", "dst", "a", "b", "c", "d", "e", "line")

    def __init__(
        self,
        op: Op,
        dst: int = -1,
        a: int = 0,
        b: int = 0,
        c: Union[int, Sequence[int], None] = None,
        d: int = -1,
        e: Union[int, Sequence[int], None] = None,
        line: int = 0,
    ) -> None:
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.e = e
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Instr({self.op.name}, dst={self.dst}, a={self.a}, b={self.b},"
            f" c={self.c}, d={self.d}, e={self.e})"
        )


class ConstantPool:
    """Deduplicated per-function constants (numbers, strings, sentinels)."""

    UNDEFINED = ("special", "undefined")
    NULL = ("special", "null")
    TRUE = ("special", "true")
    FALSE = ("special", "false")

    def __init__(self) -> None:
        self.entries: List[tuple] = []
        self._index: dict = {}

    def add(self, kind: str, value: object) -> int:
        key = (kind, value)
        existing = self._index.get(key)
        if existing is not None:
            return existing
        index = len(self.entries)
        self.entries.append(key)
        self._index[key] = index
        return index

    def number(self, value: float, is_integer: bool) -> int:
        if is_integer:
            return self.add("int", int(value))
        return self.add("float", float(value))

    def string(self, value: str) -> int:
        return self.add("string", value)

    def special(self, name: str) -> int:
        return self.add("special", name)

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> tuple:
        return self.entries[index]


class FunctionInfo:
    """SharedFunctionInfo: everything the engine knows about one function."""

    def __init__(
        self,
        name: str,
        params: Sequence[str],
        register_count: int,
        bytecode: List[Instr],
        constants: ConstantPool,
        names: List[str],
        feedback_slot_count: int,
        uses_this: bool = False,
    ) -> None:
        self.name = name
        self.params = list(params)
        self.register_count = register_count
        self.bytecode = bytecode
        self.constants = constants
        self.names = names  # property / global name pool
        self.feedback_slot_count = feedback_slot_count
        self.uses_this = uses_this
        #: Index in the engine's function table (set on registration).
        self.index: int = -1
        #: Back-edge instruction indices (loop headers), used by tier-up.
        self.loop_headers: List[int] = [
            i
            for i, instr in enumerate(bytecode)
            if instr.op in (Op.JUMP, Op.JUMP_IF_TRUE, Op.JUMP_IF_FALSE) and instr.a <= i
        ]

    @property
    def param_count(self) -> int:
        return len(self.params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FunctionInfo {self.name}({', '.join(self.params)})"
            f" regs={self.register_count} bc={len(self.bytecode)}>"
        )


NativeImpl = Optional[object]
