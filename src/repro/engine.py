"""The engine: tiered execution, runtime services, and accounting.

Mirrors V8's architecture (paper Fig. 2): source is parsed and compiled to
bytecode, executed by the interpreter (Ignition role) which collects type
feedback; hot functions are optimized by the speculative compiler (TurboFan
role) into machine code for the configured target ISA; failed checks
deoptimize back to the interpreter; invalidated assumptions trigger lazy
deopts at the next invocation.

"Execution time" everywhere is *simulated cycles* from the machine's cost
model: interpreter handlers, builtins, compilation, GC pauses and JIT code
all advance the same clock, so warm-up curves and steady states (Fig. 6)
emerge from the tiering dynamics rather than being modelled directly.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .bytecode.compiler import compile_source
from .bytecode.opcodes import FunctionInfo, Op
from .interpreter import builtins as builtin_impls
from .interpreter.feedback import CallSlot, FeedbackVector
from .interpreter.interpreter import Interpreter
from .interpreter import runtime
from .ir.builder import BailoutCompilation, build_graph
from .ir.passes.pipeline import run_optimization_pipeline
from .jit.checks import CheckKind, DeoptCategory, category_of
from .jit.codegen import CodeObject, generate_code
from .jit.deopt import (
    DeoptEvent,
    DeoptSignal,
    DeoptStateError,
    LazyDeoptEvent,
    materialize_frame,
)
from .lang.errors import JSTypeError
from .machine.blockjit import default_blockjit, default_typed_blocks
from .machine.continuations import (
    RUNG_CLASSIC,
    RUNG_INTERP,
    RUNG_NAMES,
    ContinuationTable,
    continuation_token,
    default_continuations,
    dispatch_fact,
    resolve_redispatch_budget,
)
from .machine.executor import CostModel, Executor
from .regex.engine import Regex
from .isa.base import TargetISA, resolve_target
from .values.heap import (
    FIXED_ARRAY_ELEMENTS_OFFSET,
    JS_FUNCTION_SHARED_OFFSET,
    Heap,
)
from .values.maps import ElementsKind, InstanceType
from .values.tagged import TagConfig, is_smi, pointer_untag

_GLOBAL_CELL_CAPACITY = 4096


@dataclass
class EngineConfig:
    """Knobs for one engine instance (one experimental configuration)."""

    target: str = "arm64"
    smi_bits: int = 31
    enable_optimizer: bool = True
    tierup_invocations: int = 8
    tierup_backedges: int = 1500
    #: check kinds short-circuited in the optimizer (paper Section III-B).
    removed_checks: FrozenSet[CheckKind] = frozenset()
    #: emit check conditions but not the deopt branches (Section IV-B).
    emit_check_branches: bool = True
    gc_between_iterations: bool = True
    max_reoptimizations: int = 3
    #: deopt-storm guard (mirrors V8's deopt-loop detection): a function
    #: whose checks of the *same kind* fail this many times has its
    #: speculation permanently disabled, regardless of the total
    #: re-optimization budget above.
    storm_strikes: int = 3
    #: cap on the exponential re-tier backoff (threshold scale is
    #: ``2 ** min(reopt_count, backoff_cap)``).
    backoff_cap: int = 4
    cost_model: Optional[CostModel] = None
    collect_trace: bool = False
    random_seed: int = 0x9E3779B97F4A7C15
    #: Run the IR verifier after every pass and lint the emitted machine
    #: code (repro.analysis).  None defers to the process-wide default
    #: (on in the test suite, or via REPRO_VERIFY=1).
    verify: Optional[bool] = None
    #: Block-compiled execution (repro.machine.blockjit): fuse basic
    #: blocks into superinstruction closures with batched cycle charging.
    #: Semantics, cycle totals, sample attributions and deopt pcs are
    #: bit-identical to the step loop.  None defers to the process-wide
    #: default (on, unless REPRO_BLOCKJIT=0).
    blockjit: Optional[bool] = None
    #: Typed block variants (repro.analysis.typeflow): compile fused
    #: blocks whose checks are statically proven redundant or hoistable
    #: without the check test, behind one hoisted entry guard per
    #: assumed fact (generic block fallback on guard failure).  Results
    #: and simulated counters stay bit-identical; only executed python
    #: work shrinks.  None defers to REPRO_TYPED_BLOCKS (default on).
    typed_blocks: Optional[bool] = None
    #: Trace tier (repro.machine.tracejit): compile hot block chains —
    #: across loop back-edges and across calls — into single closures
    #: with per-segment side-exit checks, entered from the block driver
    #: at their anchor blocks.  Bit-identical to the block tier and the
    #: step loop by construction; requires ``blockjit``.  None defers to
    #: REPRO_TRACEJIT (default on).
    tracejit: Optional[bool] = None
    #: Lazy basic block versioning (repro.machine.lbbv): maintain up to
    #: MAX_VERSIONS runtime type-state-specialized versions per fused
    #: block, keyed on the typeflow fact vocabulary, compiled lazily on
    #: first execution of each state and chained version-to-version with
    #: zero entry guards on proven edges.  Bit-identical to every other
    #: tier by construction; requires ``blockjit`` and ``typed_blocks``.
    #: None defers to REPRO_LBBV (default on).
    lbbv: Optional[bool] = None
    #: Deoptless continuation dispatch (repro.machine.continuations):
    #: a failing check re-dispatches into a variant specialized for the
    #: observed type-state (the guard's fact negated, seeded from the
    #: typeflow lattice) instead of bailing out, and storms descend a
    #: per-rung degradation ladder instead of tripping one permanent
    #: disable bit.  None defers to REPRO_CONTINUATIONS (default on).
    continuations: Optional[bool] = None
    #: cycle budget of the re-dispatch breaker: a consecutive-dispatch
    #: streak exceeding this falls back to the classic bailout path
    #: (livelock-freedom).  None defers to REPRO_CONT_BUDGET (2000).
    redispatch_budget: Optional[float] = None
    #: Online divergence sentinel (repro.supervise.sentinel): on a
    #: deterministic schedule, shadow-execute fused blocks against their
    #: stepped twins and demote a diverging code object to the step tier.
    #: None defers to REPRO_AUDIT; True audits at the default interval;
    #: an integer sets the mean interval in fused-block executions.
    audit: object = None


class SharedFunction:
    """Engine-side function record (V8's SharedFunctionInfo)."""

    __slots__ = (
        "info",
        "feedback",
        "constant_words",
        "index",
        "invocation_count",
        "backedge_count",
        "code",
        "deopt_count",
        "reopt_count",
        "deopts_by_kind",
        "optimization_disabled",
        "tier_rung",
        "rung_strikes",
        "native_impl",
        "name",
        "closure_word",
        "is_constructor_native",
    )

    def __init__(
        self,
        info: Optional[FunctionInfo],
        index: int,
        native_impl: Optional[Callable] = None,
        name: str = "",
    ) -> None:
        self.info = info
        self.feedback = (
            FeedbackVector(info.feedback_slot_count) if info is not None else None
        )
        self.constant_words: List[Optional[int]] = (
            [None] * len(info.constants) if info is not None else []
        )
        self.index = index
        self.invocation_count = 0
        self.backedge_count = 0
        self.code: Optional[CodeObject] = None
        self.deopt_count = 0
        self.reopt_count = 0
        #: eager deopts per check kind (the deopt-storm guard's strike
        #: counters; soft deopts are not strikes)
        self.deopts_by_kind: Dict[CheckKind, int] = {}
        self.optimization_disabled = False
        #: degradation-ladder rung (repro.machine.continuations.RUNG_*);
        #: each storm or budget exhaustion descends ONE rung, and only
        #: the final rung sets ``optimization_disabled``.
        self.tier_rung = 0
        #: per-rung strike counters keyed (check kind name, type-state
        #: token); cleared on every descent so each rung re-earns its
        #: strikes — a storm on one type-state cannot carry strikes
        #: against states that never tripped.
        self.rung_strikes: Dict[Tuple[str, str], int] = {}
        self.native_impl = native_impl
        self.name = name or (info.name if info is not None else "<native>")
        self.closure_word: Optional[int] = None
        self.is_constructor_native = False

    @property
    def is_native(self) -> bool:
        return self.native_impl is not None


class _GlobalCells:
    """Array-like view over the heap-allocated global cell array."""

    def __init__(self, heap: Heap, array_word: int) -> None:
        self._heap = heap
        self._base = pointer_untag(array_word) + FIXED_ARRAY_ELEMENTS_OFFSET

    def __getitem__(self, index: int) -> int:
        value = self._heap.words[self._base + index]
        assert isinstance(value, int)
        return value

    def __setitem__(self, index: int, word: int) -> None:
        self._heap.words[self._base + index] = word


class Engine:
    """One JavaScript engine instance."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        if sys.getrecursionlimit() < 100000:
            sys.setrecursionlimit(100000)
        self.heap = Heap(TagConfig(self.config.smi_bits))
        self.target: TargetISA = resolve_target(self.config.target)
        self.executor = Executor(self, self.config.cost_model)
        self.executor.blockjit = (
            default_blockjit()
            if self.config.blockjit is None
            else bool(self.config.blockjit)
        )
        self.executor.typed_blocks = (
            default_typed_blocks()
            if self.config.typed_blocks is None
            else bool(self.config.typed_blocks)
        )
        # Imported lazily like the sentinel below: tracejit sits on top
        # of blockjit, which the machine package loads on demand.
        from .machine.tracejit import default_tracejit

        self.executor.tracejit = self.executor.blockjit and (
            default_tracejit()
            if self.config.tracejit is None
            else bool(self.config.tracejit)
        )
        # The version tier rides on both the block tier (driver slots)
        # and the typed tier (fact vocabulary / guard codegen).
        from .machine.lbbv import default_lbbv

        self.executor.lbbv = (
            self.executor.blockjit
            and self.executor.typed_blocks
            and (
                default_lbbv()
                if self.config.lbbv is None
                else bool(self.config.lbbv)
            )
        )
        # Imported lazily: repro.supervise pulls in repro.exec, which
        # imports this module back (cells -> engine).
        from .supervise.sentinel import (
            DivergenceSentinel,
            resolve_audit_interval,
        )

        audit_interval = resolve_audit_interval(self.config.audit)
        if audit_interval is not None and self.executor.blockjit:
            self.executor._audit = DivergenceSentinel(audit_interval)
        continuations_on = (
            default_continuations()
            if self.config.continuations is None
            else bool(self.config.continuations)
        )
        self.continuations: Optional[ContinuationTable] = (
            ContinuationTable(
                resolve_redispatch_budget()
                if self.config.redispatch_budget is None
                else float(self.config.redispatch_budget)
            )
            if continuations_on and self.config.enable_optimizer
            else None
        )
        self.interpreter = Interpreter(self)
        self.functions: List[SharedFunction] = []
        self.random = builtin_impls.DeterministicRandom(self.config.random_seed)
        self.print_output: List[str] = []

        self._global_index: Dict[str, int] = {}
        self._global_array_word = self.heap.alloc_fixed_array(_GLOBAL_CELL_CAPACITY)
        self.global_cells = _GlobalCells(self.heap, self._global_array_word)
        # Interrupt/stack-limit cell polled by compiled code (value stays 0).
        self._interrupt_cell_word = self.heap.alloc_fixed_array(1, fill_word=0)
        # Bump-allocation nursery for the JIT's inline allocation fast path:
        # cell[0] = tagged top pointer, cell[1] = tagged limit pointer.
        self._nursery_cell_word = self.heap.alloc_fixed_array(2, fill_word=0)
        self._refill_nursery()

        self.regex_table: List[Regex] = []
        self._regex_marker = "__rx"

        self.buckets: Dict[str, float] = {
            "interpreter": 0.0,
            "builtin": 0.0,
            "compile": 0.0,
            "gc": 0.0,
            "deopt": 0.0,
        }
        self.deopt_events: List[DeoptEvent] = []
        #: dynamic check-trip profile: (code.serial, check_id) -> eager
        #: deopt count.  The typeflow cross-validator joins this against
        #: the static classifications — a trip of a redundant-classified
        #: check is an analysis soundness bug.
        self.check_trips: Dict[Tuple[int, int], int] = {}
        self.lazy_deopts = 0
        self.lazy_deopt_events: List[LazyDeoptEvent] = []
        #: engine-wide deopt tally per check kind (eager and soft)
        self.deopts_by_kind: Dict[CheckKind, int] = {}
        self.storms_detected = 0
        #: (function name, check kind name) pairs permanently disabled by
        #: a storm-caused descent into the ladder's interpreter rung
        self.storm_disabled: List[tuple] = []
        #: re-optimization-budget exhaustions (one per budget-caused
        #: ladder descent) — surfaced separately from storms so the
        #: chaos sweep can gate on each
        self.budget_exhaustions = 0
        #: (function name, check kind name) pairs permanently disabled by
        #: a budget-caused descent into the interpreter rung
        self.budget_disabled: List[tuple] = []
        #: (function, kind, cause, rung name) per degradation-ladder step
        self.ladder_descents: List[tuple] = []
        self.compilations = 0
        self.current_iteration = -1
        self._code_objects: List[CodeObject] = []
        if self.config.collect_trace:
            self.executor.trace = []

        self._runtime_table = _build_runtime_table()
        self._install_globals()
        #: names installed by the engine itself (Math, RegExp, ...); the
        #: fault injector perturbs only globals defined after this point.
        self._builtin_global_names: FrozenSet[str] = frozenset(self._global_index)

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------

    @property
    def total_cycles(self) -> float:
        return self.executor.cycles

    def charge(self, cycles: float, bucket: str) -> None:
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + cycles
        self.executor.charge_external(cycles)

    def jit_cycles(self) -> float:
        return self.total_cycles - sum(self.buckets.values())

    # ------------------------------------------------------------------
    # Loading and top-level execution
    # ------------------------------------------------------------------

    def load(self, source: str) -> None:
        """Compile and execute top-level code."""
        program = compile_source(source)
        base = len(self.functions)
        for info in program.functions:
            for instr in info.bytecode:
                if instr.op == Op.CREATE_CLOSURE:
                    instr.a += base
            shared = SharedFunction(info, base + info.index)
            self.functions.append(shared)
        main = self.functions[base]
        self.interpreter.run(main, self.heap.undefined, [])

    def call_global(self, name: str, *py_args) -> object:
        """Call a global function with Python values; returns a Python value."""
        cell = self._global_index.get(name)
        if cell is None:
            raise JSTypeError(f"global {name!r} is not defined")
        fn_word = self.global_cells[cell]
        args = [self.heap.to_word(a) for a in py_args]
        result = self.call_value(fn_word, self.heap.undefined, args, None)
        return self.heap.to_python(result)

    def get_global(self, name: str) -> object:
        cell = self._global_index.get(name)
        if cell is None:
            return None
        return self.heap.to_python(self.global_cells[cell])

    # ------------------------------------------------------------------
    # Globals
    # ------------------------------------------------------------------

    def global_cell_index(self, name: str) -> int:
        cell = self._global_index.get(name)
        if cell is None:
            cell = len(self._global_index)
            if cell >= _GLOBAL_CELL_CAPACITY:
                raise JSTypeError("global table overflow")
            self._global_index[name] = cell
            self.global_cells[cell] = self.heap.undefined
        return cell

    def set_global_word(self, name: str, word: int) -> None:
        self.global_cells[self.global_cell_index(name)] = word

    def get_global_word(self, name: str) -> Optional[int]:
        cell = self._global_index.get(name)
        return None if cell is None else self.global_cells[cell]

    def user_global_names(self) -> List[str]:
        """Globals defined by the loaded program, in definition order."""
        return [
            name
            for name in self._global_index
            if name not in self._builtin_global_names
        ]

    def global_array_word(self) -> int:
        return self._global_array_word

    def interrupt_cell_word(self) -> int:
        return self._interrupt_cell_word

    NURSERY_WORDS = 1 << 14

    def nursery_cell_word(self) -> int:
        return self._nursery_cell_word

    def _refill_nursery(self) -> None:
        from .values.tagged import pointer_tag as _ptag

        start = self.heap.reserve_region(self.NURSERY_WORDS)
        base = pointer_untag(self._nursery_cell_word) + FIXED_ARRAY_ELEMENTS_OFFSET
        self.heap.words[base] = _ptag(start)
        self.heap.words[base + 1] = _ptag(start + self.NURSERY_WORDS - 2)

    def nursery_alloc_number_slow(self, value: float) -> int:
        """Slow path of the JIT's inline HeapNumber allocation: refill the
        nursery, then allocate from the fresh region."""
        from .values.tagged import pointer_tag as _ptag, pointer_untag as _puntag

        self._refill_nursery()
        base = pointer_untag(self._nursery_cell_word) + FIXED_ARRAY_ELEMENTS_OFFSET
        top_word = self.heap.words[base]
        assert isinstance(top_word, int)
        addr = _puntag(top_word)
        self.heap.words[base] = _ptag(addr + 2)
        self.heap.set_map(addr, self.heap.number_map)
        self.heap.words[addr + 1] = float(value)
        return _ptag(addr)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def shared_index_of_function(self, word: int) -> int:
        if is_smi(word):
            return -1
        addr = pointer_untag(word)
        if self.heap.map_of(addr).instance_type != InstanceType.JS_FUNCTION:
            return -1
        index = self.heap.read(addr, JS_FUNCTION_SHARED_OFFSET)
        assert isinstance(index, int)
        return index

    def closure_for(self, shared_index: int) -> int:
        shared = self.functions[shared_index]
        if shared.closure_word is None:
            shared.closure_word = self.heap.alloc_function(shared_index)
        return shared.closure_word

    #: alias used by the graph builder's CompilationContext protocol
    def closure_word_for(self, shared_index: int) -> int:
        return self.closure_for(shared_index)

    def call_value(
        self,
        callee_word: int,
        this_word: int,
        args: Sequence[int],
        call_slot: Optional[CallSlot],
    ) -> int:
        index = self.shared_index_of_function(callee_word)
        if index < 0:
            raise JSTypeError("value is not callable")
        if call_slot is not None:
            call_slot.record_target(index)
        return self.call_shared(index, this_word, args)

    def call_shared(self, index: int, this_word: int, args: Sequence[int]) -> int:
        shared = self.functions[index]
        if shared.native_impl is not None:
            result, cost = shared.native_impl(self, this_word, list(args))
            self.charge(cost, "builtin")
            return result
        shared.invocation_count += 1
        code = shared.code
        if code is not None and code.invalidated:
            # Lazy deopt: assumptions died while the code was not running;
            # it is discarded at the beginning of the next invocation.
            shared.code = None
            code = None
            self.lazy_deopts += 1
            self.lazy_deopt_events.append(
                LazyDeoptEvent(
                    shared.name, self.current_iteration, int(self.total_cycles)
                )
            )
        if code is None:
            self.maybe_tier_up(shared)
            code = shared.code
        if code is not None:
            padded = list(args[: len(shared.info.params)])
            while len(padded) < len(shared.info.params):
                padded.append(self.heap.undefined)
            try:
                result = self.executor.run(code, padded, this_word)
            except DeoptSignal as signal:
                return self._deoptimize(shared, code, signal)
            # A clean machine exit ends any consecutive-dispatch streak:
            # the re-dispatch breaker only counts cycles between clean
            # exits, so productive code never accumulates toward it.
            cont = self.continuations
            if cont is not None and cont.streaks:
                cont.streaks.pop(index, None)
            return result
        return self.interpreter.run(shared, this_word, args)

    def construct(
        self, callee_word: int, args: Sequence[int], call_slot: Optional[CallSlot]
    ) -> int:
        index = self.shared_index_of_function(callee_word)
        if index < 0:
            raise JSTypeError("value is not a constructor")
        shared = self.functions[index]
        if call_slot is not None:
            call_slot.record_target(index)
        if shared.native_impl is not None:
            result, cost = shared.native_impl(self, self.heap.undefined, list(args))
            self.charge(cost, "builtin")
            return result
        this_word = self.heap.alloc_object()
        self.charge(20, "builtin")  # allocation + map setup
        result = self.call_shared(index, this_word, args)
        if not is_smi(result):
            itype = self.heap.map_of(pointer_untag(result)).instance_type
            if itype in (InstanceType.JS_OBJECT, InstanceType.JS_ARRAY):
                return result
        return this_word

    # ------------------------------------------------------------------
    # Tiering / deopt
    # ------------------------------------------------------------------

    def maybe_tier_up(self, shared: SharedFunction) -> None:
        if (
            not self.config.enable_optimizer
            or shared.optimization_disabled
            or shared.code is not None
            or shared.native_impl is not None
        ):
            return
        # Exponential re-tier backoff: every prior deopt doubles the budget a
        # function must re-earn before the optimizer trusts it again, so a
        # function stuck in a deopt/re-opt cycle spends geometrically less of
        # its life being recompiled (V8's deopt-loop damping).
        threshold_scale = 1 << min(shared.reopt_count, self.config.backoff_cap)
        # Per-rung backoff: each degradation-ladder descent doubles the
        # budget again on top of the per-reopt scale, so a function that
        # has already burned through whole tiers re-earns trust slower
        # the further down the ladder it sits (rung 0 is unchanged).
        if shared.tier_rung:
            threshold_scale <<= min(shared.tier_rung, self.config.backoff_cap)
        if (
            shared.invocation_count < self.config.tierup_invocations * threshold_scale
            and shared.backedge_count < self.config.tierup_backedges * threshold_scale
        ):
            return
        self._optimize(shared)

    def _optimize(self, shared: SharedFunction) -> None:
        verify = self.config.verify
        if verify is None:
            from . import analysis

            verify = analysis.default_verify()
        try:
            builder = build_graph(shared, self)
            run_optimization_pipeline(
                builder, self.config.removed_checks, verify=verify
            )
            code = generate_code(
                builder, self.target, self.config.emit_check_branches
            )
        except BailoutCompilation:
            shared.optimization_disabled = True
            return
        if verify:
            from .analysis.mclint import assert_lint_clean

            assert_lint_clean(code)
        shared.code = code
        self.compilations += 1
        # Stamp the ladder rung the function sat on at compile time: the
        # executor gates trace promotion / typed variants / fused blocks
        # on it (a descent discards the code, so the stamp never goes
        # stale on a live object).
        code._tier_rung = shared.tier_rung
        code.serial = len(self._code_objects)
        self._code_objects.append(code)
        self.charge(code.compile_cycles, "compile")
        for a_map in code.map_dependencies:
            a_map.add_dependent(_invalidator(code))

    def _deoptimize(self, shared: SharedFunction, code: CodeObject, signal: DeoptSignal) -> int:
        # `code` is the object that was executing: with recursion, an outer
        # activation may deopt after an inner one already discarded
        # shared.code, so the signal's metadata must come from the running
        # code object itself.
        point = code.deopt_points[signal.check_id]
        state = getattr(self.executor, "deopt_state", None)
        if state is None:
            raise DeoptStateError(
                signal.check_id,
                point.kind.name,
                shared.name,
                context=f"bytecode pc {point.bytecode_pc}, iteration "
                f"{self.current_iteration}",
            )
        self.executor.deopt_state = None
        regs, fregs, frame = state
        interp_regs, this_word = materialize_frame(
            self.heap, point, shared.info.register_count, regs, fregs, frame
        )
        self.deopt_events.append(
            DeoptEvent(
                shared.name,
                point.kind,
                point.bytecode_pc,
                self.current_iteration,
                int(self.total_cycles),
                signal.check_id,
            )
        )
        trip_key = (getattr(code, "serial", -1), signal.check_id)
        self.check_trips[trip_key] = self.check_trips.get(trip_key, 0) + 1
        shared.deopt_count += 1
        self.deopts_by_kind[point.kind] = self.deopts_by_kind.get(point.kind, 0) + 1
        token = continuation_token(code, signal.check_id)

        # -- deoptless path: dispatch a specialized continuation ---------
        # Instead of abandoning optimized execution, re-dispatch into the
        # variant keyed by the type-state just observed (the failing
        # guard's fact, negated).  The code object stays installed, no
        # strike is recorded and the tier-up counters are not reset —
        # the function keeps its optimized life.  Reached with identical
        # state from all executor tiers, so the decision (and its cycle
        # charges) is tier-invariant by construction.
        cont = self.continuations
        if cont is not None and self._may_dispatch(shared, code, point,
                                                   signal.check_id, regs):
            cost = cont.dispatch_cost(shared.index, point.bytecode_pc, token)
            self.charge(cost, "deopt")
            before = self.total_cycles
            result = self.interpreter.run_from(
                shared, interp_regs, point.bytecode_pc, this_word
            )
            cont.note_dispatch(shared.index, cost + self.total_cycles - before)
            versions = code._versions
            if versions is not None:
                # The trip observed a concrete negated type-state; beyond
                # the continuation, seed a block *version* keyed by it so
                # the machine tier itself re-dispatches into specialized
                # code the next time that state shows up (repro.machine
                # .lbbv.VersionTable.observe_negated — par facts only,
                # the invertible subset of the guard vocabulary).
                versions.observe_negated(signal.check_id)
            if cont.loop_armed > 0:
                # REDISPATCH_LOOP fault: re-arm the flipped guard so the
                # next machine entry trips again — the breaker, not the
                # fault running dry, must terminate the loop.
                cont.loop_armed -= 1
                self.executor.forced_deopt_trips += 1
            return result

        # -- classic bailout: discard the code and strike the ladder -----
        # Re-optimization is allowed with an exponentially raised
        # threshold; a per-(kind, type-state) storm or an exhausted
        # re-optimization budget descends ONE degradation-ladder rung.
        if shared.code is code:
            shared.code = None
        if category_of(point.kind) != DeoptCategory.SOFT:
            strike_key = (point.kind.name, token)
            strikes = shared.rung_strikes.get(strike_key, 0) + 1
            shared.rung_strikes[strike_key] = strikes
            shared.deopts_by_kind[point.kind] = (
                shared.deopts_by_kind.get(point.kind, 0) + 1
            )
            shared.reopt_count += 1
            if strikes >= self.config.storm_strikes:
                # Deopt storm: the same speculation keeps failing in this
                # function.  Step down one rung instead of thrashing
                # through compile/deopt cycles (or giving up wholesale).
                self._descend_ladder(shared, code, point, token, "storm")
            elif shared.reopt_count > self.config.max_reoptimizations:
                self._descend_ladder(shared, code, point, token, "budget")
        shared.invocation_count = 0
        shared.backedge_count = 0
        if cont is not None:
            # The bailout ends any dispatch streak: the next optimized
            # entry starts with a fresh re-dispatch budget.
            cont.reset_streak(shared.index)
        self.charge(250, "deopt")  # stack-frame conversion cost
        return self.interpreter.run_from(
            shared, interp_regs, point.bytecode_pc, this_word
        )

    def _may_dispatch(self, shared: SharedFunction, code: CodeObject,
                      point, check_id: int, regs) -> bool:
        """Decide whether this deopt dispatches to a continuation."""
        cont = self.continuations
        assert cont is not None
        if (
            shared.tier_rung >= RUNG_CLASSIC
            or shared.optimization_disabled
            or shared.index in cont.demoted
        ):
            return False
        if not cont.allow(shared.index):
            # Cycle-budget breaker: the consecutive-dispatch streak spent
            # its budget without a clean machine exit — refuse further
            # dispatch so the classic path (which always terminates)
            # takes over.  This is the livelock-freedom guarantee.
            cont.breaker_trips += 1
            return False
        cont.seed(shared.index, code)
        audit = self.executor._audit
        if audit is not None and audit.audit_dispatch(
            self, shared, code, point, check_id,
            dispatch_fact(code, check_id), regs,
        ):
            # Spurious dispatch (the guard's fact still holds on the
            # observed state): the sentinel poisoned this function's
            # continuations and captured a bundle; fall back to the
            # always-safe classic path.
            return False
        return True

    def _descend_ladder(self, shared: SharedFunction, code: CodeObject,
                        point, token: str, cause: str) -> None:
        """One graceful step down the degradation ladder.

        Drops ALL tier artifacts of the tripping code object (fused
        blocks, traces chained over them, the block-version table riding
        in their driver, and the cached typeflow result the typed
        variants compile from), evicts only the continuations
        of the storming type-state, resets the rung's strike counters
        and the re-optimization budget, and — only on reaching the final
        rung — disables optimization permanently.
        """
        shared.tier_rung = min(shared.tier_rung + 1, RUNG_INTERP)
        shared.rung_strikes.clear()
        shared.reopt_count = 0
        code._blocks = None
        code._traces = None
        code._typeflow = None
        # The version table is built over the dropped block table (its
        # driver slots literally hold the version entries), so it falls
        # with it; rungs below RUNG_GENERIC never rebuild it.
        code._versions = None
        cont = self.continuations
        if cont is not None:
            cont.evict_token(shared.index, token)
        if cause == "storm":
            self.storms_detected += 1
        else:
            self.budget_exhaustions += 1
        self.ladder_descents.append(
            (shared.name, point.kind.name, cause, RUNG_NAMES[shared.tier_rung])
        )
        if shared.tier_rung >= RUNG_INTERP:
            shared.optimization_disabled = True
            record = (shared.name, point.kind.name)
            if cause == "storm":
                self.storm_disabled.append(record)
            else:
                self.budget_disabled.append(record)
            if cont is not None:
                cont.evict_function(shared.index)

    def typed_check_stats(self) -> Dict[str, int]:
        """Typed/version-tier elision counters (repro.analysis.typeflow
        and repro.machine.lbbv).

        Python-level work the specialized variants avoided — never part
        of the simulated cycle/counter model, which stays bit-identical.
        ``version_chained_entries`` counts guard-free version-to-version
        transfers: body executions that did not come through a
        dispatcher paid **zero** entry tests."""
        elided = self.executor.typed_counters
        tables = self._version_tables()
        return {
            "branch_checks_elided": elided[0],
            "condition_instrs_elided": elided[1],
            "smi_tag_tests_elided": elided[2],
            "entry_guards_evaluated": elided[3],
            "guard_failures": elided[4],
            "version_dispatch_entries": elided[5],
            "version_executions": elided[6],
            "version_chained_entries": elided[6] - elided[5],
            "versions_registered": sum(t.created for t in tables),
            "versions_compiled": sum(t.compiled for t in tables),
            "version_widenings": sum(t.widenings for t in tables),
            "version_negated_seeds": sum(t.negated_seeds for t in tables),
        }

    def _version_tables(self):
        return [
            code._versions
            for code in self._code_objects
            if code._versions is not None
            and code._versions.executor is self.executor
        ]

    def version_stats(self) -> Dict[str, object]:
        """LBBV-tier occupancy and usage detail (repro.machine.lbbv).

        Structured counterpart to the flat integers in
        :meth:`typed_check_stats`: per-block version-table occupancy,
        per-state hit counts and chained edges, and widening events.
        Diagnostic only — versions are bit-identical to the base tier."""
        tables = self._version_tables()
        return {
            "code_objects_versioned": sum(1 for t in tables if t.created),
            "versions_registered": sum(t.created for t in tables),
            "versions_compiled": sum(t.compiled for t in tables),
            "version_widenings": sum(t.widenings for t in tables),
            "widened_blocks": sum(len(t.widened) for t in tables),
            "negated_seeds": sum(t.negated_seeds for t in tables),
            "dispatched_blocks": sum(len(t.dispatched) for t in tables),
            "tables": [
                {
                    "code": getattr(
                        getattr(t.code, "shared", None), "name", None
                    ),
                    "occupancy": t.occupancy(),
                    "widened": dict(t.widened),
                    "states": t.state_report(),
                }
                for t in tables
                if t.created
            ],
        }

    def trace_stats(self) -> Dict[str, int]:
        """Trace-tier formation/execution counters (repro.machine.tracejit).

        Python-level observability only — trace execution is bit-identical
        to the block tier, so nothing here feeds the simulated model."""
        tables = [
            code._traces
            for code in self._code_objects
            if code._traces is not None
            and code._traces.executor is self.executor
        ]
        infos = [t for tt in tables for t in tt.traces.values()]
        return {
            "code_objects_counting": sum(1 for tt in tables if tt.counting),
            "code_objects_promoted": sum(1 for tt in tables if tt.promoted),
            "traces": len(infos),
            "cyclic_traces": sum(1 for t in infos if t.cyclic),
            "call_spanning_traces": sum(1 for t in infos if t.n_calls > 0),
            "auditable_traces": sum(1 for t in infos if t.auditable),
            "trace_blocks": sum(len(t.chain) for t in infos),
            "calls_chained": sum(t.n_calls for t in infos),
            "chain_guards_elided": sum(t.guards_elided for t in infos),
            "trace_entries": sum(tt.trace_entries for tt in tables),
        }

    def resilience_stats(self) -> Dict[str, object]:
        """Deopt/backoff counters surfaced for the chaos CLI and figures."""
        eager: Dict[str, int] = {}
        soft: Dict[str, int] = {}
        for kind, count in self.deopts_by_kind.items():
            bucket = soft if category_of(kind) == DeoptCategory.SOFT else eager
            bucket[kind.name] = count
        cont = self.continuations
        cont_stats = cont.stats() if cont is not None else {}
        return {
            "eager_deopts_by_kind": dict(sorted(eager.items())),
            "soft_deopts_by_kind": dict(sorted(soft.items())),
            "lazy_deopts": self.lazy_deopts,
            "storms_detected": self.storms_detected,
            "storm_disabled": list(self.storm_disabled),
            "budget_exhaustions": self.budget_exhaustions,
            "budget_disabled": list(self.budget_disabled),
            "ladder_descents": list(self.ladder_descents),
            "tier_rungs": {
                f.name: RUNG_NAMES[f.tier_rung]
                for f in self.functions
                if f.tier_rung > 0
            },
            "continuation_dispatches": cont_stats.get("dispatches", 0),
            "continuation_compiles": cont_stats.get("lazy_compiles", 0),
            "continuation_seeded_hits": cont_stats.get("seeded_hits", 0),
            "continuation_breaker_trips": cont_stats.get("breaker_trips", 0),
            "continuation_evictions": cont_stats.get("evictions", 0),
            "continuation_stats": cont_stats,
            "max_reopt_count": max(
                (f.reopt_count for f in self.functions), default=0
            ),
            "disabled_functions": [
                f.name
                for f in self.functions
                if f.optimization_disabled and f.info is not None
            ],
        }

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def run_gc(self) -> int:
        roots: List[int] = [
            self._global_array_word,
            self._interrupt_cell_word,
            self._nursery_cell_word,
        ]
        for shared in self.functions:
            if shared.closure_word is not None:
                roots.append(shared.closure_word)
            for word in shared.constant_words:
                if word is not None:
                    roots.append(word)
            if shared.code is not None:
                roots.extend(shared.code.embedded_words)
        freed = self.heap.collect(roots)
        self.charge(0.05 * self.heap.gc_stats.last_marked + 50, "gc")
        return freed

    # ------------------------------------------------------------------
    # Regex support
    # ------------------------------------------------------------------

    def make_regex(self, pattern: str, flags: str = "") -> int:
        regex = Regex(pattern, flags)
        regex_id = len(self.regex_table)
        self.regex_table.append(regex)
        word = self.heap.alloc_object()
        self.heap.object_set_property(word, self._regex_marker, self.heap.to_word(regex_id))
        self.heap.object_set_property(word, "source", self.heap.alloc_string(pattern))
        self.heap.object_set_property(
            word, "global", self.heap.true_value if regex.is_global else self.heap.false_value
        )
        return word

    def regex_from_word(self, word: int) -> Optional[Regex]:
        if is_smi(word):
            return None
        addr = pointer_untag(word)
        if self.heap.map_of(addr).instance_type != InstanceType.JS_OBJECT:
            return None
        marker = self.heap.object_get_property(word, self._regex_marker)
        if marker is None or not is_smi(marker):
            return None
        return self.regex_table[marker >> 1]

    # ------------------------------------------------------------------
    # Primitive methods & the JIT runtime interface
    # ------------------------------------------------------------------

    def call_primitive_method(
        self, receiver: int, name: str, args: List[int], call_slot
    ) -> int:
        heap = self.heap
        if not is_smi(receiver):
            itype = heap.map_of(pointer_untag(receiver)).instance_type
            if itype == InstanceType.STRING:
                result, cost = builtin_impls.string_method(self, receiver, name, args)
                self.charge(cost, "builtin")
                return result
            if itype == InstanceType.JS_ARRAY:
                result, cost = builtin_impls.array_method(self, receiver, name, args)
                self.charge(cost, "builtin")
                return result
            if itype == InstanceType.JS_OBJECT:
                regex = self.regex_from_word(receiver)
                if regex is not None:
                    return self._regex_method(regex, name, args)
        raise JSTypeError(f"cannot call method {name!r}")

    def _regex_method(self, regex: Regex, name: str, args: List[int]) -> int:
        heap = self.heap
        text = runtime.js_to_string(heap, args[0]) if args else ""
        regex.steps = 0
        if name == "test":
            outcome = regex.test(text)
            self.charge(15 + 2 * regex.steps, "builtin")
            return heap.true_value if outcome else heap.false_value
        if name == "exec":
            match = regex.exec(text)
            cost = 20 + 2 * regex.steps
            if match is None:
                self.charge(cost, "builtin")
                return heap.null
            result = heap.alloc_array(ElementsKind.PACKED, 1 + match.group_count)
            heap.array_set(result, 0, heap.alloc_string(match.matched))
            for g in range(1, match.group_count + 1):
                group = match.group(g)
                heap.array_set(
                    result,
                    g,
                    heap.alloc_string(group) if group is not None else heap.undefined,
                )
            self.charge(cost + 3 * (1 + match.group_count), "builtin")
            return result
        raise JSTypeError(f"unknown regex method {name!r}")

    def call_runtime(
        self, name: str, extra, args: List[int], fregs: List[float]
    ) -> object:
        """Runtime calls made by JIT-compiled code (CALL_RT)."""
        handler = self._runtime_table.get(name)
        if handler is not None:
            return handler(self, extra, args, fregs)
        if name.startswith("method:"):
            _prefix, kind, method = name.split(":", 2)
            receiver = args[0]
            rest = args[1:]
            if kind == "regex":
                regex = self.regex_from_word(receiver)
                if regex is None:
                    raise JSTypeError("regex receiver expected")
                return self._regex_method(regex, method, rest)
            return self.call_primitive_method(receiver, method, rest, None)
        raise JSTypeError(f"unknown runtime call {name!r}")

    # ------------------------------------------------------------------
    # Builtin installation
    # ------------------------------------------------------------------

    def _register_native(self, name: str, impl) -> int:
        shared = SharedFunction(None, len(self.functions), native_impl=impl, name=name)
        self.functions.append(shared)
        return self.closure_for(shared.index)

    def _install_globals(self) -> None:
        heap = self.heap
        math_obj = heap.alloc_object(capacity=48)
        for name, impl in builtin_impls.MATH_BUILTINS.items():
            heap.object_set_property(
                math_obj, name, self._register_native(f"Math.{name}", impl)
            )
        for name, value in builtin_impls.MATH_CONSTANTS.items():
            heap.object_set_property(math_obj, name, heap.alloc_number(value))
        self.set_global_word("Math", math_obj)

        string_obj = heap.alloc_object()
        heap.object_set_property(
            string_obj,
            "fromCharCode",
            self._register_native(
                "String.fromCharCode", builtin_impls._string_from_char_code
            ),
        )
        self.set_global_word("String", string_obj)

        def _regexp_ctor(engine, _this, ctor_args):
            pattern = (
                runtime.js_to_string(engine.heap, ctor_args[0]) if ctor_args else ""
            )
            flags = (
                runtime.js_to_string(engine.heap, ctor_args[1])
                if len(ctor_args) > 1
                else ""
            )
            return engine.make_regex(pattern, flags), 40

        self.set_global_word("RegExp", self._register_native("RegExp", _regexp_ctor))

        def _array_ctor(engine, _this, ctor_args):
            length = (
                int(runtime.js_to_number(engine.heap, ctor_args[0]))
                if ctor_args
                else 0
            )
            return (
                engine.heap.alloc_array(ElementsKind.PACKED_SMI, length),
                15 + length // 4,
            )

        self.set_global_word("Array", self._register_native("Array", _array_ctor))

        for name, impl in builtin_impls.GLOBAL_BUILTINS.items():
            self.set_global_word(name, self._register_native(name, impl))


def _invalidator(code: CodeObject):
    def _on_destabilized(_map) -> None:
        code.invalidated = True

    return _on_destabilized


# ---------------------------------------------------------------------------
# JIT runtime table
# ---------------------------------------------------------------------------


def _rt_generic_binary(fn, cost: float):
    def handler(engine: Engine, _extra, args, _fregs):
        result, _fb = fn(engine.heap, args[0], args[1])
        engine.charge(cost, "builtin")
        return result

    return handler


def _rt_generic_bitwise(op_name: str, cost: float):
    def handler(engine: Engine, _extra, args, _fregs):
        result, _fb = runtime.js_bitwise(engine.heap, op_name, args[0], args[1])
        engine.charge(cost, "builtin")
        return result

    return handler


def _rt_generic_compare(cond: str):
    def handler(engine: Engine, _extra, args, _fregs):
        outcome, _fb = runtime.js_compare(engine.heap, cond, args[0], args[1])
        engine.charge(24, "builtin")
        return 1 if outcome else 0

    return handler


def _build_runtime_table() -> Dict[str, Callable]:
    import math as _math

    table: Dict[str, Callable] = {}
    table["generic_add"] = _rt_generic_binary(runtime.js_add, 28)
    table["generic_sub"] = _rt_generic_binary(runtime.js_subtract, 26)
    table["generic_mul"] = _rt_generic_binary(runtime.js_multiply, 26)
    table["generic_div"] = _rt_generic_binary(runtime.js_divide, 30)
    table["generic_mod"] = _rt_generic_binary(runtime.js_modulo, 30)
    for op_name in ("or", "and", "xor", "shl", "sar", "shr"):
        table[f"generic_{op_name}"] = _rt_generic_bitwise(op_name, 26)
    for cond in ("lt", "le", "gt", "ge"):
        table[f"generic_cmp_{cond}"] = _rt_generic_compare(cond)

    def rt_float64_mod(engine: Engine, _extra, _args, fregs):
        a, b = fregs[0], fregs[1]
        if b == 0.0 or _math.isnan(a) or _math.isnan(b) or _math.isinf(a):
            result = float("nan")
        elif _math.isinf(b):
            result = a
        else:
            result = _math.fmod(a, b)
        engine.charge(18, "builtin")
        return result

    table["float64_mod"] = rt_float64_mod

    def rt_alloc_number(engine: Engine, _extra, _args, fregs):
        engine.charge(10, "builtin")
        return engine.heap.alloc_number(fregs[0])

    table["alloc_number"] = rt_alloc_number

    def rt_to_boolean(engine: Engine, _extra, args, _fregs):
        engine.charge(8, "builtin")
        return 1 if runtime.js_truthy(engine.heap, args[0]) else 0

    table["to_boolean"] = rt_to_boolean

    def rt_strict_equals(engine: Engine, _extra, args, _fregs):
        outcome, _fb = runtime.js_strict_equals(engine.heap, args[0], args[1])
        engine.charge(14, "builtin")
        return 1 if outcome else 0

    table["strict_equals"] = rt_strict_equals

    def rt_loose_equals(engine: Engine, _extra, args, _fregs):
        outcome, _fb = runtime.js_loose_equals(engine.heap, args[0], args[1])
        engine.charge(18, "builtin")
        return 1 if outcome else 0

    table["loose_equals"] = rt_loose_equals

    def rt_typeof(engine: Engine, _extra, args, _fregs):
        engine.charge(10, "builtin")
        return engine.heap.alloc_string(
            runtime.js_typeof(engine.heap, args[0]), intern=True
        )

    table["typeof"] = rt_typeof

    def rt_to_number(engine: Engine, _extra, args, _fregs):
        engine.charge(16, "builtin")
        return engine.heap.number_from_float(
            runtime.js_to_number(engine.heap, args[0])
        )

    table["to_number"] = rt_to_number

    def rt_get_property_generic(engine: Engine, extra, args, _fregs):
        engine.charge(30, "builtin")
        return _generic_get_property(engine, args[0], str(extra))

    table["get_property_generic"] = rt_get_property_generic

    def rt_set_property_generic(engine: Engine, extra, args, _fregs):
        engine.charge(34, "builtin")
        engine.heap.object_set_property(args[0], str(extra), args[1])
        return engine.heap.undefined

    table["set_property_generic"] = rt_set_property_generic

    def rt_get_element_generic(engine: Engine, _extra, args, _fregs):
        engine.charge(30, "builtin")
        return _generic_get_element(engine, args[0], args[1])

    table["get_element_generic"] = rt_get_element_generic

    def rt_set_element_generic(engine: Engine, _extra, args, _fregs):
        engine.charge(34, "builtin")
        _generic_set_element(engine, args[0], args[1], args[2])
        return engine.heap.undefined

    table["set_element_generic"] = rt_set_element_generic

    def rt_call_method_generic(engine: Engine, extra, args, _fregs):
        engine.charge(26, "builtin")
        receiver = args[0]
        name = str(extra)
        heap = engine.heap
        if not is_smi(receiver):
            itype = heap.map_of(pointer_untag(receiver)).instance_type
            if itype == InstanceType.JS_OBJECT and engine.regex_from_word(receiver) is None:
                method = heap.object_get_property(receiver, name)
                if method is not None and method != heap.undefined:
                    return engine.call_value(method, receiver, args[1:], None)
        return engine.call_primitive_method(receiver, name, args[1:], None)

    table["call_method_generic"] = rt_call_method_generic

    def rt_create_array(engine: Engine, _extra, args, _fregs):
        heap = engine.heap
        kind = ElementsKind.PACKED_SMI
        for word in args:
            kind = max(kind, heap._kind_of_value(word))
        array = heap.alloc_array(kind, len(args))
        for index, word in enumerate(args):
            heap.array_set(array, index, word)
        engine.charge(18 + 3 * len(args), "builtin")
        return array

    table["create_array"] = rt_create_array

    def rt_create_object(engine: Engine, extra, args, _fregs):
        heap = engine.heap
        obj = heap.alloc_object()
        keys = list(extra or [])
        for key, word in zip(keys, args):
            heap.object_set_property(obj, key, word)
        engine.charge(22 + 4 * len(keys), "builtin")
        return obj

    table["create_object"] = rt_create_object

    def rt_construct(engine: Engine, _extra, args, _fregs):
        engine.charge(20, "builtin")
        return engine.construct(args[0], args[1:], None)

    table["construct"] = rt_construct

    def rt_never(engine: Engine, _extra, _args, _fregs):  # pragma: no cover
        raise AssertionError("never-taken out-of-line stub executed")

    table["interrupt"] = rt_never
    table["write_barrier"] = rt_never

    def rt_alloc_number_slow(engine: Engine, _extra, _args, fregs):
        engine.charge(45, "builtin")
        return engine.nursery_alloc_number_slow(fregs[0])

    table["alloc_number_slow"] = rt_alloc_number_slow

    return table


def _generic_get_property(engine: Engine, receiver: int, name: str) -> int:
    heap = engine.heap
    if is_smi(receiver):
        raise JSTypeError(f"cannot read {name!r} of a number")
    addr = pointer_untag(receiver)
    itype = heap.map_of(addr).instance_type
    if itype == InstanceType.JS_ARRAY and name == "length":
        return heap.to_word(heap.array_length(receiver))
    if itype == InstanceType.STRING and name == "length":
        return heap.to_word(len(heap.string_value(receiver)))
    if itype in (InstanceType.JS_OBJECT, InstanceType.JS_ARRAY):
        value = heap.object_get_property(receiver, name)
        return value if value is not None else heap.undefined
    raise JSTypeError(f"cannot read {name!r}")


def _generic_get_element(engine: Engine, receiver: int, key: int) -> int:
    heap = engine.heap
    if not is_smi(key):
        if runtime.is_string(heap, key):
            return _generic_get_property(engine, receiver, heap.string_value(key))
        key = heap.to_word(int(runtime.js_to_number(heap, key)))
    if is_smi(receiver):
        raise JSTypeError("cannot index a number")
    index = key >> 1
    itype = heap.map_of(pointer_untag(receiver)).instance_type
    if itype == InstanceType.JS_ARRAY:
        if 0 <= index < heap.array_length(receiver):
            return heap.array_get(receiver, index)
        return heap.undefined
    if itype == InstanceType.STRING:
        text = heap.string_value(receiver)
        if 0 <= index < len(text):
            return heap.alloc_string(text[index])
        return heap.undefined
    raise JSTypeError("value is not indexable")


def _generic_set_element(engine: Engine, receiver: int, key: int, value: int) -> None:
    heap = engine.heap
    if not is_smi(key):
        if runtime.is_string(heap, key):
            heap.object_set_property(receiver, heap.string_value(key), value)
            return
        key = heap.to_word(int(runtime.js_to_number(heap, key)))
    index = key >> 1
    length = heap.array_length(receiver)
    if index == length:
        heap.array_push(receiver, value)
    elif 0 <= index < length:
        heap.array_set(receiver, index, value)
    else:
        raise JSTypeError(f"sparse store at {index}")
