"""Work-unit scheduler, persistent result cache, and parallel fan-out.

The experiment grid (benchmark x target x config x repetition) is a set of
independent *cells*.  This package gives every cell a canonical descriptor
(:class:`RunCell`), deduplicates cells across figure drivers, resolves them
through a persistent content-addressed disk cache, and computes misses on a
process pool — see DESIGN.md and the README for the cache layout and
invalidation rules.
"""

from .cache import MISS, DiskCache, default_cache_root
from .cells import (
    PROFILED,
    REMOVABLE,
    REMOVABLE_ITERATIONS,
    SAMPLE_PERIOD,
    TIMED,
    ProfiledRun,
    RunCell,
    compute_cell,
    profiled_cell,
    removable_cell,
    timed_cell,
)
from .fingerprint import CACHE_SCHEMA, engine_fingerprint
from .scheduler import (
    CellFailure,
    GridError,
    RetryPolicy,
    SchedulerConfig,
    active_wal,
    clear_quarantine,
    configure,
    current_config,
    current_policy,
    execute_cells,
    quarantine_report,
    quarantined_cells,
    set_active_wal,
    shared_disk_cache,
)
from .wal import SweepWAL, default_wal_root, sweep_id

__all__ = [
    "CACHE_SCHEMA",
    "MISS",
    "PROFILED",
    "REMOVABLE",
    "REMOVABLE_ITERATIONS",
    "SAMPLE_PERIOD",
    "TIMED",
    "CellFailure",
    "DiskCache",
    "GridError",
    "ProfiledRun",
    "RetryPolicy",
    "RunCell",
    "SchedulerConfig",
    "SweepWAL",
    "active_wal",
    "clear_quarantine",
    "compute_cell",
    "configure",
    "current_config",
    "current_policy",
    "default_cache_root",
    "default_wal_root",
    "engine_fingerprint",
    "execute_cells",
    "profiled_cell",
    "quarantine_report",
    "quarantined_cells",
    "removable_cell",
    "set_active_wal",
    "shared_disk_cache",
    "sweep_id",
    "timed_cell",
]
