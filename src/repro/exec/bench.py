"""Harness-throughput benchmark: simulated cycles per wall-second.

Runs the smoke-scale timed grid through the scheduler four ways — serial,
``--jobs N`` (both uncached), then cold and warm through a temporary disk
cache — and writes ``BENCH_harness.json``::

    python -m repro.exec.bench --jobs 4 --out BENCH_harness.json

``cpu_count`` is recorded so the parallel numbers are interpretable: on a
single-core container the pool can only add overhead, and the honest
speedup there is ~1.0 or below; the warm-cache speedup does not depend on
core count.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from ..experiments.common import SCALES, suite_for_scale
from .cache import DiskCache
from .cells import RunCell, timed_cell
from .scheduler import execute_cells


def smoke_grid(targets=("arm64",)) -> List[RunCell]:
    scale = SCALES["smoke"]
    return [
        timed_cell(spec, target, scale.iterations, rep=rep)
        for spec in suite_for_scale(scale)
        for target in targets
        for rep in range(scale.reps)
    ]


def measure(cells: List[RunCell], jobs: int, disk=None) -> Dict[str, float]:
    start = time.perf_counter()
    results = execute_cells(cells, jobs=jobs, memo={}, disk=disk)
    wall = time.perf_counter() - start
    sim_cycles = sum(run.total_cycles for run in results.values())
    return {
        "wall_s": round(wall, 3),
        "sim_cycles": round(sim_cycles, 1),
        "cells": len(cells),
        "cycles_per_wall_s": round(sim_cycles / wall, 1) if wall else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--out", default="BENCH_harness.json")
    parser.add_argument(
        "--targets", default="arm64",
        help="comma-separated ISA list for the grid (default: arm64)",
    )
    args = parser.parse_args(argv)
    cells = smoke_grid(tuple(args.targets.split(",")))

    print(f"harness throughput over {len(cells)} smoke cells "
          f"(cpu_count={os.cpu_count()})")
    serial = measure(cells, jobs=1)
    print(f"  serial:      {serial['wall_s']:8.2f}s  "
          f"{serial['cycles_per_wall_s']:>14,.0f} cyc/s")
    parallel = measure(cells, jobs=args.jobs)
    print(f"  jobs={args.jobs}:      {parallel['wall_s']:8.2f}s  "
          f"{parallel['cycles_per_wall_s']:>14,.0f} cyc/s")
    with tempfile.TemporaryDirectory() as tmp:
        cold = measure(cells, jobs=1, disk=DiskCache(root=Path(tmp)))
        warm = measure(cells, jobs=1, disk=DiskCache(root=Path(tmp)))
    print(f"  cache cold:  {cold['wall_s']:8.2f}s")
    print(f"  cache warm:  {warm['wall_s']:8.2f}s")

    payload = {
        "bench": "harness_throughput",
        "grid": f"smoke/{args.targets}",
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "serial": serial,
        "parallel": parallel,
        "parallel_speedup": round(serial["wall_s"] / parallel["wall_s"], 3)
        if parallel["wall_s"] else 0.0,
        "cache_cold": cold,
        "cache_warm": warm,
        "warm_speedup": round(cold["wall_s"] / warm["wall_s"], 3)
        if warm["wall_s"] else 0.0,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"parallel speedup {payload['parallel_speedup']}x, "
          f"warm-cache speedup {payload['warm_speedup']}x -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
