"""Harness-throughput benchmark: simulated cycles per wall-second.

Runs the smoke-scale timed grid through the scheduler four ways — serial,
``--jobs N`` (both uncached), then cold and warm through a temporary disk
cache — and writes ``BENCH_harness.json``::

    python -m repro.exec.bench --jobs 4 --out BENCH_harness.json

``cpu_count`` is recorded so the parallel numbers are interpretable: on a
single-core container the pool can only add overhead, so the payload is
marked ``degenerate`` there and no parallel-speedup claim is made; the
warm-cache speedup does not depend on core count.

The ``executor`` section measures the simulator core directly —
instructions retired per wall-second with the per-instruction step loop
versus the block-compiled executor (``EngineConfig(blockjit=...)``, see
:mod:`repro.machine.blockjit`) — plus the fused-block shape of the
compiled code, so perf regressions in either tier are visible without
the scheduler noise on top.  CI's perf-smoke job fails when the block
tier stops being faster than the step loop.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from ..engine import Engine, EngineConfig
from ..experiments.common import SCALES, suite_for_scale
from ..suite.spec import get_benchmark
from ..uarch.blockcost import block_shape_summary
from .cache import DiskCache
from .cells import RunCell, timed_cell
from .scheduler import execute_cells

#: benchmarks the executor section times (int-heavy, load/store-heavy and
#: float-heavy, so both tiers exercise every hot dispatch kind)
EXECUTOR_BENCHMARKS = ("FIB", "AES2", "MANDEL")


def smoke_grid(targets=("arm64",)) -> List[RunCell]:
    scale = SCALES["smoke"]
    return [
        timed_cell(spec, target, scale.iterations, rep=rep)
        for spec in suite_for_scale(scale)
        for target in targets
        for rep in range(scale.reps)
    ]


def measure(cells: List[RunCell], jobs: int, disk=None) -> Dict[str, float]:
    start = time.perf_counter()
    results = execute_cells(cells, jobs=jobs, memo={}, disk=disk)
    wall = time.perf_counter() - start
    sim_cycles = sum(run.total_cycles for run in results.values())
    return {
        "wall_s": round(wall, 3),
        "sim_cycles": round(sim_cycles, 1),
        "cells": len(cells),
        "cycles_per_wall_s": round(sim_cycles / wall, 1) if wall else 0.0,
    }


def executor_section(iterations: int = 20, warmup: int = 10) -> Dict[str, object]:
    """Time the two executor tiers head-to-head on warmed JIT code."""
    section: Dict[str, object] = {
        "benchmarks": list(EXECUTOR_BENCHMARKS),
        "iterations": iterations,
    }
    shape = None
    configs = (
        ("step", EngineConfig(blockjit=False)),
        ("block", EngineConfig(blockjit=True)),
        # The divergence sentinel at its default schedule; its budget is
        # <= 10 % over the plain block tier (asserted by CI perf-smoke).
        ("audit", EngineConfig(blockjit=True, audit=True)),
    )
    for label, config in configs:
        instructions = 0
        wall = 0.0
        audits = 0
        for name in EXECUTOR_BENCHMARKS:
            spec = get_benchmark(name)
            engine = Engine(config)
            engine.load(spec.source)
            engine.call_global("setup")
            for i in range(warmup):
                engine.current_iteration = i
                engine.call_global("run")
            before = engine.executor.stats.instructions
            start = time.perf_counter()
            for i in range(iterations):
                engine.current_iteration = warmup + i
                engine.call_global("run")
            wall += time.perf_counter() - start
            instructions += engine.executor.stats.instructions - before
            if engine.executor._audit is not None:
                audits += engine.executor._audit.audits
            if label == "block" and shape is None:
                codes = [f.code for f in engine.functions if f.code is not None]
                shape = block_shape_summary(codes)
        entry: Dict[str, object] = {
            "wall_s": round(wall, 3),
            "instructions": instructions,
            "instructions_per_wall_s": round(instructions / wall, 1) if wall else 0.0,
        }
        if label == "audit":
            entry["audits"] = audits
        section[label] = entry
    step = section["step"]["instructions_per_wall_s"]  # type: ignore[index]
    block = section["block"]["instructions_per_wall_s"]  # type: ignore[index]
    section["block_speedup"] = round(block / step, 3) if step else 0.0
    audit_wall = section["audit"]["wall_s"]  # type: ignore[index]
    block_wall = section["block"]["wall_s"]  # type: ignore[index]
    section["audit_overhead"] = (
        round(audit_wall / block_wall, 3) if block_wall else 0.0
    )
    section["block_shape"] = shape
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--out", default="BENCH_harness.json")
    parser.add_argument(
        "--targets", default="arm64",
        help="comma-separated ISA list for the grid (default: arm64)",
    )
    args = parser.parse_args(argv)
    cells = smoke_grid(tuple(args.targets.split(",")))

    print(f"harness throughput over {len(cells)} smoke cells "
          f"(cpu_count={os.cpu_count()})")
    serial = measure(cells, jobs=1)
    print(f"  serial:      {serial['wall_s']:8.2f}s  "
          f"{serial['cycles_per_wall_s']:>14,.0f} cyc/s")
    parallel = measure(cells, jobs=args.jobs)
    print(f"  jobs={args.jobs}:      {parallel['wall_s']:8.2f}s  "
          f"{parallel['cycles_per_wall_s']:>14,.0f} cyc/s")
    with tempfile.TemporaryDirectory() as tmp:
        cold = measure(cells, jobs=1, disk=DiskCache(root=Path(tmp)))
        warm = measure(cells, jobs=1, disk=DiskCache(root=Path(tmp)))
    print(f"  cache cold:  {cold['wall_s']:8.2f}s")
    print(f"  cache warm:  {warm['wall_s']:8.2f}s")
    executor = executor_section()
    print(f"  executor step:  {executor['step']['instructions_per_wall_s']:>14,.0f}"
          " instr/s")
    print(f"  executor block: {executor['block']['instructions_per_wall_s']:>14,.0f}"
          f" instr/s ({executor['block_speedup']}x)")
    print(f"  executor audit: {executor['audit']['instructions_per_wall_s']:>14,.0f}"
          f" instr/s ({executor['audit_overhead']}x block wall, "
          f"{executor['audit']['audits']} audits)")

    # A single-core host cannot demonstrate pool parallelism — the honest
    # report is "degenerate", not a ~1.0x speedup headline.
    degenerate = (os.cpu_count() or 1) == 1
    payload = {
        "bench": "harness_throughput",
        "grid": f"smoke/{args.targets}",
        "cpu_count": os.cpu_count(),
        "degenerate": degenerate,
        "jobs": args.jobs,
        "serial": serial,
        "parallel": parallel,
        "parallel_speedup": None if degenerate else (
            round(serial["wall_s"] / parallel["wall_s"], 3)
            if parallel["wall_s"] else 0.0
        ),
        "cache_cold": cold,
        "cache_warm": warm,
        "warm_speedup": round(cold["wall_s"] / warm["wall_s"], 3)
        if warm["wall_s"] else 0.0,
        "executor": executor,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    if degenerate:
        print("parallel speedup: n/a (single-core host; pool overhead only), "
              f"warm-cache speedup {payload['warm_speedup']}x -> {args.out}")
    else:
        print(f"parallel speedup {payload['parallel_speedup']}x, "
              f"warm-cache speedup {payload['warm_speedup']}x -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
