"""Harness-throughput benchmark: simulated cycles per wall-second.

Runs the smoke-scale timed grid through the scheduler four ways — serial,
``--jobs N`` (both uncached), then cold and warm through a temporary disk
cache — and writes ``BENCH_harness.json``::

    python -m repro.exec.bench --jobs 4 --out BENCH_harness.json

``cpu_count`` is recorded so the parallel numbers are interpretable: on a
single-core container the pool can only add overhead, so the payload is
marked ``degenerate`` there and ``parallel_speedup`` carries the explicit
``"skipped_single_core"`` marker instead of a number (CI's perf gate
skips the parallel assertion on that marker rather than comparing
against null); the warm-cache speedup does not depend on core count.

The ``executor`` section measures the simulator core directly —
instructions retired per wall-second with the per-instruction step loop
versus the block-compiled executor versus the trace tier
(``EngineConfig(blockjit=..., tracejit=...)``, see
:mod:`repro.machine.blockjit` / :mod:`repro.machine.tracejit`) — plus
the fused-block shape of the compiled code, so perf regressions in any
tier are visible without the scheduler noise on top.  Per-benchmark
block-vs-trace walls are recorded for the call-heavy pair (RAY, RICH),
the workloads the cross-call chaining targets.  CI's perf-smoke job
fails when block stops beating step or trace stops beating block.

``--section executor`` skips the scheduler grid and cache passes and
re-measures only the executor tiers (fast inner loop for perf work).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from ..engine import Engine, EngineConfig
from ..experiments.common import SCALES, suite_for_scale
from ..suite.spec import get_benchmark
from ..uarch.blockcost import block_shape_summary
from .cache import DiskCache
from .cells import RunCell, timed_cell
from .scheduler import execute_cells

#: benchmarks the executor section times (int-heavy, load/store-heavy and
#: float-heavy, so every tier exercises every hot dispatch kind), plus
#: the call-heavy pair the trace tier's cross-call chaining targets
EXECUTOR_BENCHMARKS = ("FIB", "AES2", "MANDEL", "RAY", "RICH")

#: of those, the call-heavy workloads whose block-vs-trace walls are
#: reported per benchmark (the paper's RAYTRACE/DELTABLUE stand-ins —
#: this registry ships RAY and RICHARDS, so those carry the gate)
CALL_HEAVY_BENCHMARKS = ("RAY", "RICH")


def smoke_grid(targets=("arm64",)) -> List[RunCell]:
    scale = SCALES["smoke"]
    return [
        timed_cell(spec, target, scale.iterations, rep=rep)
        for spec in suite_for_scale(scale)
        for target in targets
        for rep in range(scale.reps)
    ]


def measure(cells: List[RunCell], jobs: int, disk=None) -> Dict[str, float]:
    start = time.perf_counter()
    results = execute_cells(cells, jobs=jobs, memo={}, disk=disk)
    wall = time.perf_counter() - start
    sim_cycles = sum(run.total_cycles for run in results.values())
    return {
        "wall_s": round(wall, 3),
        "sim_cycles": round(sim_cycles, 1),
        "cells": len(cells),
        "cycles_per_wall_s": round(sim_cycles / wall, 1) if wall else 0.0,
    }


def executor_section(iterations: int = 20, warmup: int = 10,
                     reps: int = 3) -> Dict[str, object]:
    """Time the three executor tiers head-to-head on warmed JIT code.

    Each (tier, benchmark) cell is run ``reps`` times in fresh engines
    and the *minimum* wall is reported: instruction counts are
    deterministic, so min-of-N measures the code and discards scheduler
    noise — which on a shared single-core runner is of the same order
    as the block-vs-trace delta the CI gate checks.
    """
    section: Dict[str, object] = {
        "benchmarks": list(EXECUTOR_BENCHMARKS),
        "call_heavy_benchmarks": list(CALL_HEAVY_BENCHMARKS),
        "iterations": iterations,
        "reps": reps,
    }
    shape = None
    configs = (
        ("step", EngineConfig(blockjit=False)),
        ("block", EngineConfig(blockjit=True, tracejit=False)),
        ("trace", EngineConfig(blockjit=True, tracejit=True)),
        # The divergence sentinel at its default schedule over the full
        # three-tier stack; its budget is <= 10 % over the plain trace
        # tier (asserted by CI perf-smoke).
        ("audit", EngineConfig(blockjit=True, tracejit=True, audit=True)),
    )
    walls: Dict[str, Dict[str, float]] = {}
    for label, config in configs:
        instructions = 0
        wall = 0.0
        audits = 0
        trace_stats: Dict[str, int] = {}
        walls[label] = {}
        for name in EXECUTOR_BENCHMARKS:
            spec = get_benchmark(name)
            best_wall = None
            for rep in range(reps):
                engine = Engine(config)
                engine.load(spec.source)
                engine.call_global("setup")
                for i in range(warmup):
                    engine.current_iteration = i
                    engine.call_global("run")
                before = engine.executor.stats.instructions
                start = time.perf_counter()
                for i in range(iterations):
                    engine.current_iteration = warmup + i
                    engine.call_global("run")
                rep_wall = time.perf_counter() - start
                if best_wall is None or rep_wall < best_wall:
                    best_wall = rep_wall
                if rep > 0:
                    continue  # counters are deterministic across reps
                instructions += engine.executor.stats.instructions - before
                if engine.executor._audit is not None:
                    audits += engine.executor._audit.audits
                if label == "block" and shape is None:
                    codes = [f.code for f in engine.functions
                             if f.code is not None]
                    shape = block_shape_summary(codes)
                if label == "trace":
                    for key, value in engine.trace_stats().items():
                        trace_stats[key] = trace_stats.get(key, 0) + value
            wall += best_wall
            walls[label][name] = best_wall
        entry: Dict[str, object] = {
            "wall_s": round(wall, 3),
            "instructions": instructions,
            "instructions_per_wall_s": round(instructions / wall, 1) if wall else 0.0,
        }
        if label == "audit":
            entry["audits"] = audits
        if label == "trace":
            entry["trace_stats"] = trace_stats
        section[label] = entry
    step = section["step"]["instructions_per_wall_s"]  # type: ignore[index]
    block = section["block"]["instructions_per_wall_s"]  # type: ignore[index]
    trace = section["trace"]["instructions_per_wall_s"]  # type: ignore[index]
    section["block_speedup"] = round(block / step, 3) if step else 0.0
    section["trace_speedup"] = round(trace / block, 3) if block else 0.0
    # Per-benchmark block-vs-trace on the call-heavy pair: the workloads
    # cross-call chaining exists for, reported honestly per benchmark so
    # a mean over loop-dominated workloads cannot hide a call-path loss.
    section["call_heavy"] = {
        name: {
            "block_wall_s": round(walls["block"][name], 3),
            "trace_wall_s": round(walls["trace"][name], 3),
            "trace_speedup": (
                round(walls["block"][name] / walls["trace"][name], 3)
                if walls["trace"][name] else 0.0
            ),
        }
        for name in CALL_HEAVY_BENCHMARKS
    }
    audit_wall = section["audit"]["wall_s"]  # type: ignore[index]
    trace_wall = section["trace"]["wall_s"]  # type: ignore[index]
    section["audit_overhead"] = (
        round(audit_wall / trace_wall, 3) if trace_wall else 0.0
    )
    section["block_shape"] = shape
    return section


def storm_section(iterations: int = 30) -> Dict[str, object]:
    """Deoptless dispatch vs. classic bailout under a deopt storm.

    Runs FIB under a TRIP_CHECK-heavy fault plan (a forced guard trip
    every other iteration) twice: with continuation dispatch on (the
    default) and with ``EngineConfig(continuations=False)``, which takes
    the classic discard-recompile-backoff path on every trip.  The
    numbers compared are **simulated cycles** — the engine's own cost
    model — not host wall time: staying on optimized code and charging
    ``DISPATCH_CYCLES`` per trip must beat falling back to the
    interpreter while the exponential re-tier backoff climbs.  CI's
    perf-smoke job gates on ``dispatch_speedup > 1`` with
    ``dispatches > 0``.
    """
    from ..resilience.faults import Fault, FaultInjector, FaultKind, FaultPlan
    from ..suite.runner import BenchmarkRunner, NoiseModel

    plan = FaultPlan("FIB", 0, tuple(
        Fault(i, FaultKind.TRIP_CHECK) for i in range(4, iterations, 2)
    ))
    section: Dict[str, object] = {
        "benchmark": "FIB",
        "iterations": iterations,
        "forced_trips": len(plan.faults),
    }
    for label, config in (
        ("dispatch", EngineConfig()),
        ("classic", EngineConfig(continuations=False)),
    ):
        runner = BenchmarkRunner(get_benchmark("FIB"), config,
                                 NoiseModel(enabled=False))
        result = runner.run(iterations=iterations,
                            injector=FaultInjector(plan))
        engine = runner.last_engine
        assert engine is not None
        stats = engine.resilience_stats()
        section[label] = {
            "sim_cycles": round(result.total_cycles, 1),
            "dispatches": stats["continuation_dispatches"],
            "storms_detected": stats["storms_detected"],
            "ladder_descents": len(stats["ladder_descents"]),  # type: ignore[arg-type]
        }
    dispatch = section["dispatch"]["sim_cycles"]  # type: ignore[index]
    classic = section["classic"]["sim_cycles"]  # type: ignore[index]
    section["dispatch_speedup"] = (
        round(classic / dispatch, 3) if dispatch else 0.0
    )
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--out", default="BENCH_harness.json")
    parser.add_argument(
        "--targets", default="arm64",
        help="comma-separated ISA list for the grid (default: arm64)",
    )
    parser.add_argument(
        "--section", choices=("all", "executor"), default="all",
        help="'executor' skips the scheduler grid and cache passes and "
             "measures only the executor tiers",
    )
    args = parser.parse_args(argv)

    # A single-core host cannot demonstrate pool parallelism — the honest
    # report is "degenerate", not a ~1.0x speedup headline.
    degenerate = (os.cpu_count() or 1) == 1
    payload: Dict[str, object] = {
        "bench": "harness_throughput",
        "cpu_count": os.cpu_count(),
        "degenerate": degenerate,
    }

    if args.section == "all":
        cells = smoke_grid(tuple(args.targets.split(",")))
        print(f"harness throughput over {len(cells)} smoke cells "
              f"(cpu_count={os.cpu_count()})")
        serial = measure(cells, jobs=1)
        print(f"  serial:      {serial['wall_s']:8.2f}s  "
              f"{serial['cycles_per_wall_s']:>14,.0f} cyc/s")
        parallel = measure(cells, jobs=args.jobs)
        print(f"  jobs={args.jobs}:      {parallel['wall_s']:8.2f}s  "
              f"{parallel['cycles_per_wall_s']:>14,.0f} cyc/s")
        with tempfile.TemporaryDirectory() as tmp:
            cold = measure(cells, jobs=1, disk=DiskCache(root=Path(tmp)))
            warm = measure(cells, jobs=1, disk=DiskCache(root=Path(tmp)))
        print(f"  cache cold:  {cold['wall_s']:8.2f}s")
        print(f"  cache warm:  {warm['wall_s']:8.2f}s")
        payload.update({
            "grid": f"smoke/{args.targets}",
            "jobs": args.jobs,
            "serial": serial,
            "parallel": parallel,
            # Explicit marker rather than null + the degenerate flag:
            # downstream gates key on the string and skip the parallel
            # assertion instead of null-comparing their way to a failure.
            "parallel_speedup": "skipped_single_core" if degenerate else (
                round(serial["wall_s"] / parallel["wall_s"], 3)
                if parallel["wall_s"] else 0.0
            ),
            "cache_cold": cold,
            "cache_warm": warm,
            "warm_speedup": round(cold["wall_s"] / warm["wall_s"], 3)
            if warm["wall_s"] else 0.0,
        })
    else:
        print(f"executor section only (cpu_count={os.cpu_count()})")

    executor = executor_section()
    payload["executor"] = executor
    print(f"  executor step:  {executor['step']['instructions_per_wall_s']:>14,.0f}"
          " instr/s")
    print(f"  executor block: {executor['block']['instructions_per_wall_s']:>14,.0f}"
          f" instr/s ({executor['block_speedup']}x step)")
    print(f"  executor trace: {executor['trace']['instructions_per_wall_s']:>14,.0f}"
          f" instr/s ({executor['trace_speedup']}x block)")
    for name, entry in executor["call_heavy"].items():
        print(f"    {name:6s} block {entry['block_wall_s']:6.3f}s  "
              f"trace {entry['trace_wall_s']:6.3f}s  "
              f"({entry['trace_speedup']}x)")
    print(f"  executor audit: {executor['audit']['instructions_per_wall_s']:>14,.0f}"
          f" instr/s ({executor['audit_overhead']}x trace wall, "
          f"{executor['audit']['audits']} audits)")

    storm = storm_section()
    payload["storm"] = storm
    print(f"  storm cell ({storm['benchmark']}, {storm['forced_trips']} "
          f"forced trips): dispatch {storm['dispatch']['sim_cycles']:,.0f} "
          f"sim-cycles ({storm['dispatch']['dispatches']} dispatches) vs "
          f"classic {storm['classic']['sim_cycles']:,.0f} "
          f"({storm['classic']['ladder_descents']} descents) -> "
          f"{storm['dispatch_speedup']}x")

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    if args.section == "executor":
        print(f"executor section -> {args.out}")
    elif degenerate:
        print("parallel speedup: n/a (single-core host; pool overhead only), "
              f"warm-cache speedup {payload['warm_speedup']}x -> {args.out}")
    else:
        print(f"parallel speedup {payload['parallel_speedup']}x, "
              f"warm-cache speedup {payload['warm_speedup']}x -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
