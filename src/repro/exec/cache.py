"""Persistent content-addressed cache for cell results.

Layout (all knobs documented in the README):

    <root>/<fingerprint[:16]>/<token[:2]>/<token>.pkl

* ``root`` defaults to ``results/.cache`` in the repository, overridable
  with the ``REPRO_CACHE_DIR`` environment variable;
* ``fingerprint`` is :func:`repro.exec.fingerprint.engine_fingerprint` —
  any engine/source change sends reads and writes to a fresh directory;
* ``token`` is the cell's sha256 content-address; the two-character fan-out
  keeps directories small at ``full``-scale grids.

Writes are atomic (temp file + ``os.replace``) so concurrent CLI runs
sharing one cache directory can never observe torn entries.  All I/O
errors degrade to cache misses; an unwritable location disables the cache
for the rest of the process instead of failing the run.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Optional

from .fingerprint import engine_fingerprint

#: sentinel distinguishing "no entry" from a cached None
MISS = object()


def default_cache_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / ".cache"


class DiskCache:
    """Pickle-per-entry store namespaced by engine fingerprint."""

    MISS = MISS

    def __init__(
        self, root: Optional[Path] = None, fingerprint: Optional[str] = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.fingerprint = fingerprint or engine_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._disabled = False

    @property
    def directory(self) -> Path:
        return self.root / self.fingerprint[:16]

    def _path(self, token: str) -> Path:
        return self.directory / token[:2] / f"{token}.pkl"

    def get(self, token: str) -> object:
        """The stored value, or :data:`MISS`."""
        if self._disabled:
            return MISS
        path = self._path(token)
        try:
            data = path.read_bytes()
            value = pickle.loads(data)
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except (OSError, pickle.PickleError, EOFError, AttributeError, ValueError):
            # Torn or stale entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, token: str, value: object) -> None:
        if self._disabled:
            return
        path = self._path(token)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PickleError):
            # Read-only checkout, full disk, unpicklable payload: run without
            # persistence rather than failing the measurement.
            self._disabled = True
            return
        self.stores += 1

    def clear(self) -> None:
        """Remove this fingerprint's entries (other versions are kept)."""
        shutil.rmtree(self.directory, ignore_errors=True)

    def stats_line(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.stores} stored"
