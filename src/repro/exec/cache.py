"""Persistent content-addressed cache for cell results.

Layout (all knobs documented in the README):

    <root>/<fingerprint[:16]>/<token[:2]>/<token>.pkl

* ``root`` defaults to ``results/.cache`` in the repository, overridable
  with the ``REPRO_CACHE_DIR`` environment variable;
* ``fingerprint`` is :func:`repro.exec.fingerprint.engine_fingerprint` —
  any engine/source change sends reads and writes to a fresh directory;
* ``token`` is the cell's sha256 content-address; the two-character fan-out
  keeps directories small at ``full``-scale grids.

Entries are **checksummed**: the on-disk format is a 4-byte magic, the
sha256 digest of the pickled payload, then the payload.  A truncated file
(power loss mid-``os.replace`` on non-atomic filesystems), a flipped bit,
or an entry written by an older schema fails validation and is *evicted* —
counted in ``corrupt_evictions`` — rather than deserialized into a bogus
measurement.

Writes are atomic (temp file + ``os.replace``) so concurrent CLI runs
sharing one cache directory can never observe torn entries, and they
tolerate the cache directory being deleted concurrently (``clear`` from
another process, an overzealous ``rm -rf results``): the tree is recreated
and the write retried once.  All other I/O errors degrade to cache misses;
a persistently unwritable location disables the cache for the rest of the
process instead of failing the run.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Optional

from .fingerprint import engine_fingerprint

logger = logging.getLogger(__name__)

#: sentinel distinguishing "no entry" from a cached None
MISS = object()

#: on-disk entry magic; bump with the entry format
_MAGIC = b"RPC2"
_DIGEST_BYTES = hashlib.sha256().digest_size
_HEADER_BYTES = len(_MAGIC) + _DIGEST_BYTES


def default_cache_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / ".cache"


def _encode(value: object) -> bytes:
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return _MAGIC + hashlib.sha256(payload).digest() + payload


def _decode(data: bytes) -> object:
    """Validated payload, or raise ``ValueError`` on any corruption."""
    if len(data) < _HEADER_BYTES or not data.startswith(_MAGIC):
        raise ValueError("bad cache entry header")
    digest = data[len(_MAGIC):_HEADER_BYTES]
    payload = data[_HEADER_BYTES:]
    if hashlib.sha256(payload).digest() != digest:
        raise ValueError("cache entry checksum mismatch")
    return pickle.loads(payload)


class DiskCache:
    """Pickle-per-entry store namespaced by engine fingerprint."""

    MISS = MISS

    def __init__(
        self, root: Optional[Path] = None, fingerprint: Optional[str] = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.fingerprint = fingerprint or engine_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_evictions = 0
        self._disabled = False

    @property
    def directory(self) -> Path:
        return self.root / self.fingerprint[:16]

    def _path(self, token: str) -> Path:
        return self.directory / token[:2] / f"{token}.pkl"

    def get(self, token: str) -> object:
        """The stored value, or :data:`MISS`."""
        if self._disabled:
            return MISS
        path = self._path(token)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return MISS
        try:
            value = _decode(data)
        except (ValueError, pickle.PickleError, EOFError, AttributeError) as reason:
            # Truncated, bit-flipped, or legacy-format entry: evict and
            # recompute rather than trust it.  Eviction is correct but
            # never silent — repeated warnings for one path point at a
            # failing disk or a concurrent writer on an older schema.
            self.corrupt_evictions += 1
            logger.warning(
                "evicting corrupt cache entry %s (%s); recomputing",
                path, reason,
            )
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, token: str, value: object) -> None:
        if self._disabled:
            return
        try:
            data = _encode(value)
        except pickle.PickleError:
            self._disabled = True
            return
        path = self._path(token)
        for attempt in range(2):
            try:
                self._write_atomic(path, data)
                self.stores += 1
                return
            except OSError:
                # First failure is commonly a concurrently-deleted cache
                # tree (clear() in another process); mkdir in
                # _write_atomic recreates it, so one retry suffices.
                # A second failure means a genuinely unwritable location
                # (read-only checkout, full disk): run without persistence
                # rather than failing the measurement.
                if attempt == 1:
                    self._disabled = True

    def _write_atomic(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> None:
        """Remove this fingerprint's entries (other versions are kept)."""
        shutil.rmtree(self.directory, ignore_errors=True)

    def stats_line(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, {self.stores} stored, "
            f"{self.corrupt_evictions} corrupt evicted"
        )
