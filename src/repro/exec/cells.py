"""Work-unit descriptors for the experiment scheduler.

A :class:`RunCell` names one measurement the harness may ever need — a
timed repetition, a PC-sampled profiling run, or a leftover-check probe —
as a frozen, hashable, picklable value.  That single representation is
what lets the scheduler deduplicate cells across figure drivers (Fig.
7/8/9 share the same with/without-checks runs), ship them to pool workers,
and key the persistent on-disk cache.

:func:`compute_cell` is the one entry point that turns a cell into its
result.  It is a plain module-level function so ``ProcessPoolExecutor``
can pickle a reference to it, and it is deterministic: every random draw
inside comes from :func:`repro.suite.runner.stable_seed`, so the same cell
produces the same result in any process.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple, Union

from ..engine import Engine, EngineConfig
from ..jit.checks import CheckKind
from ..profiling.attribution import AttributionResult, attribute_samples
from ..profiling.sampler import attach_sampler
from ..suite.runner import (
    BenchmarkRunner,
    NoiseModel,
    RunResult,
    determine_removable_kinds,
    stable_seed,
)
from ..suite.spec import BenchmarkSpec, get_benchmark

#: default sampling period (simulated cycles); odd to avoid phase lock
SAMPLE_PERIOD = 211.0

#: default probe length for leftover-check detection (matches the historic
#: ``ResultsCache.removable_kinds`` default; part of the cell key)
REMOVABLE_ITERATIONS = 40

#: cell kinds
TIMED = "timed"
PROFILED = "profiled"
REMOVABLE = "removable"
CORPUS = "corpus"


@dataclass(frozen=True)
class RunCell:
    """One schedulable measurement of one benchmark configuration."""

    kind: str  # TIMED / PROFILED / REMOVABLE / CORPUS
    benchmark: str
    target: str
    iterations: int
    rep: int = 0
    #: sorted CheckKind names withheld from codegen (TIMED only)
    removed: Tuple[str, ...] = ()
    emit_check_branches: bool = True
    noise: bool = True
    #: kind-specific discriminator; CORPUS cells carry the entry's source
    #: digest here so a regenerated corpus entry invalidates its cache row
    extra: str = ""

    def key(self) -> str:
        """Stable text form of the cell (the cache key before hashing)."""
        return "|".join(
            (
                "cell-v2",
                self.kind,
                self.benchmark,
                self.target,
                str(self.iterations),
                str(self.rep),
                ",".join(self.removed),
                "1" if self.emit_check_branches else "0",
                "1" if self.noise else "0",
                self.extra,
            )
        )

    def token(self) -> str:
        """Content-address of the cell for the on-disk cache."""
        return hashlib.sha256(self.key().encode("utf-8")).hexdigest()

    def describe(self) -> str:
        extras = []
        if self.removed:
            extras.append(f"-{len(self.removed)} checks")
        if not self.emit_check_branches:
            extras.append("no-branches")
        if not self.noise:
            extras.append("quiet")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return (
            f"{self.kind} {self.benchmark} [{self.target}]"
            f" x{self.iterations} rep{self.rep}{suffix}"
        )


SpecOrName = Union[BenchmarkSpec, str]


def _name_of(benchmark: SpecOrName) -> str:
    return benchmark.name if isinstance(benchmark, BenchmarkSpec) else benchmark


def _removed_names(removed: Iterable[object]) -> Tuple[str, ...]:
    return tuple(sorted(getattr(kind, "name", kind) for kind in removed))  # type: ignore[arg-type]


def timed_cell(
    benchmark: SpecOrName,
    target: str,
    iterations: int,
    rep: int = 0,
    removed: FrozenSet[CheckKind] = frozenset(),
    emit_check_branches: bool = True,
    noise: bool = True,
) -> RunCell:
    return RunCell(
        TIMED,
        _name_of(benchmark),
        target,
        iterations,
        rep,
        _removed_names(removed),
        emit_check_branches,
        noise,
    )


def profiled_cell(
    benchmark: SpecOrName, target: str, iterations: int, rep: int = 0
) -> RunCell:
    return RunCell(PROFILED, _name_of(benchmark), target, iterations, rep)


def removable_cell(
    benchmark: SpecOrName, target: str, iterations: int = REMOVABLE_ITERATIONS
) -> RunCell:
    # Fields irrelevant to the probe are normalized so equivalent requests
    # collapse to one cell; `iterations` is deliberately part of the key
    # (two callers probing at different lengths must not share results).
    return RunCell(REMOVABLE, _name_of(benchmark), target, iterations, 0, (), True, False)


def corpus_cell(name: str, target: str, iterations: int = 14) -> RunCell:
    """Cell running a graduated fuzz-corpus program through the tier matrix.

    ``extra`` carries the entry's source digest: regenerating the corpus
    (new generator version, re-fuzzed entry under the same name) changes
    the digest and therefore the cache key, so stale matrix verdicts are
    never served for a different program body.
    """
    from ..fuzz.corpus import corpus_dir, load_entry

    entry = load_entry(corpus_dir() / f"{name}.json")
    return RunCell(
        CORPUS, name, target, iterations, 0, (), True, False,
        extra=entry.source_sha256[:16],
    )


@dataclass
class ProfiledRun:
    """A PC-sampled run plus its attribution and static check statistics."""

    run: RunResult
    window: AttributionResult
    truth: AttributionResult
    #: static check counts over this benchmark's optimized code
    static_checks: int = 0
    static_body: int = 0
    checks_by_kind: Dict[object, int] = field(default_factory=dict)

    @property
    def static_density(self) -> float:
        """Checks emitted per 100 JIT instructions (Fig. 1 metric)."""
        if not self.static_body:
            return 0.0
        return 100.0 * self.static_checks / self.static_body


def _chaos_hook(cell: RunCell) -> None:
    """Test-only failure injection, driven by ``REPRO_CHAOS_EXEC``.

    The variable holds ``action:benchmark`` (e.g. ``crash:FIB``); when a
    matching cell is computed the worker crashes (``os._exit``), hangs, or
    raises — exercising the scheduler's retry/timeout/quarantine paths with
    real process death rather than mocks.  ``crash`` and ``hang`` are
    suppressed in the scheduler's own process (``REPRO_CHAOS_MAIN_PID``) so
    serial fallback passes survive to report the failure.
    """
    spec_var = os.environ.get("REPRO_CHAOS_EXEC")
    if not spec_var:
        return
    try:
        action, _, benchmark = spec_var.partition(":")
    except ValueError:
        return
    if benchmark != cell.benchmark:
        return
    in_main = os.environ.get("REPRO_CHAOS_MAIN_PID") == str(os.getpid())
    if action == "crash" and not in_main:
        os._exit(17)
    elif action == "hang" and not in_main:
        time.sleep(3600)
    elif action == "fail":
        raise RuntimeError(f"chaos: injected failure for {cell.describe()}")


def compute_cell(cell: RunCell) -> object:
    """Execute one cell; the sole entry point for scheduler workers."""
    from ..supervise.bundles import clear_run_context, set_run_context

    _chaos_hook(cell)
    # Identify the cell in any crash bundle captured below this frame, so
    # a worker that dies deep in the engine still names its work unit.
    set_run_context(
        cell_kind=cell.kind,
        cell_token=cell.token(),
        benchmark=cell.benchmark,
        target=cell.target,
        iterations=cell.iterations,
        rep=cell.rep,
    )
    try:
        spec = _resolve_spec(cell.benchmark)
        if cell.kind == CORPUS:
            return _corpus_matrix(spec, cell)
        if cell.kind == TIMED:
            config = EngineConfig(
                target=cell.target,
                removed_checks=frozenset(CheckKind[name] for name in cell.removed),
                emit_check_branches=cell.emit_check_branches,
            )
            runner = BenchmarkRunner(spec, config, NoiseModel(enabled=cell.noise))
            return runner.run(iterations=cell.iterations, rep=cell.rep)
        if cell.kind == PROFILED:
            return _profiled_run(spec, cell.target, cell.iterations, cell.rep)
        if cell.kind == REMOVABLE:
            return determine_removable_kinds(
                spec, EngineConfig(target=cell.target), iterations=cell.iterations
            )
        raise ValueError(f"unknown cell kind {cell.kind!r}")
    finally:
        clear_run_context(
            "cell_kind", "cell_token", "benchmark", "target", "iterations",
            "rep",
        )


def _resolve_spec(name: str) -> BenchmarkSpec:
    """Suite registry first, then graduated fuzz-corpus programs.

    Lazy corpus import keeps the hot suite path free of the fuzz package
    and avoids an import cycle (fuzz's oracle imports the resilience
    oracle, which imports the suite runner this module also uses).
    """
    try:
        return get_benchmark(name)
    except KeyError:
        from ..fuzz.corpus import corpus_benchmark

        spec = corpus_benchmark(name)
        if spec is None:
            raise KeyError(f"unknown benchmark {name!r} (suite and corpus)")
        return spec


def _corpus_matrix(spec: BenchmarkSpec, cell: RunCell) -> object:
    """Run one corpus program through the full differential tier matrix."""
    from ..fuzz.oracle import fuzz_base_config
    from ..resilience.faults import FaultPlan
    from ..resilience.oracle import matrix_run

    plan = FaultPlan(benchmark=spec.name, seed=cell.rep, faults=())
    return matrix_run(
        spec,
        target=cell.target,
        plan=plan,
        iterations=cell.iterations,
        base_config=fuzz_base_config(),
        capture=False,
    )


def _profiled_run(
    spec: BenchmarkSpec, target: str, iterations: int, rep: int
) -> ProfiledRun:
    config = EngineConfig(target=target)
    noise = NoiseModel(enabled=True)
    rng = random.Random((stable_seed(spec.name) & 0xFFFFFFF) * 7919 + rep)
    config = noise.perturb_config(config, rng)
    engine = Engine(config)
    engine.load(spec.source)
    engine.call_global("setup")
    # Warm up so steady-state code dominates the samples (the paper
    # samples whole runs; warmup samples land outside JIT code either
    # way and only dilute, which we also model).
    warmup = max(4, iterations // 5)
    for i in range(warmup):
        engine.current_iteration = i
        engine.call_global("run")
    sampler = attach_sampler(engine, SAMPLE_PERIOD)
    cycles: List[float] = []
    for i in range(iterations):
        engine.current_iteration = warmup + i
        before = engine.total_cycles
        engine.call_global("run")
        cycles.append(engine.total_cycles - before)
    window = attribute_samples(sampler, "window")
    truth = attribute_samples(sampler, "truth")
    static_checks = 0
    static_body = 0
    checks_by_kind: Dict[object, int] = {}
    seen_codes = set()
    for shared in engine.functions:
        code = shared.code
        if code is None or id(code) in seen_codes:
            continue
        seen_codes.add(id(code))
        static_checks += len(code.deopt_points)
        static_body += code.body_instruction_count()
        for point in code.deopt_points.values():
            checks_by_kind[point.kind] = checks_by_kind.get(point.kind, 0) + 1
    run = RunResult(
        name=spec.name,
        target=target,
        iterations=iterations,
        cycles=cycles,
        result=None,
        valid=True,
        deopts=[],
        code_stats=_sum_code_stats(engine),
        hw_stats=engine.executor.stats.snapshot(),
        buckets=dict(engine.buckets),
        total_cycles=engine.total_cycles,
    )
    return ProfiledRun(
        run=run,
        window=window,
        truth=truth,
        static_checks=static_checks,
        static_body=static_body,
        checks_by_kind=checks_by_kind,
    )


def _sum_code_stats(engine: Engine) -> Dict[str, int]:
    totals = {"body_instructions": 0, "check_instructions": 0, "deopt_branches": 0}
    seen = set()
    for shared in engine.functions:
        code = shared.code
        if code is not None and id(code) not in seen:
            seen.add(id(code))
            stats = code.check_instruction_stats()
            for k in totals:
                totals[k] += stats[k]
    return totals
