"""Engine-version fingerprint for the persistent result cache.

A cached cell result is only valid for the engine that produced it, so the
on-disk cache namespaces every entry under a fingerprint of:

* the contents of every ``src/repro/**/*.py`` file (any change to the
  simulator, the compiler, the suite programs or the drivers invalidates),
* a hand-bumped :data:`CACHE_SCHEMA` for changes to the *cache format*
  itself (new RunCell fields, different pickled payloads), and
* the Python major.minor version (pickles and float behaviour are stable
  within a minor version; being conservative here is cheap).

Stale entries are never read or deleted — they simply live in a directory
no current run looks at, and can be pruned with ``rm -rf results/.cache``.
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path
from typing import Optional

#: bump when the RunCell key layout or pickled payloads change shape
CACHE_SCHEMA = 2  # 2: checksummed entry format (magic + sha256 + payload)

_cached: Optional[str] = None


def package_root() -> Path:
    """The ``src/repro`` package directory."""
    return Path(__file__).resolve().parents[1]


def engine_fingerprint() -> str:
    """Hex digest naming the current engine version (memoized per process)."""
    global _cached
    if _cached is None:
        digest = hashlib.sha256()
        digest.update(
            f"schema={CACHE_SCHEMA};py={sys.version_info[0]}.{sys.version_info[1]}".encode()
        )
        root = package_root()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _cached = digest.hexdigest()
    return _cached


def reset_fingerprint_cache() -> None:
    """Drop the memoized digest (tests that fake engine versions)."""
    global _cached
    _cached = None
