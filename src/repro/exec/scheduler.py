"""Deduplicating cell scheduler with process-pool fan-out.

:func:`execute_cells` resolves a batch of :class:`~repro.exec.cells.RunCell`
descriptors through three layers, cheapest first:

1. an in-process memo (the caller's, so figure drivers sharing one
   :class:`~repro.experiments.common.ResultsCache` never recompute),
2. the persistent :class:`~repro.exec.cache.DiskCache`,
3. computation — serially, or fanned out on a ``ProcessPoolExecutor`` when
   more than one cell misses and ``jobs > 1``.

The experiment grid is embarrassingly parallel: every cell builds its own
engine and draws all randomness from a per-cell stable seed, so worker
placement cannot change results (asserted by the determinism tests).
Workers never touch the disk cache; the parent stores results as they
arrive, which keeps the cache layer free of cross-process races beyond the
atomic-rename writes it already does.

Process-wide defaults come from :func:`configure` (the CLIs' ``--jobs`` /
``--no-cache``) or the ``REPRO_JOBS`` / ``REPRO_CACHE`` environment
variables.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .cache import MISS, DiskCache
from .cells import RunCell, compute_cell


@dataclass
class SchedulerConfig:
    jobs: int = 1
    cache: bool = True


def _initial_config() -> SchedulerConfig:
    try:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    except ValueError:
        jobs = 1
    cache = os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "no", "off")
    return SchedulerConfig(jobs=max(1, jobs), cache=cache)


_CONFIG = _initial_config()
_DISK: Optional[DiskCache] = None
_UNSET = object()


def configure(jobs: Optional[int] = None, cache: Optional[bool] = None) -> SchedulerConfig:
    """Set process-wide scheduler defaults; ``None`` leaves a knob unchanged."""
    if jobs is not None:
        _CONFIG.jobs = max(1, int(jobs))
    if cache is not None:
        _CONFIG.cache = bool(cache)
    return _CONFIG


def current_config() -> SchedulerConfig:
    return _CONFIG


def shared_disk_cache() -> DiskCache:
    """The process-wide cache instance (created lazily)."""
    global _DISK
    if _DISK is None:
        _DISK = DiskCache()
    return _DISK


def execute_cells(
    cells: Iterable[RunCell],
    jobs: Optional[int] = None,
    memo: Optional[Dict[RunCell, object]] = None,
    disk: object = _UNSET,
) -> Dict[RunCell, object]:
    """Resolve every cell; returns ``{cell: result}`` for the request.

    ``memo`` is mutated in place when given (the caller's long-lived store);
    ``disk`` may be an explicit :class:`DiskCache` or ``None`` to bypass
    persistence regardless of the process-wide default.
    """
    unique = list(dict.fromkeys(cells))
    if jobs is None:
        jobs = _CONFIG.jobs
    if disk is _UNSET:
        disk = shared_disk_cache() if _CONFIG.cache else None
    store: Dict[RunCell, object] = memo if memo is not None else {}

    missing = [cell for cell in unique if cell not in store]
    to_compute: List[RunCell] = []
    if disk is not None:
        for cell in missing:
            value = disk.get(cell.token())
            if value is MISS:
                to_compute.append(cell)
            else:
                store[cell] = value
    else:
        to_compute = missing

    if to_compute:
        if jobs > 1 and len(to_compute) > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(to_compute))) as pool:
                values = list(pool.map(compute_cell, to_compute, chunksize=1))
        else:
            values = [compute_cell(cell) for cell in to_compute]
        for cell, value in zip(to_compute, values):
            store[cell] = value
            if disk is not None:
                disk.put(cell.token(), value)

    return {cell: store[cell] for cell in unique}
