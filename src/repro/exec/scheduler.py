"""Deduplicating cell scheduler with process-pool fan-out and hardening.

:func:`execute_cells` resolves a batch of :class:`~repro.exec.cells.RunCell`
descriptors through three layers, cheapest first:

1. an in-process memo (the caller's, so figure drivers sharing one
   :class:`~repro.experiments.common.ResultsCache` never recompute),
2. the persistent :class:`~repro.exec.cache.DiskCache`,
3. computation — serially, or fanned out on a ``ProcessPoolExecutor`` when
   more than one cell misses and ``jobs > 1``.

The experiment grid is embarrassingly parallel: every cell builds its own
engine and draws all randomness from a per-cell stable seed, so worker
placement cannot change results (asserted by the determinism tests).
Workers never touch the disk cache; the parent stores results as they
arrive, which keeps the cache layer free of cross-process races beyond the
atomic-rename writes it already does.

Long grids die to one bad cell without hardening, so computation runs
under a :class:`RetryPolicy`:

* **crashed workers** (``BrokenProcessPool``) and **hung workers** (no
  completion within ``timeout`` seconds) poison a whole pool pass, which
  cannot attribute blame — the unfinished cells are re-run *in isolation*
  (one single-worker pool each) so the guilty cell convicts itself while
  innocent neighbours complete on their first solo attempt;
* failing cells are retried with capped exponential backoff, then
  **quarantined**: later batches in the same process skip them instead of
  re-dying (:func:`quarantined_cells` lists them, :func:`clear_quarantine`
  resets);
* with ``keep_going`` the failure is recorded as a :class:`CellFailure`
  result so figure drivers can emit partial output with missing cells
  marked; without it the original exception (or a :class:`GridError` when
  the worker died and there is no exception object) propagates after the
  retries are exhausted.

Wall-clock timeouts need process isolation to be enforceable, so setting
``timeout`` routes computation through a pool even at ``jobs=1``; with no
timeout and one job the serial fast path runs cells in-process exactly as
before.  Failures are never written to the disk cache.

Process-wide defaults come from :func:`configure` (the CLIs' ``--jobs`` /
``--no-cache`` / ``--keep-going`` / ``--timeout`` / ``--retries``) or the
``REPRO_JOBS`` / ``REPRO_CACHE`` / ``REPRO_KEEP_GOING`` /
``REPRO_CELL_TIMEOUT`` / ``REPRO_RETRIES`` environment variables.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .cache import MISS, DiskCache
from .cells import RunCell, compute_cell
from .wal import SweepWAL


class GridError(RuntimeError):
    """A cell failed in a way that leaves no exception to re-raise
    (worker process died, or a quarantined cell was requested again)."""


@dataclass
class RetryPolicy:
    """How :func:`execute_cells` treats failing, crashing, or hung cells."""

    #: per-cell wall-clock budget in seconds; ``None`` disables hang
    #: detection (and the forced pool routing that enforces it)
    timeout: Optional[float] = None
    #: how many times a failing cell is re-run before giving up
    retries: int = 1
    #: base of the capped exponential backoff between attempts
    backoff: float = 0.25
    backoff_cap: float = 4.0
    #: record failures as :class:`CellFailure` results instead of raising
    keep_going: bool = False

    def sleep_for(self, attempt: int) -> float:
        return min(self.backoff * (2 ** max(0, attempt - 1)), self.backoff_cap)


@dataclass
class CellFailure:
    """Placeholder result for a cell that exhausted its retries."""

    cell: RunCell
    error: str
    attempts: int
    quarantined: bool = True

    def describe(self) -> str:
        return f"{self.cell.describe()}: {self.error} (after {self.attempts} attempt(s))"


#: cells that exhausted their retries this process, with their failures
_QUARANTINE: Dict[RunCell, CellFailure] = {}


def quarantined_cells() -> List[RunCell]:
    """Cells this process has given up on, in first-failure order."""
    return list(_QUARANTINE)


def quarantine_report() -> List[str]:
    return [failure.describe() for failure in _QUARANTINE.values()]


def clear_quarantine() -> None:
    _QUARANTINE.clear()


@dataclass
class SchedulerConfig:
    jobs: int = 1
    cache: bool = True
    keep_going: bool = False
    timeout: Optional[float] = None
    retries: int = 1


def _initial_config() -> SchedulerConfig:
    try:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    except ValueError:
        jobs = 1
    cache = os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "no", "off")
    keep_going = os.environ.get("REPRO_KEEP_GOING", "0").lower() in ("1", "yes", "on")
    try:
        timeout: Optional[float] = float(os.environ["REPRO_CELL_TIMEOUT"])
    except (KeyError, ValueError):
        timeout = None
    try:
        retries = int(os.environ.get("REPRO_RETRIES", "1"))
    except ValueError:
        retries = 1
    return SchedulerConfig(
        jobs=max(1, jobs),
        cache=cache,
        keep_going=keep_going,
        timeout=timeout if timeout and timeout > 0 else None,
        retries=max(0, retries),
    )


_CONFIG = _initial_config()
_DISK: Optional[DiskCache] = None
_UNSET = object()

#: active sweep journal (repro.exec.wal); when set, every completed cell
#: is recorded after its disk-cache store so a killed sweep can resume
_WAL: Optional[SweepWAL] = None


def set_active_wal(wal: Optional[SweepWAL]) -> Optional[SweepWAL]:
    """Install (or clear, with ``None``) the process-wide sweep journal."""
    global _WAL
    previous = _WAL
    _WAL = wal
    return previous


def active_wal() -> Optional[SweepWAL]:
    return _WAL


def configure(
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    keep_going: Optional[bool] = None,
    timeout: Optional[float] = _UNSET,  # type: ignore[assignment]
    retries: Optional[int] = None,
) -> SchedulerConfig:
    """Set process-wide scheduler defaults; ``None`` leaves a knob unchanged
    (``timeout`` uses a sentinel so it can be explicitly reset to ``None``)."""
    if jobs is not None:
        _CONFIG.jobs = max(1, int(jobs))
    if cache is not None:
        _CONFIG.cache = bool(cache)
    if keep_going is not None:
        _CONFIG.keep_going = bool(keep_going)
    if timeout is not _UNSET:
        _CONFIG.timeout = float(timeout) if timeout else None  # type: ignore[arg-type]
    if retries is not None:
        _CONFIG.retries = max(0, int(retries))
    return _CONFIG


def current_config() -> SchedulerConfig:
    return _CONFIG


def current_policy() -> RetryPolicy:
    return RetryPolicy(
        timeout=_CONFIG.timeout,
        retries=_CONFIG.retries,
        keep_going=_CONFIG.keep_going,
    )


def shared_disk_cache() -> DiskCache:
    """The process-wide cache instance (created lazily)."""
    global _DISK
    if _DISK is None:
        _DISK = DiskCache()
    return _DISK


def execute_cells(
    cells: Iterable[RunCell],
    jobs: Optional[int] = None,
    memo: Optional[Dict[RunCell, object]] = None,
    disk: object = _UNSET,
    policy: Optional[RetryPolicy] = None,
) -> Dict[RunCell, object]:
    """Resolve every cell; returns ``{cell: result}`` for the request.

    ``memo`` is mutated in place when given (the caller's long-lived store);
    ``disk`` may be an explicit :class:`DiskCache` or ``None`` to bypass
    persistence regardless of the process-wide default.  Under a
    ``keep_going`` policy, values may be :class:`CellFailure` placeholders.
    """
    unique = list(dict.fromkeys(cells))
    if jobs is None:
        jobs = _CONFIG.jobs
    if disk is _UNSET:
        disk = shared_disk_cache() if _CONFIG.cache else None
    if policy is None:
        policy = current_policy()
    store: Dict[RunCell, object] = memo if memo is not None else {}

    # Lets the chaos hook distinguish the scheduler's own process (where a
    # crash/hang injection must not fire) from pool workers.
    os.environ["REPRO_CHAOS_MAIN_PID"] = str(os.getpid())

    missing = [cell for cell in unique if cell not in store]
    to_compute: List[RunCell] = []
    for cell in missing:
        known = _QUARANTINE.get(cell)
        if known is not None:
            if not policy.keep_going:
                raise GridError(f"cell is quarantined: {known.describe()}")
            store[cell] = known
        elif disk is not None:
            value = disk.get(cell.token())
            if value is MISS:
                to_compute.append(cell)
            else:
                store[cell] = value
        else:
            to_compute.append(cell)

    if to_compute:
        attempts: Dict[RunCell, int] = {}

        def _store_ok(cell: RunCell, value: object) -> None:
            # Stream every result to the persistent layers the moment it
            # arrives (PR 3 stored the whole batch after the fact, so a
            # SIGKILL/OOM mid-sweep lost every completed-but-unstored
            # cell).  The WAL append follows the cache store so a resume
            # never finds a journaled token without its payload.
            store[cell] = value
            if disk is not None:
                disk.put(cell.token(), value)
            if _WAL is not None:
                _WAL.append(cell.token())

        use_pool = (jobs > 1 and len(to_compute) > 1) or policy.timeout is not None
        try:
            if use_pool:
                outcomes = _pool_compute(
                    to_compute, jobs, policy, attempts, _store_ok
                )
            else:
                outcomes = {}
                for cell in to_compute:
                    outcome = _serial_compute(cell, policy, attempts)
                    if outcome[0] == "ok":
                        _store_ok(cell, outcome[1])
                    outcomes[cell] = outcome
        except KeyboardInterrupt:
            # ^C mid-grid: results already streamed above are durable
            # (atomic cache writes + fsynced WAL); make sure the journal
            # hits disk, then let the CLI exit with 130.
            if _WAL is not None:
                _WAL.flush()
            raise
        for cell in to_compute:
            tag, value = outcomes[cell]
            if tag == "ok":
                continue  # streamed to store/disk/WAL as it completed
            failure = CellFailure(
                cell=cell,
                error=value if isinstance(value, str) else f"{type(value).__name__}: {value}",
                attempts=attempts.get(cell, 0),
            )
            _QUARANTINE[cell] = failure
            _capture_failure_bundle(failure, value)
            if not policy.keep_going:
                if isinstance(value, BaseException):
                    raise value
                raise GridError(failure.describe())
            store[cell] = failure

    return {cell: store[cell] for cell in unique}


def _capture_failure_bundle(failure: CellFailure, value: object) -> None:
    """Crash-forensics record for a quarantined cell (worker crash, hang,
    or exhausted retries) — see :mod:`repro.supervise.bundles`."""
    import traceback as traceback_mod

    from ..supervise.bundles import capture_bundle

    cell = failure.cell
    trace: Optional[str] = None
    if isinstance(value, BaseException):
        trace = "".join(
            traceback_mod.format_exception(type(value), value, value.__traceback__)
        )
    capture_bundle("cell-failure", {
        "cell": {
            "kind": cell.kind,
            "benchmark": cell.benchmark,
            "target": cell.target,
            "iterations": cell.iterations,
            "rep": cell.rep,
            "removed": list(cell.removed),
            "emit_check_branches": cell.emit_check_branches,
            "noise": cell.noise,
        },
        "token": cell.token(),
        "error": failure.error,
        "attempts": failure.attempts,
        "traceback": trace,
    })


# ----------------------------------------------------------------------
# computation strategies
# ----------------------------------------------------------------------

Outcome = Tuple[str, object]  # ("ok", value) | ("err", exception-or-str)


def _serial_compute(
    cell: RunCell, policy: RetryPolicy, attempts: Dict[RunCell, int]
) -> Outcome:
    """In-process computation with retries (no crash/hang protection)."""
    while True:
        try:
            return ("ok", compute_cell(cell))
        except Exception as failure:
            attempts[cell] = attempts.get(cell, 0) + 1
            if attempts[cell] > policy.retries:
                return ("err", failure)
            time.sleep(policy.sleep_for(attempts[cell]))


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            process.terminate()
        except OSError:
            pass


def _run_pool_round(
    cells: List[RunCell], jobs: int, policy: RetryPolicy, on_ok=None
) -> Tuple[Dict[RunCell, Outcome], List[RunCell], bool]:
    """One pool pass over ``cells``.

    Returns ``(done, unfinished, broken)``.  ``broken`` means the pass was
    poisoned by a dead or hung worker; ``unfinished`` holds the cells whose
    futures never produced a result (blame is attributed by the caller).
    ``policy.timeout`` is applied as a *no-progress* watchdog: it only
    fires when no cell completes for that long, so a slow but advancing
    grid never trips it, while a hung worker is caught — at the latest —
    once only hung cells remain pending.

    ``on_ok(cell, value)`` is invoked the moment a future succeeds, so
    results persist even if the parent is killed later in the pass.  A
    ``KeyboardInterrupt`` cancels the pending futures, terminates the
    workers without waiting, and propagates.
    """
    done: Dict[RunCell, Outcome] = {}
    poisoned: List[RunCell] = []  # futures killed by the broken pool
    broken = False
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(cells)))
    futures = {pool.submit(compute_cell, cell): cell for cell in cells}
    pending = set(futures)
    try:
        while pending:
            finished, pending = wait(
                pending, timeout=policy.timeout, return_when=FIRST_COMPLETED
            )
            if not finished:
                broken = True  # nothing completed in `timeout` seconds
                break
            for future in finished:
                cell = futures[future]
                try:
                    value = future.result()
                except BrokenProcessPool:
                    broken = True
                    poisoned.append(cell)
                except Exception as failure:
                    done[cell] = ("err", failure)
                else:
                    done[cell] = ("ok", value)
                    if on_ok is not None:
                        on_ok(cell, value)
            if broken:
                break
    except KeyboardInterrupt:
        # ^C: don't wait for in-flight cells; the finally below kills the
        # workers and cancels everything still queued.
        broken = True
        raise
    finally:
        if broken:
            _terminate_workers(pool)
        pool.shutdown(wait=not broken, cancel_futures=True)
    unfinished = poisoned + [futures[future] for future in pending]
    return done, unfinished, broken


def _solo_compute(
    cell: RunCell, policy: RetryPolicy, attempts: Dict[RunCell, int],
    on_ok=None,
) -> Outcome:
    """Re-run one cell alone in a fresh single-worker pool until it
    succeeds or exhausts its retries.  Used after a broken pool pass:
    isolation attributes the crash/hang to the guilty cell."""
    while True:
        done, _unfinished, broken = _run_pool_round([cell], 1, policy, on_ok)
        if cell in done:
            tag, value = done[cell]
            if tag == "ok":
                return ("ok", value)
            failure: object = value
        elif broken:
            failure = f"worker crashed or timed out computing {cell.describe()}"
        else:  # pragma: no cover - wait() without timeout cannot leave work
            failure = f"cell never completed: {cell.describe()}"
        attempts[cell] = attempts.get(cell, 0) + 1
        if attempts[cell] > policy.retries:
            return ("err", failure)
        time.sleep(policy.sleep_for(attempts[cell]))


def _pool_compute(
    to_compute: List[RunCell],
    jobs: int,
    policy: RetryPolicy,
    attempts: Dict[RunCell, int],
    on_ok=None,
) -> Dict[RunCell, Outcome]:
    outcomes: Dict[RunCell, Outcome] = {}
    work = list(to_compute)
    while work:
        done, unfinished, broken = _run_pool_round(work, jobs, policy, on_ok)
        work = []
        for cell, (tag, value) in done.items():
            if tag == "ok":
                outcomes[cell] = ("ok", value)
                continue
            attempts[cell] = attempts.get(cell, 0) + 1
            if attempts[cell] > policy.retries:
                outcomes[cell] = ("err", value)
            else:
                work.append(cell)
        if broken:
            # A dead/hung worker poisons the whole pass and blame cannot
            # be attributed here; isolate each survivor so the guilty
            # cell convicts itself and innocents complete immediately.
            for cell in unfinished:
                outcomes[cell] = _solo_compute(cell, policy, attempts, on_ok)
        else:
            work.extend(unfinished)
        if work:
            time.sleep(policy.sleep_for(max(attempts.get(cell, 1) for cell in work)))
    return outcomes
