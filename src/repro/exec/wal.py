"""Append-only write-ahead log of completed sweep cells.

The scheduler persists each cell's result to the disk cache *as it
completes* (see :func:`repro.exec.scheduler.execute_cells`); the WAL is
the sweep-level progress journal next to it: one JSON line per
completed cell token, flushed and fsynced on append, so a ``kill -9``
or OOM mid-sweep loses at most the record being written.  A restarted
run with ``--resume`` reads the journal to report progress and then
skips finished cells through the (already populated) disk cache,
reproducing byte-identical figure output.

Layout: ``results/.wal/<sweep-id>.jsonl`` (override the directory with
``REPRO_WAL_DIR``).  The sweep id hashes the experiment names, scale
and engine fingerprint, so the *same command against the same engine
version* finds its journal and anything else gets a fresh one.  The
reader tolerates a torn final line (power loss mid-append) by ignoring
any line that does not parse.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Optional, Set

from .fingerprint import engine_fingerprint


def default_wal_root() -> Path:
    env = os.environ.get("REPRO_WAL_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / ".wal"


def sweep_id(parts: Iterable[str]) -> str:
    """Stable id for one sweep command (names + scale + engine version)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    digest.update(engine_fingerprint().encode("ascii"))
    return digest.hexdigest()[:16]


class SweepWAL:
    """One sweep's append-only completion journal."""

    def __init__(self, sweep: str, root: Optional[Path] = None) -> None:
        self.sweep = sweep
        self.root = Path(root) if root is not None else default_wal_root()
        self.path = self.root / f"{sweep}.jsonl"
        self._handle = None
        self._seen: Set[str] = set()

    def completed(self) -> Set[str]:
        """Tokens recorded by earlier (possibly killed) runs of the sweep."""
        tokens: Set[str] = set()
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a killed writer
                    token = record.get("token") if isinstance(record, dict) else None
                    if isinstance(token, str):
                        tokens.add(token)
        except OSError:
            pass
        self._seen |= tokens
        return set(tokens)

    def append(self, token: str) -> None:
        """Record one completed cell; durable before returning.

        Append failures are swallowed: the WAL accelerates resume but
        must never fail a measurement (the disk cache still has the
        result).
        """
        if token in self._seen:
            return
        self._seen.add(token)
        try:
            if self._handle is None:
                self.root.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
                # A killed writer may have left a torn, unterminated final
                # line; start on a fresh line so this append stays parseable.
                if self._handle.tell() > 0:
                    with open(self.path, "rb") as tail:
                        tail.seek(-1, os.SEEK_END)
                        torn = tail.read(1) != b"\n"
                    if torn:
                        self._handle.write("\n")
            self._handle.write(json.dumps({"token": token}) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError:
            pass

    def flush(self) -> None:
        try:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        try:
            if self._handle is not None:
                self._handle.close()
        except OSError:
            pass
        self._handle = None

    def discard(self) -> None:
        """Delete the journal (a sweep that completed cleanly)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass
