"""Per-figure experiment drivers (one module per paper table/figure)."""

from . import (
    builtin_time,
    fig01_check_density,
    fig03_annotated_asm,
    fig04_breakdown,
    fig06_iteration_profile,
    fig07_speedups,
    fig08_categories,
    fig09_correlation,
    fig10_branch_cost,
    fig13_isa_speedup,
    fig14_distributions,
    leftover,
    typeflow_density,
)
from .common import CACHE, SCALES, ExperimentResult, ResultsCache, Scale

#: registry used by the CLI (`python -m repro.experiments <name>`)
EXPERIMENTS = {
    "fig01": fig01_check_density.run,
    "fig03": fig03_annotated_asm.run,
    "fig04": fig04_breakdown.run,
    "fig06": fig06_iteration_profile.run,
    "fig07": fig07_speedups.run,
    "fig08": fig08_categories.run,
    "fig09": fig09_correlation.run,
    "fig10": fig10_branch_cost.run,
    "fig13": fig13_isa_speedup.run,
    "fig14": fig14_distributions.run,
    "leftover": leftover.run,
    "builtins": builtin_time.run,
    "typeflow": typeflow_density.run,
}

__all__ = [
    "CACHE",
    "EXPERIMENTS",
    "ExperimentResult",
    "ResultsCache",
    "SCALES",
    "Scale",
]
