"""CLI: regenerate paper figures.

    python -m repro.experiments fig01 [--scale smoke|default|full]
    python -m repro.experiments all --scale default --jobs 4
    python -m repro.experiments fig07 --scale smoke --no-cache

``--jobs`` fans the run grid across worker processes; ``--no-cache``
bypasses the persistent result cache under ``results/.cache/`` (see
``repro.exec``).  Both default to the ``REPRO_JOBS`` / ``REPRO_CACHE``
environment variables.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..exec import configure, current_config, shared_disk_cache
from . import EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--scale", default="default", choices=("smoke", "default", "full"))
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the run grid (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result cache",
    )
    args = parser.parse_args(argv)
    configure(jobs=args.jobs, cache=False if args.no_cache else None)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        output = EXPERIMENTS[name](scale=args.scale)
        if isinstance(output, dict):
            for part in output.values():
                print(part.to_text())
                print()
        else:
            print(output.to_text())
            print()
        # Timing and cache stats go to stderr so stdout is byte-identical
        # across serial, parallel, and cached runs (asserted in CI).
        print(f"[{name} done in {time.time() - started:.1f}s]", file=sys.stderr)
    if current_config().cache:
        print(f"[cache: {shared_disk_cache().stats_line()}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
