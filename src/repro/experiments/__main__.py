"""CLI: regenerate paper figures.

    python -m repro.experiments fig01 [--scale smoke|default|full]
    python -m repro.experiments all --scale default
"""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--scale", default="default", choices=("smoke", "default", "full"))
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        output = EXPERIMENTS[name](scale=args.scale)
        if isinstance(output, dict):
            for part in output.values():
                print(part.to_text())
                print()
        else:
            print(output.to_text())
        print(f"[{name} done in {time.time() - started:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
