"""CLI: regenerate paper figures.

    python -m repro.experiments fig01 [--scale smoke|default|full]
    python -m repro.experiments all --scale default --jobs 4
    python -m repro.experiments fig07 --scale smoke --no-cache
    python -m repro.experiments all --keep-going --timeout 120 --retries 2
    python -m repro.experiments fig07 --out results/figures --resume

``--jobs`` fans the run grid across worker processes; ``--no-cache``
bypasses the persistent result cache under ``results/.cache/`` (see
``repro.exec``).  Hardening knobs: ``--keep-going`` emits partial figures
with failing cells marked instead of aborting the grid, ``--timeout``
bounds each cell's wall clock (hung workers are killed and the cell
retried), ``--retries`` caps re-runs of crashed/failed cells.  All
default to the ``REPRO_JOBS`` / ``REPRO_CACHE`` / ``REPRO_KEEP_GOING`` /
``REPRO_CELL_TIMEOUT`` / ``REPRO_RETRIES`` environment variables.

Kill safety: with the cache enabled every sweep keeps an append-only
journal of completed cells (``results/.wal/``, see ``repro.exec.wal``),
and results stream to the cache as they finish — a run killed mid-sweep
(SIGKILL, OOM) restarted with ``--resume`` skips the finished cells and
produces byte-identical output.  ``--out DIR`` additionally writes each
figure to ``DIR/<name>-<scale>.txt`` atomically (temp file + rename).

Exit codes: 0 clean, 1 grid failure (a cell exhausted retries without
``--keep-going``), 2 usage error, 3 partial figures (``--keep-going``
with quarantined cells), 130 interrupted (SIGINT).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..exec import (
    GridError,
    SweepWAL,
    configure,
    current_config,
    quarantine_report,
    set_active_wal,
    shared_disk_cache,
    sweep_id,
)
from . import EXPERIMENTS

#: exit code for a --keep-going run that quarantined at least one cell
EXIT_PARTIAL = 3
#: exit code for a grid failure without --keep-going
EXIT_FAILURE = 1
#: exit code after SIGINT (128 + SIGINT), the shell convention
EXIT_INTERRUPTED = 130


def _write_figure_atomic(out_dir: Path, name: str, scale: str, text: str) -> None:
    """Atomic figure write: a kill mid-write can never leave a torn file
    for the byte-identity comparison to trip over."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}-{scale}.txt"
    tmp = out_dir / f".{name}-{scale}.txt.tmp"
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--scale", default="default", choices=("smoke", "default", "full"))
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the run grid (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--keep-going", action="store_true", default=None,
        help="emit partial figures when cells fail (exit code 3) instead of aborting",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds (hung workers are killed)",
    )
    parser.add_argument(
        "--retries", type=int, default=None,
        help="re-runs of a crashed/failed cell before quarantine (default: 1)",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print cache hit/miss/eviction counters even with --no-cache",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write each figure to DIR/<name>-<scale>.txt (atomic)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume a killed sweep: skip cells journaled as complete "
             "(requires the cache; output stays byte-identical)",
    )
    args = parser.parse_args(argv)
    configure(jobs=args.jobs, cache=False if args.no_cache else None,
              keep_going=args.keep_going, retries=args.retries)
    if args.timeout is not None:
        configure(timeout=args.timeout)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    wal = None
    if current_config().cache:
        wal = SweepWAL(sweep_id([*names, args.scale]))
        journaled = wal.completed()
        if args.resume and journaled:
            # stderr, like timings: resume must not perturb stdout's
            # byte-identity with an uninterrupted run.
            print(
                f"[resume: {len(journaled)} cells already journaled in "
                f"{wal.path.name}]",
                file=sys.stderr,
            )
        set_active_wal(wal)
    elif args.resume:
        print("--resume requires the persistent cache (drop --no-cache)",
              file=sys.stderr)
        return 2

    interrupted = False
    try:
        for name in names:
            started = time.time()
            output = EXPERIMENTS[name](scale=args.scale)
            parts = list(output.values()) if isinstance(output, dict) else [output]
            texts = [part.to_text() for part in parts]
            for text in texts:
                print(text)
                print()
            if args.out is not None:
                _write_figure_atomic(
                    Path(args.out), name, args.scale,
                    "".join(f"{text}\n\n" for text in texts),
                )
            # Timing and cache stats go to stderr so stdout is byte-identical
            # across serial, parallel, and cached runs (asserted in CI).
            print(f"[{name} done in {time.time() - started:.1f}s]", file=sys.stderr)
    except KeyboardInterrupt:
        # The scheduler already cancelled pending futures and flushed the
        # journal; completed cells are durable, so a --resume picks up here.
        interrupted = True
        print("interrupted: completed cells are journaled; re-run with "
              "--resume to continue", file=sys.stderr)
    except GridError as failure:
        print(f"grid failure: {failure}", file=sys.stderr)
        return EXIT_FAILURE
    finally:
        set_active_wal(None)
        if wal is not None:
            wal.close()
    if interrupted:
        return EXIT_INTERRUPTED

    if current_config().cache or args.cache_stats:
        print(f"[cache: {shared_disk_cache().stats_line()}]", file=sys.stderr)
    # Quarantine lines appear only on partial runs, so clean stdout stays
    # byte-identical across serial/parallel/cached runs.
    quarantined = quarantine_report()
    if quarantined:
        print(f"quarantined cells ({len(quarantined)}):")
        for line in quarantined:
            print(f"  {line}")
        return EXIT_PARTIAL
    if wal is not None:
        wal.discard()  # clean completion: the journal has served its purpose
    return 0


if __name__ == "__main__":
    sys.exit(main())
