"""CLI: regenerate paper figures.

    python -m repro.experiments fig01 [--scale smoke|default|full]
    python -m repro.experiments all --scale default --jobs 4
    python -m repro.experiments fig07 --scale smoke --no-cache
    python -m repro.experiments all --keep-going --timeout 120 --retries 2

``--jobs`` fans the run grid across worker processes; ``--no-cache``
bypasses the persistent result cache under ``results/.cache/`` (see
``repro.exec``).  Hardening knobs: ``--keep-going`` emits partial figures
with failing cells marked instead of aborting the grid, ``--timeout``
bounds each cell's wall clock (hung workers are killed and the cell
retried), ``--retries`` caps re-runs of crashed/failed cells.  All
default to the ``REPRO_JOBS`` / ``REPRO_CACHE`` / ``REPRO_KEEP_GOING`` /
``REPRO_CELL_TIMEOUT`` / ``REPRO_RETRIES`` environment variables.

Exit codes: 0 clean, 3 partial (``--keep-going`` with quarantined cells).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..exec import configure, current_config, quarantine_report, shared_disk_cache
from . import EXPERIMENTS

#: exit code for a --keep-going run that quarantined at least one cell
EXIT_PARTIAL = 3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    parser.add_argument("--scale", default="default", choices=("smoke", "default", "full"))
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the run grid (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--keep-going", action="store_true", default=None,
        help="emit partial figures when cells fail (exit code 3) instead of aborting",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds (hung workers are killed)",
    )
    parser.add_argument(
        "--retries", type=int, default=None,
        help="re-runs of a crashed/failed cell before quarantine (default: 1)",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print cache hit/miss/eviction counters even with --no-cache",
    )
    args = parser.parse_args(argv)
    configure(jobs=args.jobs, cache=False if args.no_cache else None,
              keep_going=args.keep_going, retries=args.retries)
    if args.timeout is not None:
        configure(timeout=args.timeout)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        output = EXPERIMENTS[name](scale=args.scale)
        if isinstance(output, dict):
            for part in output.values():
                print(part.to_text())
                print()
        else:
            print(output.to_text())
            print()
        # Timing and cache stats go to stderr so stdout is byte-identical
        # across serial, parallel, and cached runs (asserted in CI).
        print(f"[{name} done in {time.time() - started:.1f}s]", file=sys.stderr)
    if current_config().cache or args.cache_stats:
        print(f"[cache: {shared_disk_cache().stats_line()}]", file=sys.stderr)
    # Quarantine lines appear only on partial runs, so clean stdout stays
    # byte-identical across serial/parallel/cached runs.
    quarantined = quarantine_report()
    if quarantined:
        print(f"quarantined cells ({len(quarantined)}):")
        for line in quarantined:
            print(f"  {line}")
        return EXIT_PARTIAL
    return 0


if __name__ == "__main__":
    sys.exit(main())
