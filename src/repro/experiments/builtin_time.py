"""Section VII (conclusion) — time spent in builtin functions.

Paper: frequently used builtins (e.g. string equality) "take up to 8 % of
the execution time in string-intensive benchmarks" — one of the proposed
future HW/SW codesign targets.  We report each benchmark's cycle share in
the ``builtin`` bucket (string ops, regex, generic runtime helpers).
"""

from __future__ import annotations

from ..exec import timed_cell
from .common import CACHE, ExperimentResult, resolve_scale, suite_for_scale


def run(scale="default", target: str = "arm64") -> ExperimentResult:
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment="Builtin time (Sec. VII)",
        description=f"share of execution time in builtins ({target})",
        columns=["benchmark", "category", "builtin %", "interpreter %", "gc %"],
    )
    string_shares = []
    CACHE.prefetch(
        timed_cell(spec, target, scale.iterations, noise=False)
        for spec in suite_for_scale(scale)
    )
    for spec in suite_for_scale(scale):
        run_result = CACHE.timed_run(spec, target, scale.iterations, noise=False)
        total = run_result.total_cycles or 1.0
        builtin_pct = 100.0 * run_result.buckets.get("builtin", 0.0) / total
        result.rows.append(
            {
                "benchmark": spec.name,
                "category": spec.category,
                "builtin %": builtin_pct,
                "interpreter %": 100.0
                * run_result.buckets.get("interpreter", 0.0)
                / total,
                "gc %": 100.0 * run_result.buckets.get("gc", 0.0) / total,
            }
        )
        if spec.category == "String":
            string_shares.append(builtin_pct)
    if string_shares:
        result.notes.append(
            "string benchmarks: builtin share "
            f"{min(string_shares):.1f}-{max(string_shares):.1f} %"
            " (paper: builtins up to 8 % in string-intensive benchmarks;"
            " note our builtin bucket also covers the allocation helpers)"
        )
    return result
