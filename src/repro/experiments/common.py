"""Shared infrastructure for the per-figure experiment drivers.

Every driver exposes ``run(scale=..., targets=...) -> ExperimentResult``.
Scales trade fidelity for wall-clock time (the paper runs 1,000 iterations
x 30 repetitions on real silicon; a pure-Python simulator cannot):

* ``smoke``   — a few iterations, used by the test suite,
* ``default`` — tens of iterations / a few repetitions, for the benchmark
  harness (pytest-benchmark targets),
* ``full``    — hundreds of iterations, closest to the paper's protocol.

A process-wide :class:`ResultsCache` lets the figures share expensive runs
(Fig. 7/8/9 all consume the same with/without-checks measurements).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..exec import (
    REMOVABLE_ITERATIONS,
    SAMPLE_PERIOD,
    CellFailure,
    ProfiledRun,
    RunCell,
    execute_cells,
    profiled_cell,
    removable_cell,
    timed_cell,
)
from ..jit.checks import CheckKind
from ..profiling.attribution import AttributionResult
from ..suite.runner import RunResult
from ..suite.spec import BenchmarkSpec, all_benchmarks

__all__ = [
    "CACHE",
    "SAMPLE_PERIOD",
    "SCALES",
    "ExperimentResult",
    "ProfiledRun",
    "ResultsCache",
    "Scale",
    "relative_change",
    "resolve_scale",
    "suite_for_scale",
]


@dataclass(frozen=True)
class Scale:
    name: str
    iterations: int
    reps: int
    benchmark_limit: Optional[int] = None  # None = whole suite


SCALES: Dict[str, Scale] = {
    "smoke": Scale("smoke", iterations=10, reps=2, benchmark_limit=6),
    "default": Scale("default", iterations=40, reps=4),
    "full": Scale("full", iterations=200, reps=10),
}


def resolve_scale(scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    return SCALES[scale]


def suite_for_scale(scale: Scale) -> List[BenchmarkSpec]:
    benchmarks = all_benchmarks()
    if scale.benchmark_limit is not None:
        # A deterministic cross-category slice for smoke runs.
        benchmarks = sorted(benchmarks, key=lambda s: (s.category, s.name))
        step = max(1, len(benchmarks) // scale.benchmark_limit)
        benchmarks = benchmarks[::step][: scale.benchmark_limit]
    return benchmarks


class ResultsCache:
    """Memoizes benchmark runs across experiment drivers.

    Thin facade over :mod:`repro.exec`: every lookup becomes a
    :class:`~repro.exec.RunCell` resolved through the scheduler — this
    in-process memo first, then the persistent disk cache, then
    computation (on a worker pool when ``--jobs`` / ``configure(jobs=)``
    says so).  Drivers that know their whole grid up front call
    :meth:`prefetch` so the scheduler sees one deduplicated batch instead
    of a sequence of single cells.
    """

    def __init__(self) -> None:
        self._memo: Dict[RunCell, object] = {}

    def prefetch(self, cells: Iterable[RunCell]) -> None:
        """Resolve a batch of cells into the memo (one scheduler pass)."""
        execute_cells(cells, memo=self._memo)

    def clear(self) -> None:
        self._memo.clear()

    def _resolve(self, cell: RunCell) -> object:
        value = self._memo.get(cell)
        if value is None:
            value = execute_cells([cell], memo=self._memo)[cell]
        if isinstance(value, CellFailure):
            # keep_going mode: stand in a recognizably-invalid placeholder
            # so drivers emit partial figures with the cell marked instead
            # of dying mid-grid (the CLI lists quarantined cells at exit).
            return _failure_placeholder(cell, value)
        return value

    # -- plain timed runs ---------------------------------------------------

    def timed_run(
        self,
        spec: BenchmarkSpec,
        target: str,
        iterations: int,
        rep: int = 0,
        removed: FrozenSet[CheckKind] = frozenset(),
        emit_check_branches: bool = True,
        noise: bool = True,
    ) -> RunResult:
        cell = timed_cell(
            spec.name, target, iterations, rep, removed, emit_check_branches, noise
        )
        return self._resolve(cell)  # type: ignore[return-value]

    # -- profiled runs (PC sampling) ------------------------------------------

    def profiled_run(
        self, spec: BenchmarkSpec, target: str, iterations: int, rep: int = 0
    ) -> ProfiledRun:
        cell = profiled_cell(spec.name, target, iterations, rep)
        return self._resolve(cell)  # type: ignore[return-value]

    # -- leftover-check detection ----------------------------------------------

    def removable_kinds(
        self, spec: BenchmarkSpec, target: str, iterations: int = REMOVABLE_ITERATIONS
    ) -> Tuple[FrozenSet[CheckKind], FrozenSet[CheckKind]]:
        cell = removable_cell(spec.name, target, iterations)
        return self._resolve(cell)  # type: ignore[return-value]


def _failed_timed(cell: RunCell) -> RunResult:
    """An obviously-invalid RunResult for a failed/quarantined cell: NaN
    cycles poison any mean they enter, ``valid=False`` flags the row."""
    return RunResult(
        name=cell.benchmark,
        target=cell.target,
        iterations=cell.iterations,
        cycles=[math.nan] * max(1, cell.iterations),
        result=None,
        valid=False,
        deopts=[],
        code_stats={"body_instructions": 0, "check_instructions": 0, "deopt_branches": 0},
        hw_stats={
            "instructions": 0,
            "branches": 0,
            "taken_branches": 0,
            "mispredictions": 0,
            "loads": 0,
            "stores": 0,
            "deopt_branches": 0,
        },
        buckets={},
        total_cycles=math.nan,
    )


def _failure_placeholder(cell: RunCell, failure: CellFailure) -> object:
    from ..exec import PROFILED, REMOVABLE

    if cell.kind == PROFILED:
        return ProfiledRun(
            run=_failed_timed(cell),
            window=AttributionResult(0),
            truth=AttributionResult(0),
        )
    if cell.kind == REMOVABLE:
        # No removal claims can be made about a benchmark that never ran.
        return (frozenset(), frozenset())
    return _failed_timed(cell)


#: process-wide cache shared by all experiment drivers
CACHE = ResultsCache()


@dataclass
class ExperimentResult:
    """Rows + rendering for one regenerated table/figure."""

    experiment: str
    description: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        widths = {c: len(c) for c in self.columns}
        formatted_rows = []
        for row in self.rows:
            formatted = {}
            for c in self.columns:
                value = row.get(c, "")
                if isinstance(value, float):
                    text = f"{value:.3f}" if abs(value) < 1000 else f"{value:.0f}"
                else:
                    text = str(value)
                formatted[c] = text
                widths[c] = max(widths[c], len(text))
            formatted_rows.append(formatted)
        lines = [f"== {self.experiment}: {self.description} =="]
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for formatted in formatted_rows:
            lines.append("  ".join(formatted[c].ljust(widths[c]) for c in self.columns))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)


def relative_change(after: float, before: float) -> float:
    """(after - before) / before, guarded."""
    if before == 0:
        return 0.0
    return (after - before) / before
