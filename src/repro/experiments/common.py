"""Shared infrastructure for the per-figure experiment drivers.

Every driver exposes ``run(scale=..., targets=...) -> ExperimentResult``.
Scales trade fidelity for wall-clock time (the paper runs 1,000 iterations
x 30 repetitions on real silicon; a pure-Python simulator cannot):

* ``smoke``   — a few iterations, used by the test suite,
* ``default`` — tens of iterations / a few repetitions, for the benchmark
  harness (pytest-benchmark targets),
* ``full``    — hundreds of iterations, closest to the paper's protocol.

A process-wide :class:`ResultsCache` lets the figures share expensive runs
(Fig. 7/8/9 all consume the same with/without-checks measurements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..engine import Engine, EngineConfig
from ..jit.checks import CheckKind
from ..profiling.attribution import AttributionResult, attribute_samples
from ..profiling.sampler import attach_sampler
from ..suite.runner import (
    BenchmarkRunner,
    NoiseModel,
    RunResult,
    determine_removable_kinds,
)
from ..suite.spec import BenchmarkSpec, all_benchmarks


@dataclass(frozen=True)
class Scale:
    name: str
    iterations: int
    reps: int
    benchmark_limit: Optional[int] = None  # None = whole suite


SCALES: Dict[str, Scale] = {
    "smoke": Scale("smoke", iterations=10, reps=2, benchmark_limit=6),
    "default": Scale("default", iterations=40, reps=4),
    "full": Scale("full", iterations=200, reps=10),
}


def resolve_scale(scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    return SCALES[scale]


def suite_for_scale(scale: Scale) -> List[BenchmarkSpec]:
    benchmarks = all_benchmarks()
    if scale.benchmark_limit is not None:
        # A deterministic cross-category slice for smoke runs.
        benchmarks = sorted(benchmarks, key=lambda s: (s.category, s.name))
        step = max(1, len(benchmarks) // scale.benchmark_limit)
        benchmarks = benchmarks[::step][: scale.benchmark_limit]
    return benchmarks


#: default sampling period (simulated cycles); odd to avoid phase lock
SAMPLE_PERIOD = 211.0


@dataclass
class ProfiledRun:
    run: RunResult
    window: AttributionResult
    truth: AttributionResult
    #: static check counts over this benchmark's optimized code
    static_checks: int = 0
    static_body: int = 0
    checks_by_kind: Dict[object, int] = field(default_factory=dict)

    @property
    def static_density(self) -> float:
        """Checks emitted per 100 JIT instructions (Fig. 1 metric)."""
        if not self.static_body:
            return 0.0
        return 100.0 * self.static_checks / self.static_body


class ResultsCache:
    """Memoizes benchmark runs across experiment drivers."""

    def __init__(self) -> None:
        self._runs: Dict[tuple, RunResult] = {}
        self._profiled: Dict[tuple, ProfiledRun] = {}
        self._removable: Dict[tuple, Tuple[FrozenSet[CheckKind], FrozenSet[CheckKind]]] = {}

    # -- plain timed runs ---------------------------------------------------

    def timed_run(
        self,
        spec: BenchmarkSpec,
        target: str,
        iterations: int,
        rep: int = 0,
        removed: FrozenSet[CheckKind] = frozenset(),
        emit_check_branches: bool = True,
        noise: bool = True,
    ) -> RunResult:
        key = (
            spec.name, target, iterations, rep, removed, emit_check_branches, noise,
        )
        cached = self._runs.get(key)
        if cached is not None:
            return cached
        config = EngineConfig(
            target=target,
            removed_checks=removed,
            emit_check_branches=emit_check_branches,
        )
        runner = BenchmarkRunner(spec, config, NoiseModel(enabled=noise))
        result = runner.run(iterations=iterations, rep=rep)
        self._runs[key] = result
        return result

    # -- profiled runs (PC sampling) ------------------------------------------

    def profiled_run(
        self, spec: BenchmarkSpec, target: str, iterations: int, rep: int = 0
    ) -> ProfiledRun:
        key = (spec.name, target, iterations, rep)
        cached = self._profiled.get(key)
        if cached is not None:
            return cached
        config = EngineConfig(target=target)
        noise = NoiseModel(enabled=True)
        import random as _random

        rng = _random.Random((hash(spec.name) & 0xFFFFFFF) * 7919 + rep)
        config = noise.perturb_config(config, rng)
        engine = Engine(config)
        engine.load(spec.source)
        engine.call_global("setup")
        # Warm up so steady-state code dominates the samples (the paper
        # samples whole runs; warmup samples land outside JIT code either
        # way and only dilute, which we also model).
        warmup = max(4, iterations // 5)
        for i in range(warmup):
            engine.current_iteration = i
            engine.call_global("run")
        sampler = attach_sampler(engine, SAMPLE_PERIOD)
        cycles: List[float] = []
        for i in range(iterations):
            engine.current_iteration = warmup + i
            before = engine.total_cycles
            engine.call_global("run")
            cycles.append(engine.total_cycles - before)
        window = attribute_samples(sampler, "window")
        truth = attribute_samples(sampler, "truth")
        static_checks = 0
        static_body = 0
        checks_by_kind: Dict[object, int] = {}
        seen_codes = set()
        for shared in engine.functions:
            code = shared.code
            if code is None or id(code) in seen_codes:
                continue
            seen_codes.add(id(code))
            static_checks += len(code.deopt_points)
            static_body += code.body_instruction_count()
            for point in code.deopt_points.values():
                checks_by_kind[point.kind] = checks_by_kind.get(point.kind, 0) + 1
        run = RunResult(
            name=spec.name,
            target=target,
            iterations=iterations,
            cycles=cycles,
            result=None,
            valid=True,
            deopts=[],
            code_stats=_sum_code_stats(engine),
            hw_stats=engine.executor.stats.snapshot(),
            buckets=dict(engine.buckets),
            total_cycles=engine.total_cycles,
        )
        profiled = ProfiledRun(
            run=run,
            window=window,
            truth=truth,
            static_checks=static_checks,
            static_body=static_body,
            checks_by_kind=checks_by_kind,
        )
        self._profiled[key] = profiled
        return profiled

    # -- leftover-check detection ----------------------------------------------

    def removable_kinds(
        self, spec: BenchmarkSpec, target: str, iterations: int = 40
    ) -> Tuple[FrozenSet[CheckKind], FrozenSet[CheckKind]]:
        key = (spec.name, target)
        cached = self._removable.get(key)
        if cached is not None:
            return cached
        result = determine_removable_kinds(
            spec, EngineConfig(target=target), iterations=iterations
        )
        self._removable[key] = result
        return result


def _sum_code_stats(engine: Engine) -> Dict[str, int]:
    totals = {"body_instructions": 0, "check_instructions": 0, "deopt_branches": 0}
    seen = set()
    for shared in engine.functions:
        code = shared.code
        if code is not None and id(code) not in seen:
            seen.add(id(code))
            stats = code.check_instruction_stats()
            for k in totals:
                totals[k] += stats[k]
    return totals


#: process-wide cache shared by all experiment drivers
CACHE = ResultsCache()


@dataclass
class ExperimentResult:
    """Rows + rendering for one regenerated table/figure."""

    experiment: str
    description: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        widths = {c: len(c) for c in self.columns}
        formatted_rows = []
        for row in self.rows:
            formatted = {}
            for c in self.columns:
                value = row.get(c, "")
                if isinstance(value, float):
                    text = f"{value:.3f}" if abs(value) < 1000 else f"{value:.0f}"
                else:
                    text = str(value)
                formatted[c] = text
                widths[c] = max(widths[c], len(text))
            formatted_rows.append(formatted)
        lines = [f"== {self.experiment}: {self.description} =="]
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for formatted in formatted_rows:
            lines.append("  ".join(formatted[c].ljust(widths[c]) for c in self.columns))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)


def relative_change(after: float, before: float) -> float:
    """(after - before) / before, guarded."""
    if before == 0:
        return 0.0
    return (after - before) / before
