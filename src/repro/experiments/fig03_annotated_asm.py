"""Fig. 3 — annotated machine code with per-instruction PC sample counts.

The paper shows a sequence of instructions from JIT-compiled code with the
number of PC samples that landed on each, identifying deopt branches by
their jump targets (the deopt region at the end of the function) and the
preceding condition-computation instructions as part of each check.
"""

from __future__ import annotations

from typing import Optional

from ..engine import Engine, EngineConfig
from ..profiling.annotate import annotated_listing
from ..profiling.sampler import attach_sampler
from ..suite.spec import get_benchmark
from .common import SAMPLE_PERIOD, ExperimentResult, resolve_scale


def run(
    scale="default",
    benchmark: str = "SPMV-CSR-SMI",
    target: str = "arm64",
    function: Optional[str] = None,
) -> ExperimentResult:
    scale = resolve_scale(scale)
    spec = get_benchmark(benchmark)
    engine = Engine(EngineConfig(target=target))
    engine.load(spec.source)
    engine.call_global("setup")
    for i in range(max(6, scale.iterations // 4)):
        engine.call_global("run")
    sampler = attach_sampler(engine, SAMPLE_PERIOD)
    for i in range(scale.iterations):
        engine.call_global("run")

    per_code = sampler.samples_by_code()
    if function is not None:
        candidates = [c for c in per_code if c.shared.name == function]
    else:
        candidates = sorted(
            per_code, key=lambda c: sum(per_code[c].values()), reverse=True
        )
    result = ExperimentResult(
        experiment="Fig. 3",
        description=f"annotated {target} listing of {benchmark}'s hottest function",
        columns=["listing"],
    )
    if not candidates:
        result.notes.append("no JIT samples collected at this scale")
        return result
    listing = annotated_listing(candidates[0], sampler, method="window")
    for line in listing.splitlines():
        result.rows.append({"listing": line})
    return result
