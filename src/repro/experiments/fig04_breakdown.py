"""Fig. 4 — breakdown of check frequency and check overhead by type.

Paper, Section III-A:

* (a, b) how many checks TurboFan emits per 100 machine instructions, by
  check group, on x64 and ARM64 (2-10 per 100, average ~5; ARM64 lower);
* (c, d) the overhead of each check group from PC sampling with the window
  heuristic (total 5-7 %; Type checks are ~half the *occurrences* but only
  ~30 % of the *overhead*; SMI + Not-a-SMI + Boundary together are ~50 % of
  both; regex benchmarks show essentially none).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Sequence

from ..exec import profiled_cell
from ..jit.checks import CheckGroup, group_of
from .common import CACHE, ExperimentResult, resolve_scale, suite_for_scale

GROUP_ORDER = [
    CheckGroup.TYPE,
    CheckGroup.SMI,
    CheckGroup.BOUNDS,
    CheckGroup.MAP,
    CheckGroup.ARITHMETIC,
    CheckGroup.OTHER,
]


def run(scale="default", targets: Sequence[str] = ("x64", "arm64")) -> Dict[str, ExperimentResult]:
    """Returns {"frequency": ..., "overhead": ...} tables."""
    scale = resolve_scale(scale)
    CACHE.prefetch(
        profiled_cell(spec, target, scale.iterations)
        for spec in suite_for_scale(scale)
        for target in targets
    )
    freq_columns = ["benchmark", "target", "total/100"] + [g.value for g in GROUP_ORDER]
    ovh_columns = ["benchmark", "target", "total %"] + [g.value for g in GROUP_ORDER]
    frequency = ExperimentResult(
        experiment="Fig. 4a/4b",
        description="checks emitted per 100 instructions, by group",
        columns=freq_columns,
    )
    overhead = ExperimentResult(
        experiment="Fig. 4c/4d",
        description="check overhead (% of samples, window heuristic), by group",
        columns=ovh_columns,
    )
    group_share_occurrences: Dict[CheckGroup, float] = defaultdict(float)
    group_share_overhead: Dict[CheckGroup, float] = defaultdict(float)
    totals = {t: [] for t in targets}
    for spec in suite_for_scale(scale):
        for target in targets:
            profiled = CACHE.profiled_run(spec, target, scale.iterations)
            body = profiled.static_body or 1
            freq_row = {
                "benchmark": spec.name,
                "target": target,
                "total/100": profiled.static_density,
            }
            for group in GROUP_ORDER:
                count = sum(
                    n for kind, n in profiled.checks_by_kind.items()
                    if group_of(kind) == group  # type: ignore[arg-type]
                )
                freq_row[group.value] = 100.0 * count / body
                group_share_occurrences[group] += count
            frequency.rows.append(freq_row)

            shares = profiled.window.by_group()
            total_pct = 100.0 * profiled.window.overhead
            ovh_row = {
                "benchmark": spec.name,
                "target": target,
                "total %": total_pct,
            }
            for group in GROUP_ORDER:
                pct = 100.0 * shares.get(group, 0.0)
                ovh_row[group.value] = pct
                group_share_overhead[group] += pct
            overhead.rows.append(ovh_row)
            totals[target].append(total_pct)

    for target in targets:
        values = totals[target]
        if values:
            overhead.notes.append(
                f"{target}: mean total overhead {sum(values)/len(values):.2f} %"
                " (paper: 5-7 % overall)"
            )
    occurrence_total = sum(group_share_occurrences.values()) or 1.0
    overhead_total = sum(group_share_overhead.values()) or 1.0
    frequency.notes.append(
        "occurrence shares by group: "
        + ", ".join(
            f"{g.value} {100.0 * group_share_occurrences[g] / occurrence_total:.0f}%"
            for g in GROUP_ORDER
        )
    )
    overhead.notes.append(
        "overhead shares by group: "
        + ", ".join(
            f"{g.value} {100.0 * group_share_overhead[g] / overhead_total:.0f}%"
            for g in GROUP_ORDER
        )
    )
    return {"frequency": frequency, "overhead": overhead}
