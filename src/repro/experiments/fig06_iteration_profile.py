"""Fig. 6 — per-iteration execution time, with checks vs after removal.

Paper, Section III-B.3: relative execution time per iteration (normalized
to the first iteration) over 1,000 iterations, with and without checks;
vertical bars mark deoptimization events.  Findings reproduced here:

* deoptimizations are rare and happen within the first few iterations;
* steady-state compiled code is ~2.5x faster than the first (interpreted)
  iteration;
* code without checks is faster, mean overall time difference ~8 %;
* benchmarks whose semantics need some checks keep them ("leftover
  checks", marked ``*``); their measured difference underestimates the
  true cost.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Tuple

from ..exec import removable_cell, timed_cell
from .common import CACHE, ExperimentResult, resolve_scale, suite_for_scale


@dataclass
class IterationProfile:
    """Raw per-iteration series for one benchmark (for plots/inspection)."""

    benchmark: str
    target: str
    with_checks: List[float]
    without_checks: List[float]
    deopt_iterations: List[int]
    leftover_kinds: Tuple[str, ...]

    def relative(self, series: List[float]) -> List[float]:
        first = series[0] if series and series[0] else 1.0
        return [value / first for value in series]


def collect_profiles(
    scale="default", target: str = "arm64"
) -> List[IterationProfile]:
    scale = resolve_scale(scale)
    benchmarks = suite_for_scale(scale)
    CACHE.prefetch(
        [removable_cell(spec, target) for spec in benchmarks]
        + [
            timed_cell(spec, target, scale.iterations, rep=0, noise=False)
            for spec in benchmarks
        ]
    )
    CACHE.prefetch(
        timed_cell(
            spec, target, scale.iterations, rep=0,
            removed=CACHE.removable_kinds(spec, target)[0], noise=False,
        )
        for spec in benchmarks
    )
    profiles: List[IterationProfile] = []
    for spec in benchmarks:
        removable, leftovers = CACHE.removable_kinds(spec, target)
        with_checks = CACHE.timed_run(
            spec, target, scale.iterations, rep=0, noise=False
        )
        without = CACHE.timed_run(
            spec, target, scale.iterations, rep=0, removed=removable, noise=False
        )
        profiles.append(
            IterationProfile(
                benchmark=spec.name,
                target=target,
                with_checks=list(with_checks.cycles),
                without_checks=list(without.cycles),
                deopt_iterations=sorted({it for it, _k in with_checks.deopts}),
                leftover_kinds=tuple(sorted(k.name for k in leftovers)),
            )
        )
    return profiles


def run(scale="default", target: str = "arm64") -> ExperimentResult:
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment="Fig. 6",
        description=f"per-iteration time with vs without checks ({target})",
        columns=[
            "benchmark",
            "time diff %",
            "steady speedup vs iter0",
            "deopt events",
            "last deopt iter",
            "leftover",
        ],
    )
    diffs: List[float] = []
    warmup_speedups: List[float] = []
    for profile in collect_profiles(scale, target):
        tail = max(1, len(profile.with_checks) * 3 // 10)
        steady_with = statistics.mean(profile.with_checks[-tail:])
        steady_without = statistics.mean(profile.without_checks[-tail:])
        diff = (steady_with / steady_without - 1.0) * 100.0 if steady_without else 0.0
        first = profile.with_checks[0] if profile.with_checks else 1.0
        warmup_speedup = first / steady_with if steady_with else 1.0
        diffs.append(diff)
        warmup_speedups.append(warmup_speedup)
        result.rows.append(
            {
                "benchmark": profile.benchmark
                + (" *" if profile.leftover_kinds else ""),
                "time diff %": diff,
                "steady speedup vs iter0": warmup_speedup,
                "deopt events": len(profile.deopt_iterations),
                "last deopt iter": (
                    max(profile.deopt_iterations) if profile.deopt_iterations else -1
                ),
                "leftover": ",".join(profile.leftover_kinds) or "-",
            }
        )
    if diffs:
        result.notes.append(
            f"mean time difference {statistics.mean(diffs):.2f} %"
            " (paper: ~8 % overall, 2-4x earlier estimates)"
        )
    if warmup_speedups:
        result.notes.append(
            "steady state vs first iteration: geomean "
            f"{statistics.geometric_mean([max(s, 0.01) for s in warmup_speedups]):.2f}x"
            " (paper: ~2.5x faster than unoptimized code)"
        )
    late = [
        row for row in result.rows
        if isinstance(row["last deopt iter"], int) and row["last deopt iter"] > 10
    ]
    result.notes.append(
        f"{len(late)} benchmarks saw deopts after iteration 10"
        " (paper: most deopts happen within the first 10 iterations)"
    )
    return result
