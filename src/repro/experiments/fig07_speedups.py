"""Fig. 7 — per-benchmark speedups from both estimation techniques.

For every benchmark the paper compares the speedup *estimated* from PC
sampling, ``(1 - %ovh/100)^-1``, against the speedup *measured* by check
removal, with 95 % bootstrap error bars over repetitions, and runs a
Wilcoxon test (Bonferroni-corrected) to flag the *practically significant*
benchmarks: statistically significant difference **and** > 2 % effect.
The paper finds roughly two thirds of benchmarks significant, with some
over 20 % and others pure noise.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List

from ..exec import profiled_cell, removable_cell, timed_cell
from ..stats.analysis import bootstrap_interval, compare_populations
from .common import CACHE, ExperimentResult, resolve_scale, suite_for_scale


@dataclass
class BenchmarkSpeedup:
    benchmark: str
    category: str
    target: str
    sampling_speedup: float
    removal_speedups: List[float]
    removal_mean: float
    ci_low: float
    ci_high: float
    p_value: float
    practically_significant: bool
    leftover: bool


def collect_speedups(
    scale="default", target: str = "arm64"
) -> List[BenchmarkSpeedup]:
    scale = resolve_scale(scale)
    benchmarks = suite_for_scale(scale)
    # Two scheduler waves resolve every cell the loop below needs: the
    # with-checks runs can start immediately, the without-checks runs only
    # once the leftover probes say which checks are removable.
    CACHE.prefetch(
        [removable_cell(spec, target) for spec in benchmarks]
        + [profiled_cell(spec, target, scale.iterations) for spec in benchmarks]
        + [
            timed_cell(spec, target, scale.iterations, rep=rep)
            for spec in benchmarks
            for rep in range(scale.reps)
        ]
    )
    CACHE.prefetch(
        timed_cell(
            spec, target, scale.iterations, rep=rep,
            removed=CACHE.removable_kinds(spec, target)[0],
        )
        for spec in benchmarks
        for rep in range(scale.reps)
    )
    rows: List[BenchmarkSpeedup] = []
    test_count = len(benchmarks)
    for spec in benchmarks:
        removable, leftovers = CACHE.removable_kinds(spec, target)
        profiled = CACHE.profiled_run(spec, target, scale.iterations)
        sampling_speedup = profiled.window.estimated_speedup

        with_times: List[float] = []
        without_times: List[float] = []
        speedups: List[float] = []
        for rep in range(scale.reps):
            with_run = CACHE.timed_run(spec, target, scale.iterations, rep=rep)
            without_run = CACHE.timed_run(
                spec, target, scale.iterations, rep=rep, removed=removable
            )
            # Population = steady-state per-iteration times pooled across
            # repetitions.  The paper uses its 30 per-repetition totals; at
            # our smaller repetition counts a Bonferroni-corrected Wilcoxon
            # over per-rep totals can never reach significance (min p for
            # n=4 is 0.125), so we test the same quantity at iteration
            # granularity instead.
            tail = max(1, len(with_run.cycles) * 3 // 10)
            with_times.extend(with_run.cycles[-tail:])
            without_times.extend(without_run.cycles[-tail:])
            speedups.append(
                with_run.total_time / without_run.total_time
                if without_run.total_time
                else 1.0
            )
        significance = compare_populations(
            with_times, without_times, test_count=test_count, paired=False
        )
        ci_low, ci_high = bootstrap_interval(speedups)
        rows.append(
            BenchmarkSpeedup(
                benchmark=spec.name,
                category=spec.category,
                target=target,
                sampling_speedup=sampling_speedup,
                removal_speedups=speedups,
                removal_mean=statistics.mean(speedups),
                ci_low=ci_low,
                ci_high=ci_high,
                p_value=significance.p_value,
                practically_significant=significance.practically_significant,
                leftover=bool(leftovers),
            )
        )
    return rows


def run(scale="default", target: str = "arm64") -> ExperimentResult:
    data = collect_speedups(scale, target)
    result = ExperimentResult(
        experiment="Fig. 7",
        description=f"per-benchmark speedup from both techniques ({target})",
        columns=[
            "benchmark",
            "category",
            "sampling speedup",
            "removal speedup",
            "95% CI",
            "p-value",
            "significant",
        ],
    )
    significant = 0
    for entry in sorted(data, key=lambda e: -e.removal_mean):
        if entry.practically_significant:
            significant += 1
        result.rows.append(
            {
                "benchmark": entry.benchmark + (" *" if entry.leftover else ""),
                "category": entry.category,
                "sampling speedup": entry.sampling_speedup,
                "removal speedup": entry.removal_mean,
                "95% CI": f"[{entry.ci_low:.3f}, {entry.ci_high:.3f}]",
                "p-value": f"{entry.p_value:.4f}",
                "significant": "yes" if entry.practically_significant else "-",
            }
        )
    if data:
        share = 100.0 * significant / len(data)
        result.notes.append(
            f"{significant}/{len(data)} ({share:.0f} %) practically significant"
            " (paper: ~2/3 of benchmarks, 67 % on ARM64)"
        )
        mean_speedup = statistics.mean(e.removal_mean for e in data)
        result.notes.append(
            f"mean removal speedup {mean_speedup:.3f}"
            " (paper: ~8 % average check overhead)"
        )
    return result
