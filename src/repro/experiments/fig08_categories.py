"""Fig. 8 — speedups after check removal, grouped by benchmark category.

The paper aggregates Fig. 7's per-benchmark estimates per category and
compares the two techniques side by side: mathematical/crypto/sparse
benchmarks gain the most, regex and parsing benchmarks essentially nothing
(their work lives in builtins / the regex engine).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from ..stats.analysis import geometric_mean
from ..suite.spec import CATEGORIES
from .common import ExperimentResult
from .fig07_speedups import collect_speedups


def run(scale="default", target: str = "arm64") -> ExperimentResult:
    data = collect_speedups(scale, target)
    by_category: Dict[str, List] = defaultdict(list)
    for entry in data:
        by_category[entry.category].append(entry)
    result = ExperimentResult(
        experiment="Fig. 8",
        description=f"speedups by category, both techniques ({target})",
        columns=[
            "category",
            "benchmarks",
            "sampling speedup (geomean)",
            "removal speedup (geomean)",
            "agreement gap %",
        ],
    )
    for category in CATEGORIES:
        entries = by_category.get(category)
        if not entries:
            continue
        sampling = geometric_mean([e.sampling_speedup for e in entries])
        removal = geometric_mean([e.removal_mean for e in entries])
        gap = abs(sampling - removal) / removal * 100.0 if removal else 0.0
        result.rows.append(
            {
                "category": category,
                "benchmarks": len(entries),
                "sampling speedup (geomean)": sampling,
                "removal speedup (geomean)": removal,
                "agreement gap %": gap,
            }
        )
    result.notes.append(
        "paper: the two estimates agree for most categories; larger gaps for"
        " sparse (x64) and mathematical (ARM64) motivate the Fig. 9 analysis"
    )
    return result
