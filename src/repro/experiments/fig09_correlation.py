"""Fig. 9 — correlation between the two overhead estimators.

Paper, Section IV-A: each benchmark is a point (sampling-estimated
speedup, removal-measured speedup); OLS with 95 % CIs plus Pearson
correlation.  The paper measures R² = 0.51 (r = 0.71) on x64 and
R² = 0.36 (r = 0.60) on ARM64, both with p ~ 0 — statistically
significant positive correlation, lower on ARM64 because RISC checks have
a more complex structure that the window heuristic captures less well.
"""

from __future__ import annotations

from typing import Sequence

from ..stats.analysis import linear_regression, pearson_correlation
from .common import ExperimentResult
from .fig07_speedups import collect_speedups


def run(scale="default", targets: Sequence[str] = ("x64", "arm64")) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Fig. 9",
        description="correlation of sampling vs removal speedup estimates",
        columns=[
            "target",
            "n",
            "r",
            "R^2",
            "p-value",
            "slope",
            "slope 95% CI",
        ],
    )
    for target in targets:
        data = collect_speedups(scale, target)
        xs = [e.sampling_speedup for e in data]
        ys = [e.removal_mean for e in data]
        if len(xs) < 3:
            continue
        correlation = pearson_correlation(xs, ys)
        regression = linear_regression(xs, ys)
        result.rows.append(
            {
                "target": target,
                "n": len(xs),
                "r": correlation.r,
                "R^2": correlation.r_squared,
                "p-value": f"{correlation.p_value:.2e}",
                "slope": regression.slope,
                "slope 95% CI": (
                    f"[{regression.slope_ci[0]:.2f}, {regression.slope_ci[1]:.2f}]"
                ),
            }
        )
    result.notes.append(
        "paper: R^2=0.51 (r=0.71) on x64, R^2=0.36 (r=0.60) on ARM64,"
        " p < 1e-7 for the zero-correlation null in both cases"
    )
    return result
