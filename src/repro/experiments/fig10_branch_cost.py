"""Fig. 10 — the cost of check *branches* alone (Section IV-B).

The code generator is modified to compute check conditions but suppress
the conditional deopt branches.  The paper's findings:

* retired instructions drop ~5 %, committed branches drop ~20 %,
* branch mispredictions drop only 2-5 % — check branches are almost always
  predicted correctly,
* the speedup is a modest 1-2 %: the expensive part of a check is the
  *condition computation*, not the branch — the motivation for the SMI
  load extension,
* on x64, stalled frontend cycles can *increase* by up to 5 % (the
  bottleneck moves toward the backend).

Counter deltas come from the fast executor model over the whole suite;
frontend-stall deltas come from the detailed O3 pipeline over the SMI
kernel subset (hardware-counter granularity the fast model lacks).
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from ..engine import Engine, EngineConfig
from ..exec import timed_cell
from ..suite.spec import smi_kernels
from ..uarch.pipeline.configs import O3_KPG
from ..uarch.pipeline.inorder import simulate
from .common import CACHE, ExperimentResult, relative_change, resolve_scale, suite_for_scale

METRICS = ("cycles", "instructions", "branches", "mispredictions")


def run(scale="default", target: str = "arm64") -> ExperimentResult:
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment="Fig. 10",
        description=f"relative change after removing only check branches ({target})",
        columns=["benchmark", "category"] + [f"d {m} %" for m in METRICS],
    )
    aggregates: Dict[str, List[float]] = {m: [] for m in METRICS}
    CACHE.prefetch(
        timed_cell(spec, target, scale.iterations, emit_check_branches=branches,
                   noise=False)
        for spec in suite_for_scale(scale)
        for branches in (True, False)
    )
    for spec in suite_for_scale(scale):
        base = CACHE.timed_run(spec, target, scale.iterations, noise=False)
        nobranch = CACHE.timed_run(
            spec, target, scale.iterations, emit_check_branches=False, noise=False
        )
        row = {"benchmark": spec.name, "category": spec.category}
        deltas = {
            "cycles": relative_change(nobranch.total_time, base.total_time),
            "instructions": relative_change(
                nobranch.hw_stats["instructions"], base.hw_stats["instructions"]
            ),
            "branches": relative_change(
                nobranch.hw_stats["branches"], base.hw_stats["branches"]
            ),
            "mispredictions": relative_change(
                nobranch.hw_stats["mispredictions"],
                max(1, base.hw_stats["mispredictions"]),
            ),
        }
        for metric in METRICS:
            value = 100.0 * deltas[metric]
            row[f"d {metric} %"] = value
            aggregates[metric].append(value)
        result.rows.append(row)
    for metric in METRICS:
        values = aggregates[metric]
        if values:
            result.notes.append(
                f"mean d {metric}: {statistics.mean(values):+.2f} %"
            )
    result.notes.append(
        "paper: instructions -5 %, branches -20 %, mispredictions -2..-5 %,"
        " cycles only -1..-2 %"
    )
    # Frontend-stall delta from the detailed pipeline on the SMI kernels.
    stall_deltas = frontend_stall_deltas(scale, target)
    if stall_deltas:
        result.notes.append(
            "O3 pipeline frontend stalls (SMI kernels): mean "
            f"{statistics.mean(stall_deltas):+.2f} %"
            " (paper: up to +5 % stalled frontend cycles on x64)"
        )
    return result


def frontend_stall_deltas(
    scale="default", target: str = "arm64", cpu=O3_KPG
) -> List[float]:
    scale = resolve_scale(scale)
    deltas: List[float] = []
    for spec in smi_kernels()[:4] if scale.name == "smoke" else smi_kernels():
        traces = {}
        for branches in (True, False):
            engine = Engine(
                EngineConfig(target=target, emit_check_branches=branches)
            )
            engine.load(spec.source)
            engine.call_global("setup")
            for _ in range(max(6, scale.iterations // 3)):
                engine.call_global("run")
            engine.executor.trace = []
            for _ in range(2):
                engine.call_global("run")
            traces[branches] = engine.executor.trace
            engine.executor.trace = None
        base_stats = simulate(traces[True], cpu)
        nobranch_stats = simulate(traces[False], cpu)
        base_stall = base_stats.frontend_stall_cycles or 1.0
        deltas.append(
            100.0 * (nobranch_stats.frontend_stall_cycles - base_stall) / base_stall
        )
    return deltas
