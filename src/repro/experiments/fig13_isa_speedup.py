"""Fig. 13 — speedup of the SMI-load ISA extension in the gem5 proxy.

Paper, Section V-B: SMI-heavy kernels (SPMV, MMUL, IM2COL, SPMM, BLUR,
AES2, HASH, DP) run 10 times on in-order and out-of-order CPU models, with
and without the ``jsldrsmi`` instructions.  Findings:

* average execution-time reduction ~3 %, up to 10 % for SMI-heavy
  computations (DP, SPMM);
* ~4 % fewer retired instructions (the folded test/shift instructions);
* in-order CPUs see a slightly better *average* speedup, but O3 cores can
  win on individual kernels (SPMM, AES2).

Each "run" regenerates a steady-state trace with jittered tier-up (the
nondeterminism the paper observes as TurboFan compilation events during
measurement, e.g. AES2's variance on Exynos).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..engine import Engine, EngineConfig
from ..suite.runner import NoiseModel, stable_seed
from ..suite.spec import BenchmarkSpec, smi_kernels
from ..uarch.pipeline.configs import CPUConfig, GEM5_CPUS
from ..uarch.pipeline.inorder import simulate
from .common import ExperimentResult, resolve_scale


@dataclass
class KernelMeasurement:
    benchmark: str
    cpu: str
    #: per-run cycle counts per ISA
    default_cycles: List[float]
    extended_cycles: List[float]
    default_instructions: int
    extended_instructions: int

    @property
    def speedup(self) -> float:
        base = statistics.mean(self.default_cycles)
        ext = statistics.mean(self.extended_cycles)
        return base / ext if ext else 1.0

    @property
    def instruction_reduction(self) -> float:
        if not self.default_instructions:
            return 0.0
        return 1.0 - self.extended_instructions / self.default_instructions


def collect_traces(
    spec: BenchmarkSpec, target: str, runs: int, warmup: int, measured: int
) -> List[list]:
    """Steady-state traces, one per run, with jittered tier-up."""
    noise = NoiseModel(enabled=True)
    traces = []
    for rep in range(runs):
        rng = random.Random((stable_seed(spec.name) & 0xFFFFF) * 37 + rep)
        config = noise.perturb_config(EngineConfig(target=target), rng)
        engine = Engine(config)
        engine.load(spec.source)
        engine.call_global("setup")
        for _ in range(warmup):
            engine.call_global("run")
        engine.executor.trace = []
        for _ in range(measured):
            engine.call_global("run")
        trace = engine.executor.trace
        engine.executor.trace = None
        traces.append(trace)
    return traces


_MEASUREMENT_CACHE: Dict[tuple, List["KernelMeasurement"]] = {}


def collect_measurements(
    scale="default",
    cpus: Sequence[CPUConfig] = GEM5_CPUS,
    runs: int = None,
) -> List[KernelMeasurement]:
    scale = resolve_scale(scale)
    cache_key = (scale.name, tuple(c.name for c in cpus), runs)
    cached = _MEASUREMENT_CACHE.get(cache_key)
    if cached is not None:
        return cached
    if runs is None:
        runs = max(2, scale.reps)
    warmup = max(6, scale.iterations // 4)
    measured = 2
    kernels = smi_kernels()
    if scale.name == "smoke":
        kernels = kernels[:3]
    measurements: List[KernelMeasurement] = []
    for spec in kernels:
        traces = {
            isa: collect_traces(spec, isa, runs, warmup, measured)
            for isa in ("arm64", "arm64+smi")
        }
        for cpu in cpus:
            default_cycles = []
            extended_cycles = []
            default_instrs = 0
            extended_instrs = 0
            for rep in range(runs):
                base_stats = simulate(traces["arm64"][rep], cpu)
                ext_stats = simulate(traces["arm64+smi"][rep], cpu)
                default_cycles.append(base_stats.cycles)
                extended_cycles.append(ext_stats.cycles)
                default_instrs += base_stats.instructions
                extended_instrs += ext_stats.instructions
            measurements.append(
                KernelMeasurement(
                    benchmark=spec.name,
                    cpu=cpu.name,
                    default_cycles=default_cycles,
                    extended_cycles=extended_cycles,
                    default_instructions=default_instrs,
                    extended_instructions=extended_instrs,
                )
            )
    _MEASUREMENT_CACHE[cache_key] = measurements
    return measurements


def run(scale="default", cpus: Sequence[CPUConfig] = GEM5_CPUS) -> ExperimentResult:
    measurements = collect_measurements(scale, cpus)
    result = ExperimentResult(
        experiment="Fig. 13",
        description="SMI ISA extension: execution-time reduction per CPU model",
        columns=["benchmark", "cpu", "speedup", "time reduction %", "instr reduction %"],
    )
    by_kind: Dict[str, List[float]] = {"inorder": [], "o3": []}
    instr_reductions: List[float] = []
    for m in measurements:
        reduction = (1.0 - 1.0 / m.speedup) * 100.0
        result.rows.append(
            {
                "benchmark": m.benchmark,
                "cpu": m.cpu,
                "speedup": m.speedup,
                "time reduction %": reduction,
                "instr reduction %": m.instruction_reduction * 100.0,
            }
        )
        kind = "inorder" if m.cpu.startswith("inorder") else "o3"
        by_kind[kind].append(reduction)
        instr_reductions.append(m.instruction_reduction * 100.0)
    if instr_reductions:
        result.notes.append(
            f"mean retired-instruction reduction {statistics.mean(instr_reductions):.2f} %"
            " (paper: ~4 %)"
        )
    for kind, values in by_kind.items():
        if values:
            result.notes.append(
                f"{kind}: mean time reduction {statistics.mean(values):.2f} %,"
                f" max {max(values):.2f} %"
            )
    result.notes.append("paper: average ~3 %, up to 10 % (DP, SPMM)")
    return result
