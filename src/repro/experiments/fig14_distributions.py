"""Fig. 14 — execution-time distributions, default vs SMI-extended ISA.

The paper compares run-time distributions per kernel and CPU: in several
cases (BLUR on all CPUs, AES2 on O3-KPG) the extended ISA primarily
*reduces variance*, and sometimes lowers the median even where the mean
looks unchanged.
"""

from __future__ import annotations

from typing import Sequence

from ..stats.analysis import summarize
from ..uarch.pipeline.configs import CPUConfig, GEM5_CPUS
from .common import ExperimentResult
from .fig13_isa_speedup import collect_measurements


def run(scale="default", cpus: Sequence[CPUConfig] = GEM5_CPUS) -> ExperimentResult:
    measurements = collect_measurements(scale, cpus)
    result = ExperimentResult(
        experiment="Fig. 14",
        description="execution-time distributions: default vs SMI-extended ISA",
        columns=[
            "benchmark",
            "cpu",
            "isa",
            "mean",
            "median",
            "p25",
            "p75",
            "std",
        ],
    )
    variance_reduced = 0
    median_reduced = 0
    pairs = 0
    for m in measurements:
        base = summarize(m.default_cycles)
        ext = summarize(m.extended_cycles)
        for isa, s in (("default", base), ("smi-ext", ext)):
            result.rows.append(
                {
                    "benchmark": m.benchmark,
                    "cpu": m.cpu,
                    "isa": isa,
                    "mean": s["mean"],
                    "median": s["median"],
                    "p25": s["p25"],
                    "p75": s["p75"],
                    "std": s["std"],
                }
            )
        pairs += 1
        if ext["std"] < base["std"]:
            variance_reduced += 1
        if ext["median"] < base["median"]:
            median_reduced += 1
    if pairs:
        result.notes.append(
            f"variance reduced in {variance_reduced}/{pairs} kernel-CPU pairs,"
            f" median reduced in {median_reduced}/{pairs}"
        )
    result.notes.append(
        "paper: the extended ISA often reduces variance (BLUR everywhere,"
        " AES2 on O3-KPG) and lowers the median even when means look equal"
    )
    return result
