"""Section III-B.2 — leftover checks.

Paper: "16 benchmarks out of 51 do not complete execution correctly if all
checks are removed ... With this method, less than 20 % of checks of the
otherwise failing benchmarks remain in the code.  This leftover overhead,
estimated from perf, is less than 0.5 %."
"""

from __future__ import annotations

import statistics
from typing import List

from ..exec import profiled_cell, removable_cell
from .common import CACHE, ExperimentResult, resolve_scale, suite_for_scale


def run(scale="default", target: str = "arm64") -> ExperimentResult:
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment="Leftover checks (Sec. III-B.2)",
        description=f"benchmarks that need some checks for correctness ({target})",
        columns=[
            "benchmark",
            "leftover kinds",
            "leftover checks %",
            "leftover overhead %",
        ],
    )
    affected = 0
    total = 0
    remaining_shares: List[float] = []
    leftover_overheads: List[float] = []
    benchmarks = suite_for_scale(scale)
    CACHE.prefetch(removable_cell(spec, target) for spec in benchmarks)
    CACHE.prefetch(
        profiled_cell(spec, target, scale.iterations)
        for spec in benchmarks
        if CACHE.removable_kinds(spec, target)[1]
    )
    for spec in benchmarks:
        total += 1
        removable, leftovers = CACHE.removable_kinds(spec, target)
        if not leftovers:
            continue
        affected += 1
        profiled = CACHE.profiled_run(spec, target, scale.iterations)
        total_checks = sum(profiled.checks_by_kind.values()) or 1
        leftover_checks = sum(
            count
            for kind, count in profiled.checks_by_kind.items()
            if kind in leftovers
        )
        share = 100.0 * leftover_checks / total_checks
        remaining_shares.append(share)
        leftover_kind_names = {k for k in leftovers}
        leftover_overhead = 100.0 * sum(
            count
            for kind, count in profiled.window.by_kind.items()
            if kind in leftover_kind_names
        ) / max(1, profiled.window.total_samples)
        leftover_overheads.append(leftover_overhead)
        result.rows.append(
            {
                "benchmark": spec.name,
                "leftover kinds": ",".join(sorted(k.name for k in leftovers)),
                "leftover checks %": share,
                "leftover overhead %": leftover_overhead,
            }
        )
    result.notes.append(
        f"{affected}/{total} benchmarks keep leftover checks"
        " (paper: 16/51)"
    )
    if remaining_shares:
        result.notes.append(
            f"mean leftover share of checks {statistics.mean(remaining_shares):.1f} %"
            " (paper: < 20 %)"
        )
    if leftover_overheads:
        result.notes.append(
            f"mean leftover overhead {statistics.mean(leftover_overheads):.2f} %"
            " of samples (paper: < 0.5 %)"
        )
    return result
