"""Typeflow extension — static vs residual check density, with dynamic
cross-validation.

Not a figure from the paper: this driver quantifies how much of the
paper's Fig. 1 check density is *provably redundant or hoistable* under
the flow-sensitive type-state analysis of
:mod:`repro.analysis.typeflow`, per benchmark and per ISA.  Three
numbers per row:

* ``static`` — all machine-level checks per 100 body instructions (the
  Fig. 1 metric),
* ``residual`` — only the checks the analysis classifies *required*,
* ``dyn elided %`` — the share of dynamic check executions the typed
  block tier actually dropped behind hoisted entry guards, measured by
  running the benchmark with ``typed_blocks`` enabled.

Every row is cross-validated: a check statically classified redundant
that dynamically deoptimized would be a soundness violation and raises.
"""

from __future__ import annotations

import statistics
from typing import Sequence

from ..analysis.typeflow import analyze_typeflow, cross_validate
from ..engine import EngineConfig
from ..suite import compile_benchmark
from .common import ExperimentResult, resolve_scale, suite_for_scale


def run(scale="default", targets: Sequence[str] = ("arm64", "x64")) -> ExperimentResult:
    scale = resolve_scale(scale)
    columns = ["benchmark", "category"]
    for target in targets:
        columns += [f"{target} static", f"{target} residual", f"{target} dyn elided %"]
    result = ExperimentResult(
        experiment="typeflow",
        description="static vs residual check density (typeflow analysis)",
        columns=columns,
    )
    reductions = {t: [] for t in targets}
    for spec in suite_for_scale(scale):
        row = {"benchmark": spec.name, "category": spec.category}
        for target in targets:
            config = EngineConfig(target=target, typed_blocks=True)
            engine = compile_benchmark(spec, config, iterations=scale.iterations)
            codes = list(engine._code_objects)
            violations = cross_validate(codes, engine.check_trips)
            if violations:
                raise AssertionError(
                    f"{spec.name} [{target}]: typeflow soundness violation(s): "
                    + "; ".join(d.message for d in violations)
                )
            checks = body = required = 0
            for code in codes:
                analysis = analyze_typeflow(code)
                checks += analysis.counts["checks"]
                required += analysis.counts["required"]
                body += analysis.body_instructions
            typed = engine.typed_check_stats()
            executed = engine.executor.stats.deopt_branch_instrs
            elided = typed["branch_checks_elided"] + typed["smi_tag_tests_elided"]
            reduction = 100.0 * elided / executed if executed else 0.0
            row[f"{target} static"] = 100.0 * checks / body if body else 0.0
            row[f"{target} residual"] = 100.0 * required / body if body else 0.0
            row[f"{target} dyn elided %"] = reduction
            reductions[target].append(reduction)
        result.rows.append(row)
    for target in targets:
        values = reductions[target]
        if values:
            result.notes.append(
                f"{target}: mean {statistics.mean(values):.1f}% of dynamic "
                f"check executions elided by the typed tier "
                f"(range {min(values):.1f}-{max(values):.1f}%)"
            )
    return result
