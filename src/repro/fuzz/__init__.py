"""Generative speculation fuzzing: a differential correctness fleet.

The suite's 31 frozen programs exercise the five speculative tiers
(blockjit → typed blocks → traces → lbbv versions → deoptless
continuations) along a fixed set of paths.  This package turns the
differential-oracle + crash-bundle machinery into a *continuous*
correctness fleet:

* :mod:`repro.fuzz.generator` — a seeded, fully deterministic random
  program generator for the ``repro.lang`` JS subset, biased toward
  speculation-relevant idioms (polymorphic call sites, shape mutation
  on live objects, SMI/double boundary arithmetic, packed/holey
  elements transitions, hot loops with type-unstable phis);
* :mod:`repro.fuzz.oracle` — runs every generated program through the
  full executor ladder (:data:`repro.resilience.oracle.EXECUTOR_LADDER`)
  on both ISAs and demands bitwise-identical results, globals snapshots
  and deopt-event streams; divergences become replayable
  ``fuzz-divergence`` crash bundles;
* :mod:`repro.fuzz.minimize` — an AST-level shrinker over
  :func:`repro.lang.unparse.unparse` that reduces a divergent program
  while the divergence still reproduces;
* :mod:`repro.fuzz.corpus` — survivors with interesting static/dynamic
  profiles graduate into ``results/corpus/``, which the chaos CLI
  replays as an extended suite (``python -m repro.resilience --corpus``).

Driven by ``python -m repro.resilience fuzz --seed/--count/--budget/--jobs``.
"""

from .generator import FuzzConfig, FuzzProgram, fuzz_case_seed, generate_program
from .oracle import FuzzVerdict, run_fuzz_program

__all__ = [
    "FuzzConfig",
    "FuzzProgram",
    "FuzzVerdict",
    "fuzz_case_seed",
    "generate_program",
    "run_fuzz_program",
]
