"""``python -m repro.resilience fuzz`` — drive the correctness fleet.

Generates ``--count`` seeded programs, runs each through the N-way tier
matrix on every ``--targets`` ISA, captures ``fuzz-divergence`` bundles
for any mismatch, and graduates the most interesting survivors into the
corpus (``--graduate``).  Fully deterministic for a fixed
``--seed``/``--count``: the per-program seed is a crc32 digest of
``(generator version, base seed, index)``, the report is ordered by
index regardless of ``--jobs``, and a ``--jobs 4`` run prints byte-
identical output to a ``--jobs 1`` run.

    python -m repro.resilience fuzz --seed 1 --count 200 --jobs 4
    python -m repro.resilience fuzz --seed 1 --count 50 --graduate 5
    REPRO_CHAOS_FUZZ=flip:typed python -m repro.resilience fuzz --count 3

Exit code 0 when every program matches across all tiers; 1 otherwise.
``--budget`` caps wall-clock seconds (a soft stop between programs for
time-boxed CI lanes — coverage shrinks, verdicts stay deterministic).
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Optional, Tuple

from .corpus import (
    corpus_dir,
    entry_for,
    profile_score,
    save_entry,
    should_graduate,
)
from .generator import FuzzConfig, fuzz_case_seed, generate_program
from .oracle import DEFAULT_ITERATIONS, DEFAULT_TARGETS, FuzzVerdict, run_fuzz_program


def _run_case(case: Tuple[int, Tuple[str, ...], int]) -> FuzzVerdict:
    seed, targets, iterations = case
    program = generate_program(seed, FuzzConfig())
    return run_fuzz_program(
        program, targets=targets, iterations=iterations
    )


def _format_row(index: int, verdict: FuzzVerdict) -> str:
    program = verdict.program
    status = "ok" if verdict.ok else "DIVERGE"
    profile = verdict.profile
    detail = (
        f"deopts={profile.get('eager_deopts', '-')} "
        f"guards={profile.get('guard_failures', '-')} "
        f"versions={profile.get('versions_registered', '-')} "
        f"density={profile.get('check_density', '-')} "
        f"disp={profile.get('continuation_dispatches', '-')}"
        if profile
        else ""
    )
    return (
        f"[{index:>4}] {program.name} {status:<8} "
        f"idioms={','.join(program.idioms)} {detail}"
    )


def fuzz_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience fuzz",
        description="generative differential fuzzing over the executor ladder",
    )
    parser.add_argument("--seed", type=int, default=1, help="base seed")
    parser.add_argument(
        "--count", type=int, default=50, help="programs to generate"
    )
    parser.add_argument(
        "--budget", type=float, default=0.0,
        help="soft wall-clock cap in seconds (0 = unlimited)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="parallel worker processes"
    )
    parser.add_argument(
        "--targets", nargs="+", default=list(DEFAULT_TARGETS),
        help="ISAs to matrix over",
    )
    parser.add_argument(
        "--iterations", type=int, default=DEFAULT_ITERATIONS,
        help="iterations per tier run",
    )
    parser.add_argument(
        "--graduate", type=int, default=0, metavar="N",
        help="persist up to N most interesting survivors into the corpus",
    )
    parser.add_argument(
        "--corpus-dir", type=Path, default=None,
        help="corpus destination (default results/corpus or REPRO_CORPUS_DIR)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print per-tier mismatch detail"
    )
    args = parser.parse_args(argv)

    targets = tuple(args.targets)
    seeds = [fuzz_case_seed(args.seed, index) for index in range(args.count)]
    cases = [(seed, targets, args.iterations) for seed in seeds]
    print(
        f"fuzz fleet: {args.count} program(s) x {len(targets)} target(s), "
        f"base seed {args.seed}, {args.iterations} iterations, "
        f"jobs={args.jobs}"
    )

    started = time.monotonic()
    verdicts: List[Optional[FuzzVerdict]] = [None] * len(cases)
    ran = 0
    if args.jobs > 1:
        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            for index, verdict in enumerate(pool.map(_run_case, cases)):
                verdicts[index] = verdict
                ran += 1
                if args.budget and time.monotonic() - started > args.budget:
                    break
    else:
        for index, case in enumerate(cases):
            verdicts[index] = _run_case(case)
            ran += 1
            if args.budget and time.monotonic() - started > args.budget:
                break

    divergent: List[Tuple[int, FuzzVerdict]] = []
    survivors: List[Tuple[int, FuzzVerdict]] = []
    for index, verdict in enumerate(verdicts):
        if verdict is None:
            continue  # budget stop
        print(_format_row(index, verdict))
        if verdict.ok:
            survivors.append((index, verdict))
        else:
            divergent.append((index, verdict))
            if args.verbose:
                for line in verdict.mismatches[:8]:
                    print(f"    {line}")

    if ran < len(cases):
        print(f"budget stop: ran {ran}/{len(cases)} programs")

    graduated: List[str] = []
    if args.graduate > 0:
        candidates = [
            (index, verdict)
            for index, verdict in survivors
            if should_graduate(verdict.profile)
        ]
        # rank by interest, break ties by index so the pick is stable
        candidates.sort(
            key=lambda pair: (-profile_score(pair[1].profile), pair[0])
        )
        root = args.corpus_dir if args.corpus_dir is not None else corpus_dir()
        for _index, verdict in candidates[: args.graduate]:
            path = save_entry(entry_for(verdict), root)
            graduated.append(str(path))

    print(
        f"\n{len(survivors)}/{ran} programs matched across the ladder"
        + (f"; {len(graduated)} graduated into {root}" if graduated else "")
    )
    for index, verdict in divergent:
        program = verdict.program
        print(
            f"\nDIVERGE [{index}] {program.name} seed={program.seed} "
            f"idioms={','.join(program.idioms)}"
        )
        for line in verdict.mismatches[:8]:
            print(f"  {line}")
        for path in verdict.bundle_paths:
            print(f"  bundle: {path}")
    return 1 if divergent else 0


if __name__ == "__main__":
    sys.exit(fuzz_main())
