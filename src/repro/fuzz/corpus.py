"""Persisted corpus of interesting generated programs.

Programs that pass the differential matrix *and* show an interesting
speculation profile graduate into ``results/corpus/`` (override with
``REPRO_CORPUS_DIR``), one JSON file per program named after its
generator seed.  An entry records everything needed to re-run the
program without regenerating it — the canonical source — plus the
regeneration provenance (seed, generator version, config) and the
profile that justified graduation, so a later reader can tell *why*
each program is in the corpus.

Graduation is deliberately selective: a program graduates when its
profile meets at least two of the five interest criteria (deopt
traffic, guard failures, version occupancy, check density, deoptless
dispatches), and the CLI additionally caps a batch's graduates to the
top-N by :func:`profile_score` so a 200-program run doesn't dump 60
near-duplicates into the corpus.

The chaos CLI replays the corpus as an extended suite
(``python -m repro.resilience --corpus``), and the cached grid can
address corpus entries through ``repro.exec`` corpus cells.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..suite.spec import BenchmarkSpec
from .generator import GENERATOR_VERSION, FuzzConfig, FuzzProgram
from .oracle import FuzzVerdict, source_digest

#: bump when the entry payload layout changes shape
CORPUS_SCHEMA = 1

#: (profile key, threshold) — a profile meeting >= 2 graduates
INTEREST_CRITERIA: Tuple[Tuple[str, float], ...] = (
    ("eager_deopts", 8),
    ("guard_failures", 1),
    ("versions_registered", 30),
    ("check_density", 30.0),
    ("continuation_dispatches", 4),
)

#: minimum criteria met for graduation
MIN_CRITERIA = 2


def corpus_dir() -> Path:
    env = os.environ.get("REPRO_CORPUS_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / "corpus"


@dataclass(frozen=True)
class CorpusEntry:
    """One graduated program, as stored on disk."""

    name: str
    seed: int
    generator_version: int
    config: FuzzConfig
    source: str
    source_sha256: str
    idioms: Tuple[str, ...]
    profile: Dict[str, object]
    #: criteria names that justified graduation
    reasons: Tuple[str, ...]

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": CORPUS_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "generator_version": self.generator_version,
            "generator_config": self.config.to_dict(),
            "source": self.source,
            "source_sha256": self.source_sha256,
            "idioms": list(self.idioms),
            "profile": self.profile,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "CorpusEntry":
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            generator_version=int(data["generator_version"]),  # type: ignore[arg-type]
            config=FuzzConfig.from_dict(data.get("generator_config") or {}),  # type: ignore[arg-type]
            source=str(data["source"]),
            source_sha256=str(data["source_sha256"]),
            idioms=tuple(data.get("idioms") or ()),  # type: ignore[arg-type]
            profile=dict(data.get("profile") or {}),  # type: ignore[arg-type]
            reasons=tuple(data.get("reasons") or ()),  # type: ignore[arg-type]
        )

    def spec(self) -> BenchmarkSpec:
        """The entry as a directly-runnable benchmark spec."""
        return BenchmarkSpec(
            name=self.name,
            category="Objects",
            source=self.source,
            expected=None,
            description=(
                f"corpus (seed={self.seed}, " + ", ".join(self.reasons) + ")"
            ),
        )


def graduation_reasons(profile: Dict[str, object]) -> List[str]:
    """Names of the interest criteria this profile meets."""
    reasons: List[str] = []
    for key, threshold in INTEREST_CRITERIA:
        value = profile.get(key, 0)
        try:
            if float(value) >= threshold:  # type: ignore[arg-type]
                reasons.append(key)
        except (TypeError, ValueError):
            continue
    return reasons


def should_graduate(profile: Dict[str, object]) -> bool:
    return len(graduation_reasons(profile)) >= MIN_CRITERIA


def profile_score(profile: Dict[str, object]) -> float:
    """Interest ranking for capping a batch's graduates (higher = better)."""

    def metric(key: str) -> float:
        try:
            return float(profile.get(key, 0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 0.0

    return (
        metric("eager_deopts")
        + 5.0 * metric("guard_failures")
        + metric("versions_registered") / 10.0
        + metric("check_density") / 10.0
        + metric("continuation_dispatches")
    )


def entry_for(verdict: FuzzVerdict) -> CorpusEntry:
    """Build the corpus entry for a passing, interesting verdict."""
    program = verdict.program
    return CorpusEntry(
        name=program.name,
        seed=program.seed,
        generator_version=GENERATOR_VERSION,
        config=program.config,
        source=program.source,
        source_sha256=source_digest(program.source),
        idioms=program.idioms,
        profile=dict(verdict.profile),
        reasons=tuple(graduation_reasons(verdict.profile)),
    )


def save_entry(entry: CorpusEntry, root: Optional[Path] = None) -> Path:
    """Atomically persist one entry; same seed overwrites in place."""
    directory = Path(root) if root is not None else corpus_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.json"
    fd, tmp = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(entry.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_entry(path: Path) -> CorpusEntry:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "source" not in data:
        raise ValueError(f"not a corpus entry: {path}")
    return CorpusEntry.from_json(data)


def load_corpus(root: Optional[Path] = None) -> List[CorpusEntry]:
    """All corpus entries, sorted by name (deterministic order)."""
    directory = Path(root) if root is not None else corpus_dir()
    entries: List[CorpusEntry] = []
    try:
        paths = sorted(p for p in directory.iterdir() if p.suffix == ".json")
    except OSError:
        return []
    for path in paths:
        entries.append(load_entry(path))
    return entries


def corpus_benchmark(name: str, root: Optional[Path] = None) -> Optional[BenchmarkSpec]:
    """Resolve a corpus entry by benchmark name (``FZ-<seed:08x>``)."""
    directory = Path(root) if root is not None else corpus_dir()
    path = directory / f"{name}.json"
    if not path.exists():
        return None
    return load_entry(path).spec()
