"""Seeded deterministic program generator for the JS subset.

Programs are *built as ASTs* and rendered through
:func:`repro.lang.unparse.unparse`, so every generated program is by
construction inside the grammar the engine's front end accepts, and the
corpus/minimizer share one canonical text form.

Determinism contract: ``generate_program(seed)`` is a pure function of
``(seed, config)`` — same arguments produce a **byte-identical** source
string in any process, under any ``PYTHONHASHSEED``, on any worker of a
``--jobs`` pool.  All randomness flows through one ``random.Random(seed)``
(Mersenne Twister is specified and platform-stable) and seeds are derived
with the crc32 :func:`fuzz_case_seed` scheme, never ``hash()``.

The generator is biased toward the idioms the speculation ladder bets
on, each emitted with a config-controlled probability:

* ``unstable_phi`` — hot loops whose accumulator alternates SMI/double
  depending on a loop-carried condition (type-unstable phi nodes);
* ``smi_boundary`` — arithmetic that walks an accumulator across the
  2**30 SMI tagging boundary (box/unbox churn, overflow checks);
* ``poly_call`` — call sites whose target flips between helper
  functions (polymorphic feedback, call-target speculation);
* ``shape_mutation`` — property stores that add fields to *live*
  objects mid-loop (map checks, megamorphic loads);
* ``elements_transition`` — element stores that retype a packed-SMI
  array to doubles or tagged, or grow it via the append idiom
  (elements-kind checks);
* ``nested_loop`` — inner loops over array reads (trace/lbbv fodder).

Programs always define ``setup()`` and ``run()`` (the suite protocol),
terminate by construction (all loops are literal-bounded counted
loops), and never produce NaN/undefined reads, so a cross-tier value
difference is always an engine bug, not program nondeterminism.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

from ..lang import ast_nodes as ast
from ..lang.unparse import unparse

#: bump when generated-program shape changes: corpus entries and
#: fuzz-divergence bundles record it, and replay refuses on mismatch
#: (a stale bundle must not silently replay a different program).
GENERATOR_VERSION = 1

#: largest SMI under the default 31-bit tagging (2**30 - 1)
_SMI_MAX = 1073741823


@dataclass(frozen=True)
class FuzzConfig:
    """Bias knobs of the generator (all probabilities in [0, 1])."""

    version: int = GENERATOR_VERSION
    p_unstable_phi: float = 0.85
    p_smi_boundary: float = 0.7
    p_poly_call: float = 0.75
    p_shape_mutation: float = 0.65
    p_elements_transition: float = 0.65
    p_nested_loop: float = 0.45
    #: extra helper functions beyond the two poly-call targets
    max_helpers: int = 2
    #: outer hot-loop trip-count range (literal-bounded, so termination
    #: is guaranteed by construction)
    min_loop: int = 16
    max_loop: int = 56

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})  # type: ignore[arg-type]


@dataclass(frozen=True)
class FuzzProgram:
    """One generated program plus the provenance needed to regenerate it."""

    seed: int
    name: str
    source: str
    idioms: Tuple[str, ...]
    config: FuzzConfig

    @property
    def source_crc(self) -> int:
        return zlib.crc32(self.source.encode("utf-8"))


def fuzz_case_seed(base_seed: int, index: int) -> int:
    """Per-program seed digest, stable across processes and pool shards.

    crc32 over a canonical text key — the same scheme as
    :func:`repro.suite.runner.stable_seed`; ``hash()`` is salted per
    process and must never feed generation.
    """
    key = f"repro-fuzz:{GENERATOR_VERSION}:{base_seed}:{index}"
    return zlib.crc32(key.encode("utf-8"))


def program_name(seed: int) -> str:
    return f"FZ-{seed & 0xFFFFFFFF:08x}"


# ---------------------------------------------------------------------------
# tiny AST-building helpers
# ---------------------------------------------------------------------------


def _num(value) -> ast.NumberLiteral:
    if isinstance(value, int):
        return ast.NumberLiteral(value=float(value), is_integer=True)
    return ast.NumberLiteral(value=float(value), is_integer=False)


def _ident(name: str) -> ast.Identifier:
    return ast.Identifier(name=name)


def _bin(op: str, left: ast.Node, right: ast.Node) -> ast.BinaryExpression:
    return ast.BinaryExpression(operator=op, left=left, right=right)


def _assign(target: ast.Node, value: ast.Node, op: str = "=") -> ast.ExpressionStatement:
    return ast.ExpressionStatement(
        expression=ast.AssignmentExpression(operator=op, target=target, value=value)
    )


def _var(name: str, init: Optional[ast.Node]) -> ast.VariableDeclaration:
    return ast.VariableDeclaration(kind="var", declarations=[(name, init)])


def _call(callee: ast.Node, *args: ast.Node) -> ast.CallExpression:
    return ast.CallExpression(callee=callee, arguments=list(args))


def _member(obj: ast.Node, prop: str) -> ast.MemberExpression:
    return ast.MemberExpression(object=obj, property=_ident(prop), computed=False)


def _index(obj: ast.Node, key: ast.Node) -> ast.MemberExpression:
    return ast.MemberExpression(object=obj, property=key, computed=True)


def _block(statements: List[ast.Node]) -> ast.BlockStatement:
    return ast.BlockStatement(body=statements)


def _for(var: str, bound: int, body: List[ast.Node]) -> ast.ForStatement:
    return ast.ForStatement(
        init=_var(var, _num(0)),
        test=_bin("<", _ident(var), _num(bound)),
        update=ast.UpdateExpression(operator="++", target=_ident(var), prefix=False),
        body=_block(body),
    )


def _if(test: ast.Node, then: List[ast.Node],
        alt: Optional[List[ast.Node]] = None) -> ast.IfStatement:
    return ast.IfStatement(
        test=test,
        consequent=_block(then),
        alternate=None if alt is None else _block(alt),
    )


def _ret(value: ast.Node) -> ast.ReturnStatement:
    return ast.ReturnStatement(argument=value)


def _new_array(length: int) -> ast.NewExpression:
    return ast.NewExpression(callee=_ident("Array"), arguments=[_num(length)])


def _mod(expr: ast.Node, modulus: int) -> ast.Node:
    return _bin("%", expr, _num(modulus))


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------


class _Builder:
    """Accumulates one program; every rng draw is sequence-deterministic."""

    def __init__(self, rng: random.Random, config: FuzzConfig) -> None:
        self.rng = rng
        self.config = config
        self.top: List[ast.Node] = []
        self.setup: List[ast.Node] = []
        self.run: List[ast.Node] = []
        self.terms: List[str] = []  # run-local names folded into the checksum
        self.idioms: List[str] = []
        self.locals = 0
        self.loops = 0

    def fresh(self, prefix: str = "t") -> str:
        self.locals += 1
        return f"{prefix}{self.locals}"

    def loop_var(self) -> str:
        self.loops += 1
        return f"i{self.loops}"

    def trip(self) -> int:
        return self.rng.randrange(self.config.min_loop, self.config.max_loop + 1)

    # -- helper functions ------------------------------------------------

    def helper(self, name: str, flavor: str) -> None:
        x, y = _ident("x"), _ident("y")
        if flavor == "int":
            body = _mod(_bin("+", _bin("*", x, _num(self.rng.randrange(3, 97))),
                             _bin("*", y, _num(self.rng.randrange(3, 97)))), 65521)
        elif flavor == "double":
            body = _bin("+", _bin("*", x, _num(0.5)), _bin("*", y, _num(1.25)))
        else:  # "bits"
            body = _bin("&", _bin("^", x, _bin("<<", y, _num(self.rng.randrange(1, 4)))),
                        _num(1023))
        self.top.append(ast.FunctionDeclaration(
            name=name, params=["x", "y"], body=[_ret(body)]
        ))

    # -- idioms ----------------------------------------------------------

    def idiom_unstable_phi(self) -> None:
        acc = self.fresh("p")
        var = self.loop_var()
        period = self.rng.choice([2, 3, 5])
        step_d = self.rng.choice([0.5, 0.25, 1.5])
        step_i = self.rng.randrange(1, 7)
        self.run.append(_var(acc, _num(0)))
        self.run.append(_for(var, self.trip(), [
            _if(_bin("==", _mod(_ident(var), period), _num(0)),
                [_assign(_ident(acc), _bin("+", _ident(acc), _num(step_d)))],
                [_assign(_ident(acc), _bin("+", _ident(acc), _num(step_i)))]),
        ]))
        self.terms.append(acc)
        self.idioms.append("unstable_phi")

    def idiom_smi_boundary(self) -> None:
        acc = self.fresh("s")
        var = self.loop_var()
        start = _SMI_MAX - self.rng.randrange(200, 4000)
        stride = self.rng.randrange(97, 1500)
        self.run.append(_var(acc, _num(start)))
        body: List[ast.Node] = [
            _assign(_ident(acc), _bin("+", _ident(acc), _num(stride))),
            _if(_bin(">", _ident(acc), _num(_SMI_MAX)),
                [_assign(_ident(acc),
                         _bin("-", _ident(acc), _num(_SMI_MAX + stride // 2)))]),
        ]
        if self.rng.random() < 0.5:
            # multiplication overflow: 46341**2 > 2**31
            sq = self.fresh("q")
            self.run.append(_var(sq, _num(46000 + self.rng.randrange(0, 1000))))
            body.append(_assign(
                _ident(acc),
                _bin("+", _ident(acc), _mod(_bin("*", _ident(sq), _ident(sq)), 524287)),
            ))
        self.run.append(_for(var, self.trip(), body))
        self.terms.append(acc)
        self.idioms.append("smi_boundary")

    def idiom_poly_call(self, helpers: List[str]) -> None:
        acc = self.fresh("c")
        var = self.loop_var()
        f0, f1 = self.rng.sample(helpers, 2)
        k0, k1 = self.rng.randrange(1, 9), self.rng.randrange(1, 9)
        self.run.append(_var(acc, _num(0)))
        if self.rng.random() < 0.5:
            # branchy dispatch: two monomorphic sites made polymorphic by
            # the shared return-value phi
            body: List[ast.Node] = [
                _if(_bin("==", _mod(_ident(var), 2), _num(0)),
                    [_assign(_ident(acc), _bin(
                        "+", _ident(acc),
                        _call(_ident(f0), _ident(var), _num(k0))))],
                    [_assign(_ident(acc), _bin(
                        "+", _ident(acc),
                        _call(_ident(f1), _ident(var), _num(k1))))]),
            ]
        else:
            # one call site, rebinding target: classic polymorphic feedback
            fn = self.fresh("fn")
            self.run.append(_var(fn, _ident(f0)))
            body = [
                _if(_bin("==", _mod(_ident(var), 3), _num(0)),
                    [_assign(_ident(fn), _ident(f1))],
                    [_assign(_ident(fn), _ident(f0))]),
                _assign(_ident(acc), _bin(
                    "+", _ident(acc), _call(_ident(fn), _ident(var), _num(k0)))),
            ]
        self.run.append(_for(var, self.trip(), body))
        self.terms.append(acc)
        self.idioms.append("poly_call")

    def idiom_shape_mutation(self) -> None:
        count = self.rng.randrange(5, 12)
        mutate_at = self.rng.randrange(0, count)
        mutate_iter = self.rng.randrange(3, 11)
        arr = self.fresh("boxes")
        if not any(
            isinstance(node, ast.FunctionDeclaration) and node.name == "Box"
            for node in self.top
        ):
            self.top.append(ast.FunctionDeclaration(
                name="Box", params=["a", "b"],
                body=[
                    _assign(_member(ast.ThisExpression(), "a"), _ident("a")),
                    _assign(_member(ast.ThisExpression(), "b"), _ident("b")),
                ],
            ))
        self.top.append(_var(arr, _new_array(count)))
        jvar = self.loop_var()
        self.setup.append(_for(jvar, count, [
            _assign(_index(_ident(arr), _ident(jvar)),
                    ast.NewExpression(callee=_ident("Box"), arguments=[
                        _mod(_ident(jvar), 7),
                        _bin("+", _ident(jvar), _num(2)),
                    ])),
        ]))
        acc = self.fresh("m")
        box = self.fresh("b")
        var = self.loop_var()
        self.run.append(_var(acc, _num(0)))
        body: List[ast.Node] = [
            _var(box, _index(_ident(arr), _mod(_ident(var), count))),
            _assign(_ident(acc), _bin(
                "+", _ident(acc),
                _bin("+", _bin("*", _member(_ident(box), "a"), _num(3)),
                     _member(_ident(box), "b")))),
            # adds a field to a *live* object: the map of boxes[mutate_at]
            # transitions while the loop's property loads stay hot
            _if(_bin("==", _ident(var), _num(mutate_iter)),
                [_assign(_member(_index(_ident(arr), _num(mutate_at)), "extra"),
                         _num(self.rng.randrange(1, 50)))]),
        ]
        if self.rng.random() < 0.5:
            # retype a field on the same live object: SMI field -> double
            body.append(_if(
                _bin("==", _ident(var), _num(mutate_iter + 2)),
                [_assign(_member(_index(_ident(arr), _num(mutate_at)), "b"),
                         _bin("+", _member(_index(_ident(arr), _num(mutate_at)), "b"),
                              _num(0.5)))],
            ))
        self.run.append(_for(var, self.trip(), body))
        # the mutated field is always present after the loop (mutate_iter
        # is below every possible trip count), so this read is defined
        self.run.append(_assign(
            _ident(acc),
            _bin("+", _ident(acc), _member(_index(_ident(arr), _num(mutate_at)), "extra")),
        ))
        self.terms.append(acc)
        self.idioms.append("shape_mutation")

    def idiom_elements_transition(self) -> None:
        length = self.rng.randrange(16, 40)
        arr = self.fresh("ea")
        self.top.append(_var(arr, _new_array(length)))
        jvar = self.loop_var()
        self.setup.append(_for(jvar, length, [
            _assign(_index(_ident(arr), _ident(jvar)),
                    _mod(_bin("*", _ident(jvar), _num(self.rng.randrange(3, 31))), 1024)),
        ]))
        acc = self.fresh("e")
        var = self.loop_var()
        flip_iter = self.rng.randrange(4, 12)
        mode = self.rng.choice(["double", "tagged", "append", "both"])
        body: List[ast.Node] = [
            _assign(_index(_ident(arr), _mod(_ident(var), length)),
                    _mod(_bin("+", _index(_ident(arr), _mod(_ident(var), length)),
                              _ident(var)), 16384)),
            _assign(_ident(acc), _bin(
                "+", _ident(acc),
                _index(_ident(arr), _mod(_bin("*", _ident(var), _num(7)), length)))),
        ]
        if mode in ("double", "both"):
            # packed SMI -> packed double, mid-loop, on a live array
            body.append(_if(_bin("==", _ident(var), _num(flip_iter)), [
                _assign(_index(_ident(arr), _num(0)),
                        _bin("+", _index(_ident(arr), _num(0)), _num(0.25))),
            ]))
        if mode in ("tagged", "both"):
            # -> PACKED (tagged): the map transition is one-way, so
            # storing a boolean and immediately restoring an SMI retypes
            # the elements for good without poisoning later reads
            body.append(_if(_bin("==", _ident(var), _num(flip_iter + 1)), [
                _assign(_index(_ident(arr), _num(1)),
                        ast.BooleanLiteral(value=True)),
                _assign(_index(_ident(arr), _num(1)), _num(3)),
            ]))
        if mode == "append":
            # the a[a.length] = v append idiom: out-of-bounds store
            # feedback plus a push-grown backing store
            body.append(_if(_bin("==", _ident(var), _num(flip_iter + 1)), [
                _assign(_index(_ident(arr), _member(_ident(arr), "length")),
                        _num(7)),
            ]))
        self.run.append(_var(acc, _num(0)))
        self.run.append(_for(var, self.trip(), body))
        if mode == "append":
            # the first run() call appends exactly at the original length
            # and in-loop stores never touch that slot again, so this read
            # is defined and stable from the first iteration on
            self.run.append(_assign(
                _ident(acc),
                _bin("+", _ident(acc), _index(_ident(arr), _num(length))),
            ))
        self.terms.append(acc)
        self.idioms.append("elements_transition")

    def idiom_nested_loop(self, data_arrays: List[Tuple[str, int]]) -> None:
        if not data_arrays:
            return
        arr, length = data_arrays[self.rng.randrange(len(data_arrays))]
        acc = self.fresh("w")
        outer, inner = self.loop_var(), self.loop_var()
        inner_trip = self.rng.randrange(4, 12)
        self.run.append(_var(acc, _num(0)))
        self.run.append(_for(outer, self.trip(), [
            _for(inner, inner_trip, [
                _assign(_ident(acc), _mod(
                    _bin("+", _ident(acc),
                         _index(_ident(arr),
                                _mod(_bin("+", _ident(outer), _ident(inner)), length))),
                    262139)),
            ]),
        ]))
        self.terms.append(acc)
        self.idioms.append("nested_loop")


def generate_program(seed: int, config: Optional[FuzzConfig] = None) -> FuzzProgram:
    """Generate one program; pure function of ``(seed, config)``."""
    config = config or FuzzConfig()
    rng = random.Random(seed)
    builder = _Builder(rng, config)

    # helper pool (poly-call targets need >= 2 with distinct return types)
    helper_names = ["f0", "f1"]
    builder.helper("f0", "int")
    builder.helper("f1", "double")
    for extra in range(rng.randrange(0, config.max_helpers + 1)):
        name = f"f{2 + extra}"
        helper_names.append(name)
        builder.helper(name, rng.choice(["int", "bits"]))

    # data arrays idioms may index into (name, length)
    data_arrays: List[Tuple[str, int]] = []
    base_len = rng.randrange(16, 48)
    builder.top.append(_var("data0", _new_array(base_len)))
    jvar = builder.loop_var()
    builder.setup.append(_for(jvar, base_len, [
        _assign(_index(_ident("data0"), _ident(jvar)),
                _mod(_bin("*", _ident(jvar), _num(rng.randrange(5, 61))), 2048)),
    ]))
    data_arrays.append(("data0", base_len))

    # a couple of user globals so the heap snapshot has state to diff
    builder.top.append(_var("gAcc", _num(0)))
    builder.top.append(_var("gMix", _num(0)))

    chosen = [
        (config.p_unstable_phi, builder.idiom_unstable_phi),
        (config.p_smi_boundary, builder.idiom_smi_boundary),
        (config.p_poly_call, lambda: builder.idiom_poly_call(helper_names)),
        (config.p_shape_mutation, builder.idiom_shape_mutation),
        (config.p_elements_transition, builder.idiom_elements_transition),
        (config.p_nested_loop, lambda: builder.idiom_nested_loop(data_arrays)),
    ]
    emitted_any = False
    for probability, emit in chosen:
        if rng.random() < probability:
            emit()
            emitted_any = True
    if not emitted_any:
        builder.idiom_unstable_phi()

    # fold every idiom's accumulator into one integer checksum; Math.floor
    # collapses double accumulators deterministically, and every term is
    # NaN-free by construction
    checksum: List[ast.Node] = [_var("check", _num(0))]
    for term in builder.terms:
        checksum.append(_assign(
            _ident("check"),
            _mod(_bin("+", _bin("*", _ident("check"), _num(31)),
                      _call(_member(_ident("Math"), "floor"),
                            _bin("*", _ident(term), _num(64)))), 16777213),
        ))
    checksum.append(_assign(
        _ident("gAcc"), _mod(_bin("+", _ident("gAcc"), _ident("check")), 1048573)))
    checksum.append(_assign(
        _ident("gMix"), _bin("+", _ident("gMix"),
                             _bin("*", _mod(_ident("check"), 97), _num(0.125)))))
    checksum.append(_ret(_ident("check")))

    builder.top.append(ast.FunctionDeclaration(
        name="setup", params=[],
        body=list(builder.setup) or [ast.EmptyStatement()],
    ))
    builder.top.append(ast.FunctionDeclaration(
        name="run", params=[], body=list(builder.run) + checksum,
    ))

    program = ast.Program(body=builder.top)
    return FuzzProgram(
        seed=seed,
        name=program_name(seed),
        source=unparse(program),
        idioms=tuple(builder.idioms),
        config=config,
    )
