"""AST-level shrinker for divergent generated programs.

Works on the parse tree and re-renders through
:func:`repro.lang.unparse.unparse`, so every candidate is a valid
program text and the final minimized form is in the same canonical
style the corpus stores.  Two greedy passes run to a fixpoint under an
attempt budget:

* **statement deletion** — try removing each statement (innermost lists
  last, so whole loops go before their bodies are nibbled); a removal
  survives if the caller's interestingness predicate still holds;
* **literal shrinking** — try collapsing integer literals toward small
  values (0, 1, value/2), which in practice shrinks loop trip counts
  and array lengths.

The predicate receives candidate *source text* and must return True
when the divergence still reproduces.  Callers should make their
predicate reject programs that fail the baseline (interpreter) run:
deleting a ``var`` a later statement uses must not count as progress.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..lang import ast_nodes as ast
from ..lang.parser import parse
from ..lang.unparse import unparse

#: default cap on candidate evaluations (each one runs the full oracle)
DEFAULT_ATTEMPTS = 400


@dataclass
class MinimizeResult:
    source: str
    attempts: int
    #: statements deleted + literals shrunk that survived
    reductions: int

    @property
    def improved(self) -> bool:
        return self.reductions > 0


def _statement_lists(program: ast.Program) -> List[List[ast.Node]]:
    """Every mutable statement list in the tree, outermost first."""
    lists: List[List[ast.Node]] = []

    def visit_block(body: List[ast.Node]) -> None:
        lists.append(body)
        for node in body:
            visit_statement(node)

    def visit_statement(node: ast.Node) -> None:
        if isinstance(node, ast.FunctionDeclaration):
            visit_block(node.body)
        elif isinstance(node, ast.BlockStatement):
            visit_block(node.body)
        elif isinstance(node, ast.IfStatement):
            visit_statement(node.consequent)
            if node.alternate is not None:
                visit_statement(node.alternate)
        elif isinstance(node, (ast.WhileStatement, ast.DoWhileStatement)):
            visit_statement(node.body)
        elif isinstance(node, ast.ForStatement):
            visit_statement(node.body)

    visit_block(program.body)
    return lists


def _number_literals(program: ast.Program) -> List[ast.NumberLiteral]:
    """Every integer literal > 1, in source order."""
    found: List[ast.NumberLiteral] = []

    def visit(node: object) -> None:
        if isinstance(node, ast.NumberLiteral):
            if node.is_integer and node.value > 1:
                found.append(node)
            return
        if isinstance(node, ast.Node):
            for name in node.__dataclass_fields__:
                visit(getattr(node, name))
        elif isinstance(node, (list, tuple)):
            for item in node:
                visit(item)

    visit(program)
    return found


def minimize_source(
    source: str,
    is_interesting: Callable[[str], bool],
    max_attempts: int = DEFAULT_ATTEMPTS,
) -> MinimizeResult:
    """Greedy fixpoint shrink of ``source`` under ``is_interesting``.

    Deterministic: candidate order is a pure function of the current
    tree, and the predicate is assumed deterministic (the whole fuzz
    stack is).  Never returns an uninteresting program — if even the
    input fails the predicate, the input is returned unchanged.
    """
    attempts = 0
    reductions = 0
    if not is_interesting(source):
        return MinimizeResult(source=source, attempts=1, reductions=0)

    current = parse(source)
    changed = True
    while changed and attempts < max_attempts:
        changed = False

        # pass 1: statement deletion, scanning lists outermost-first and
        # statements last-to-first (tail statements — checksum folds,
        # extra idioms — are the cheapest to lose)
        for list_index in range(len(_statement_lists(current))):
            lists = _statement_lists(current)
            if list_index >= len(lists):
                break
            body = lists[list_index]
            position = len(body) - 1
            while position >= 0 and attempts < max_attempts:
                if len(body) <= 1 and body is not current.body:
                    break  # keep function bodies non-empty
                candidate = copy.deepcopy(current)
                candidate_body = _statement_lists(candidate)[list_index]
                del candidate_body[position]
                attempts += 1
                if is_interesting(unparse(candidate)):
                    current = candidate
                    body = _statement_lists(current)[list_index]
                    reductions += 1
                    changed = True
                position -= 1

        # pass 2: integer-literal shrinking (loop bounds, array lengths)
        literal_index = 0
        while attempts < max_attempts:
            literals = _number_literals(current)
            if literal_index >= len(literals):
                break
            value = int(literals[literal_index].value)
            shrunk = False
            for replacement in _shrink_values(value):
                candidate = copy.deepcopy(current)
                target = _number_literals(candidate)[literal_index]
                object.__setattr__(target, "value", float(replacement))
                attempts += 1
                if is_interesting(unparse(candidate)):
                    current = candidate
                    reductions += 1
                    changed = True
                    shrunk = True
                    break
                if attempts >= max_attempts:
                    break
            if not shrunk:
                literal_index += 1

    return MinimizeResult(
        source=unparse(current), attempts=attempts, reductions=reductions
    )


def _shrink_values(value: int) -> Tuple[int, ...]:
    """Candidate replacements for an integer literal, most aggressive
    first; deduplicated, all strictly smaller than ``value``."""
    candidates = []
    for proposal in (0, 1, 2, value // 2):
        if 0 <= proposal < value and proposal not in candidates:
            candidates.append(proposal)
    return tuple(candidates)
