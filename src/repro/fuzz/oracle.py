"""N-way differential oracle over generated programs.

Every generated program runs through the full executor ladder
(:data:`repro.resilience.oracle.EXECUTOR_LADDER`) on every requested ISA
target, and the matrix demands bitwise-identical per-iteration values,
post-run globals snapshots, and — among the classic-bailout tiers —
eager-deopt event streams.  A divergence captures a replayable
``fuzz-divergence`` crash bundle carrying the generator seed and config
(regeneration provenance), the source and its sha256 (so replay can
prove it re-runs the same program), and the mismatch details.

``REPRO_CHAOS_FUZZ=flip:<tier>`` is the seeded fault: it corrupts the
named tier's last collected value before comparison, forcing a
divergence through the *entire* pipeline — capture, replay, minimize —
which is how CI proves the fleet would actually catch a real bug.  The
tamper keys on the tier name only (never the program), so a shrunken
program still diverges and the minimizer can make progress.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine import EngineConfig
from ..resilience.faults import FaultPlan
from ..resilience.oracle import EXECUTOR_LADDER, MatrixOutcome, TierSpec, matrix_run
from ..suite.runner import BenchmarkRunner, NoiseModel
from ..suite.spec import BenchmarkSpec
from .generator import GENERATOR_VERSION, FuzzProgram

#: ISAs the fleet exercises by default (the paper's two targets)
DEFAULT_TARGETS: Tuple[str, ...] = ("arm64", "x64")

#: iterations per tier run — enough to tier all the way up under the
#: fuzz thresholds below and still take a post-warm-up mutation or two
DEFAULT_ITERATIONS = 14

#: marker value the seeded REPRO_CHAOS_FUZZ tamper plants (recognizable
#: in bundles and obviously impossible for a generated checksum)
TAMPER_MARKER = -123456789.5


def fuzz_base_config() -> EngineConfig:
    """Engine base config for fuzz runs: aggressive tier-up thresholds so
    a 14-iteration run still exercises every executor."""
    return EngineConfig(tierup_invocations=3, tierup_backedges=200)


def fuzz_spec(program: FuzzProgram) -> BenchmarkSpec:
    """A generated program as a directly-runnable (unregistered) spec."""
    return BenchmarkSpec(
        name=program.name,
        category="Objects",
        source=program.source,
        expected=None,
        description=f"generated (seed={program.seed})",
    )


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def parse_tamper(value: Optional[str] = None) -> Optional[str]:
    """Parse ``REPRO_CHAOS_FUZZ`` (``flip:<tier>``) into a tier name."""
    raw = os.environ.get("REPRO_CHAOS_FUZZ", "") if value is None else value
    if not raw:
        return None
    if raw.startswith("flip:"):
        return raw[len("flip:"):]
    raise ValueError(
        f"REPRO_CHAOS_FUZZ={raw!r}: expected 'flip:<tier>'"
    )


def _tamper_for(tier_name: Optional[str]):
    if tier_name is None:
        return None

    def tamper(name: str, values: List[object]) -> List[object]:
        if name == tier_name and values:
            values[-1] = TAMPER_MARKER
        return values

    return tamper


@dataclass
class FuzzVerdict:
    """Verdict of one generated program across targets and tiers."""

    program: FuzzProgram
    ok: bool
    targets: Tuple[str, ...]
    iterations: int
    #: target -> full ladder outcome
    matrices: Dict[str, MatrixOutcome]
    #: interestingness profile from a dedicated lbbv+deoptless run
    profile: Dict[str, object] = field(default_factory=dict)
    #: captured fuzz-divergence bundle paths (one per diverging target)
    bundle_paths: List[str] = field(default_factory=list)

    @property
    def mismatches(self) -> List[str]:
        out: List[str] = []
        for target in self.targets:
            matrix = self.matrices.get(target)
            if matrix is not None:
                out.extend(f"{target}:{m}" for m in matrix.mismatches)
        return out


def collect_profile(
    program: FuzzProgram,
    target: str = "arm64",
    iterations: int = DEFAULT_ITERATIONS,
) -> Dict[str, object]:
    """Static/dynamic interestingness profile of a generated program.

    One dedicated run with the whole ladder live (lbbv + deoptless):
    check density from the optimizer's emitted code, eager-deopt count,
    version-table occupancy and guard traffic from
    ``typed_check_stats()``, and continuation dispatches.
    """
    config = EXECUTOR_LADDER[-1].apply(
        dataclasses.replace(fuzz_base_config(), target=target)
    )
    runner = BenchmarkRunner(fuzz_spec(program), config, NoiseModel(enabled=False))
    result = runner.run(iterations=iterations)
    engine = runner.last_engine
    assert engine is not None
    typed = engine.typed_check_stats()
    body = max(1, result.code_stats["body_instructions"])
    resilience = engine.resilience_stats()
    return {
        "check_instructions": result.code_stats["check_instructions"],
        "body_instructions": result.code_stats["body_instructions"],
        "check_density": round(
            100.0 * result.code_stats["check_instructions"] / body, 2
        ),
        "eager_deopts": len(result.deopts),
        "guard_failures": typed["guard_failures"],
        "versions_registered": typed["versions_registered"],
        "version_widenings": typed["version_widenings"],
        "continuation_dispatches": int(
            resilience["continuation_dispatches"]  # type: ignore[index]
        ),
        "idioms": list(program.idioms),
    }


def run_fuzz_program(
    program: FuzzProgram,
    targets: Tuple[str, ...] = DEFAULT_TARGETS,
    iterations: int = DEFAULT_ITERATIONS,
    tiers: Tuple[TierSpec, ...] = EXECUTOR_LADDER,
    capture: bool = True,
    with_profile: bool = True,
) -> FuzzVerdict:
    """Run one generated program through the tier matrix on every target.

    No faults are injected (an empty plan): the program's own idioms are
    the speculation stressors, and any cross-tier difference is an
    engine bug by the generator's determinism contract.  Divergences
    capture ``fuzz-divergence`` bundles unless ``capture=False``.
    """
    spec = fuzz_spec(program)
    tamper = _tamper_for(parse_tamper())
    matrices: Dict[str, MatrixOutcome] = {}
    bundle_paths: List[str] = []
    for target in targets:
        plan = FaultPlan(benchmark=program.name, seed=program.seed, faults=())
        matrix = matrix_run(
            spec,
            target=target,
            plan=plan,
            iterations=iterations,
            base_config=fuzz_base_config(),
            tiers=tiers,
            capture=False,
            tamper=tamper,
        )
        matrices[target] = matrix
        if not matrix.ok and capture:
            path = _capture_fuzz_bundle(program, target, iterations, matrix)
            if path is not None:
                bundle_paths.append(str(path))

    ok = all(matrix.ok for matrix in matrices.values())
    profile: Dict[str, object] = {}
    if ok and with_profile:
        profile = collect_profile(program, targets[0], iterations)
    return FuzzVerdict(
        program=program,
        ok=ok,
        targets=tuple(targets),
        iterations=iterations,
        matrices=matrices,
        profile=profile,
        bundle_paths=bundle_paths,
    )


def _capture_fuzz_bundle(
    program: FuzzProgram,
    target: str,
    iterations: int,
    matrix: MatrixOutcome,
):
    from ..supervise.bundles import capture_bundle

    per_tier = {
        name: {
            "ok": outcome.ok,
            "eager_deopts": outcome.eager_deopts,
            "continuation_dispatches": outcome.continuation_dispatches,
            "mismatches": list(outcome.mismatches),
            "error": outcome.error,
        }
        for name, outcome in matrix.tiers.items()
    }
    return capture_bundle("fuzz-divergence", {
        "benchmark": program.name,
        "target": target,
        "iterations": iterations,
        "generator_seed": program.seed,
        "generator_version": GENERATOR_VERSION,
        "generator_config": program.config.to_dict(),
        "source": program.source,
        "source_sha256": source_digest(program.source),
        "idioms": list(program.idioms),
        "baseline": matrix.baseline,
        "tiers": per_tier,
        "mismatches": matrix.mismatches[:10],
    })
