"""Interpreter tier: bytecode execution, type feedback, builtins."""

from .feedback import (
    BinaryOpSlot,
    CallSlot,
    ElementSlot,
    FeedbackVector,
    GlobalSlot,
    ICState,
    OperandFeedback,
    PropertySlot,
)
from .interpreter import INTERP_BASE_COST, Interpreter

__all__ = [
    "BinaryOpSlot",
    "CallSlot",
    "ElementSlot",
    "FeedbackVector",
    "GlobalSlot",
    "ICState",
    "INTERP_BASE_COST",
    "Interpreter",
    "OperandFeedback",
    "PropertySlot",
]
