"""Builtin functions (V8's Torque-built builtins, approximated).

V8 implements common operations — ``Math.*``, string methods, array
methods, ``RegExp`` — as builtins compiled ahead of time; they run outside
JIT-compiled JavaScript and contain no deoptimization checks.  The paper
leans on this: string/regex-heavy benchmarks show low check overhead
because their work happens in builtins (Section III-A), and Section VII
measures builtins at up to 8 % of time in string-intensive workloads.

Each builtin charges cycles proportional to the work it performs; the
engine books them in the ``builtin`` bucket so experiments can report the
builtin share of execution time.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from ..lang.errors import JSTypeError
from ..values.heap import Heap
from ..values.maps import ElementsKind, InstanceType
from ..values.tagged import is_smi, pointer_untag
from . import runtime

#: A native implementation: (engine, this_word, args) -> (result_word, cycles)
NativeFn = Callable[[object, int, List[int]], Tuple[int, int]]


class DeterministicRandom:
    """xorshift128+ style PRNG so benchmark runs are reproducible."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        self.state0 = seed & 0xFFFFFFFFFFFFFFFF
        self.state1 = (seed * 0x2545F4914F6CDD1D + 0x1234567) & 0xFFFFFFFFFFFFFFFF

    def next_float(self) -> float:
        s1 = self.state0
        s0 = self.state1
        self.state0 = s0
        s1 ^= (s1 << 23) & 0xFFFFFFFFFFFFFFFF
        s1 ^= s1 >> 17
        s1 ^= s0
        s1 ^= s0 >> 26
        self.state1 = s1
        return ((self.state0 + self.state1) & 0xFFFFFFFFFFFFFFFF) / float(1 << 64)


# ---------------------------------------------------------------------------
# Math builtins
# ---------------------------------------------------------------------------


def _num(engine, word: int) -> float:
    return runtime.js_to_number(engine.heap, word)


def _math_unary(fn: Callable[[float], float], cost: int) -> NativeFn:
    def impl(engine, _this: int, args: List[int]) -> Tuple[int, int]:
        value = fn(_num(engine, args[0])) if args else float("nan")
        return engine.heap.number_from_float(value), cost

    return impl


def _math_floor(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    value = _num(engine, args[0]) if args else float("nan")
    if math.isnan(value) or math.isinf(value):
        return engine.heap.number_from_float(value), 6
    return engine.heap.number_from_float(float(math.floor(value))), 6


def _math_ceil(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    value = _num(engine, args[0]) if args else float("nan")
    if math.isnan(value) or math.isinf(value):
        return engine.heap.number_from_float(value), 6
    return engine.heap.number_from_float(float(math.ceil(value))), 6


def _math_round(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    value = _num(engine, args[0]) if args else float("nan")
    if math.isnan(value) or math.isinf(value):
        return engine.heap.number_from_float(value), 8
    return engine.heap.number_from_float(float(math.floor(value + 0.5))), 8


def _math_abs(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    return engine.heap.number_from_float(abs(_num(engine, args[0]))), 4


def _math_sqrt(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    value = _num(engine, args[0])
    result = math.sqrt(value) if value >= 0 else float("nan")
    return engine.heap.number_from_float(result), 18


def _math_pow(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    base = _num(engine, args[0])
    exponent = _num(engine, args[1]) if len(args) > 1 else float("nan")
    try:
        result = math.pow(base, exponent)
    except (OverflowError, ValueError):
        result = float("nan") if base < 0 else float("inf")
    return engine.heap.number_from_float(result), 40


def _math_min(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    values = [_num(engine, a) for a in args]
    if not values:
        return engine.heap.number_from_float(float("inf")), 4
    if any(math.isnan(v) for v in values):
        return engine.heap.number_from_float(float("nan")), 4
    return engine.heap.number_from_float(min(values)), 4 + len(values)


def _math_max(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    values = [_num(engine, a) for a in args]
    if not values:
        return engine.heap.number_from_float(float("-inf")), 4
    if any(math.isnan(v) for v in values):
        return engine.heap.number_from_float(float("nan")), 4
    return engine.heap.number_from_float(max(values)), 4 + len(values)


def _math_random(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    return engine.heap.alloc_number(engine.random.next_float()), 12


def _math_imul(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    a = runtime.js_to_int32(_num(engine, args[0]))
    b = runtime.js_to_int32(_num(engine, args[1])) if len(args) > 1 else 0
    return engine.heap.number_from_float(float(runtime.js_to_int32(float(a * b)))), 4


def _safe_log(v: float) -> float:
    if v < 0:
        return float("nan")
    if v == 0:
        return float("-inf")
    return math.log(v)


MATH_BUILTINS: Dict[str, NativeFn] = {
    "floor": _math_floor,
    "ceil": _math_ceil,
    "round": _math_round,
    "abs": _math_abs,
    "sqrt": _math_sqrt,
    "pow": _math_pow,
    "min": _math_min,
    "max": _math_max,
    "random": _math_random,
    "imul": _math_imul,
    "sin": _math_unary(math.sin, 30),
    "cos": _math_unary(math.cos, 30),
    "tan": _math_unary(math.tan, 35),
    "atan": _math_unary(math.atan, 30),
    "asin": _math_unary(lambda v: math.asin(v) if -1 <= v <= 1 else float("nan"), 30),
    "acos": _math_unary(lambda v: math.acos(v) if -1 <= v <= 1 else float("nan"), 30),
    "exp": _math_unary(math.exp, 30),
    "log": _math_unary(_safe_log, 30),
}

MATH_CONSTANTS = {"PI": math.pi, "E": math.e, "LN2": math.log(2.0), "SQRT2": math.sqrt(2.0)}


# ---------------------------------------------------------------------------
# String methods
# ---------------------------------------------------------------------------


def _this_string(engine, this: int) -> str:
    return engine.heap.string_value(this)


def string_method(engine, this: int, name: str, args: List[int]) -> Tuple[int, int]:
    heap: Heap = engine.heap
    text = _this_string(engine, this)
    if name == "charCodeAt":
        index = int(_num(engine, args[0])) if args else 0
        if 0 <= index < len(text):
            return heap.to_word(ord(text[index])), 6
        return heap.number_from_float(float("nan")), 6
    if name == "charAt":
        index = int(_num(engine, args[0])) if args else 0
        char = text[index] if 0 <= index < len(text) else ""
        return heap.alloc_string(char), 8
    if name == "indexOf":
        needle = runtime.js_to_string(heap, args[0]) if args else "undefined"
        start = int(_num(engine, args[1])) if len(args) > 1 else 0
        return heap.to_word(text.find(needle, start)), 8 + len(text) // 4
    if name == "lastIndexOf":
        needle = runtime.js_to_string(heap, args[0]) if args else "undefined"
        return heap.to_word(text.rfind(needle)), 8 + len(text) // 4
    if name == "substring":
        start = max(0, int(_num(engine, args[0]))) if args else 0
        end = int(_num(engine, args[1])) if len(args) > 1 else len(text)
        end = max(0, min(end, len(text)))
        start = min(start, len(text))
        if start > end:
            start, end = end, start
        return heap.alloc_string(text[start:end]), 8 + (end - start) // 4
    if name == "slice":
        start = int(_num(engine, args[0])) if args else 0
        end = int(_num(engine, args[1])) if len(args) > 1 else len(text)
        return heap.alloc_string(text[start:end] if start >= 0 or end >= 0 else ""), 8
    if name == "split":
        if not args:
            return heap.to_word([text]), 10
        separator = runtime.js_to_string(heap, args[0])
        pieces = list(text) if separator == "" else text.split(separator)
        result = heap.alloc_array(ElementsKind.PACKED, len(pieces))
        for i, piece in enumerate(pieces):
            heap.array_set(result, i, heap.alloc_string(piece))
        return result, 12 + 2 * len(pieces) + len(text) // 4
    if name == "toUpperCase":
        return heap.alloc_string(text.upper()), 6 + len(text) // 2
    if name == "toLowerCase":
        return heap.alloc_string(text.lower()), 6 + len(text) // 2
    if name == "trim":
        return heap.alloc_string(text.strip()), 6 + len(text) // 4
    if name == "concat":
        for arg in args:
            text = text + runtime.js_to_string(heap, arg)
        return heap.alloc_string(text), 6 + len(text) // 4
    if name == "repeat":
        count = int(_num(engine, args[0])) if args else 0
        return heap.alloc_string(text * max(0, count)), 6 + len(text) * max(0, count) // 4
    if name == "startsWith":
        needle = runtime.js_to_string(heap, args[0]) if args else ""
        return (heap.true_value if text.startswith(needle) else heap.false_value), 6
    if name == "endsWith":
        needle = runtime.js_to_string(heap, args[0]) if args else ""
        return (heap.true_value if text.endswith(needle) else heap.false_value), 6
    if name == "replace":
        return _string_replace(engine, text, args)
    if name == "match":
        return _string_match(engine, text, args)
    if name == "search":
        regex = engine.regex_from_word(args[0]) if args else None
        if regex is None:
            raise JSTypeError("String.search expects a RegExp")
        regex.steps = 0
        result = regex.search(text)
        cost = 10 + regex.steps * 2
        return heap.to_word(result.start if result else -1), cost
    raise JSTypeError(f"unknown string method {name!r}")


def _string_replace(engine, text: str, args: List[int]) -> Tuple[int, int]:
    heap: Heap = engine.heap
    if not args:
        return heap.alloc_string(text), 4
    replacement = runtime.js_to_string(heap, args[1]) if len(args) > 1 else "undefined"
    regex = engine.regex_from_word(args[0])
    if regex is not None:
        regex.steps = 0
        replaced = regex.replace(text, replacement)
        return heap.alloc_string(replaced), 12 + regex.steps * 2
    needle = runtime.js_to_string(heap, args[0])
    return heap.alloc_string(text.replace(needle, replacement, 1)), 10 + len(text) // 4


def _string_match(engine, text: str, args: List[int]) -> Tuple[int, int]:
    heap: Heap = engine.heap
    regex = engine.regex_from_word(args[0]) if args else None
    if regex is None:
        raise JSTypeError("String.match expects a RegExp")
    regex.steps = 0
    if regex.is_global:
        matches = regex.find_all(text)
        cost = 12 + regex.steps * 2
        if not matches:
            return heap.null, cost
        result = heap.alloc_array(ElementsKind.PACKED, len(matches))
        for i, m in enumerate(matches):
            heap.array_set(result, i, heap.alloc_string(m.matched))
        return result, cost
    match = regex.search(text)
    cost = 12 + regex.steps * 2
    if match is None:
        return heap.null, cost
    result = heap.alloc_array(ElementsKind.PACKED, 1 + match.group_count)
    heap.array_set(result, 0, heap.alloc_string(match.matched))
    for g in range(1, match.group_count + 1):
        group = match.group(g)
        heap.array_set(
            result, g, heap.alloc_string(group) if group is not None else heap.undefined
        )
    return result, cost


# ---------------------------------------------------------------------------
# Array methods
# ---------------------------------------------------------------------------


def array_method(engine, this: int, name: str, args: List[int]) -> Tuple[int, int]:
    heap: Heap = engine.heap
    if name == "push":
        length = 0
        for arg in args:
            length = heap.array_push(this, arg)
        return heap.to_word(length), 10 + 4 * len(args)
    if name == "pop":
        length = heap.array_length(this)
        if length == 0:
            return heap.undefined, 8
        value = heap.array_get(this, length - 1)
        addr = pointer_untag(this)
        from ..values.heap import JS_ARRAY_LENGTH_OFFSET

        heap.write(addr, JS_ARRAY_LENGTH_OFFSET, heap.to_word(length - 1))
        return value, 10
    if name == "join":
        separator = runtime.js_to_string(heap, args[0]) if args else ","
        length = heap.array_length(this)
        pieces = [
            runtime.js_to_string(heap, heap.array_get(this, i)) for i in range(length)
        ]
        text = separator.join(pieces)
        return heap.alloc_string(text), 10 + 3 * length + len(text) // 4
    if name == "indexOf":
        needle = args[0] if args else heap.undefined
        length = heap.array_length(this)
        for i in range(length):
            equal, _fb = runtime.js_strict_equals(heap, heap.array_get(this, i), needle)
            if equal:
                return heap.to_word(i), 8 + 2 * (i + 1)
        return heap.to_word(-1), 8 + 2 * length
    if name == "slice":
        length = heap.array_length(this)
        start = int(_num(engine, args[0])) if args else 0
        end = int(_num(engine, args[1])) if len(args) > 1 else length
        if start < 0:
            start += length
        if end < 0:
            end += length
        start = max(0, min(start, length))
        end = max(start, min(end, length))
        kind = heap.map_of(pointer_untag(this)).elements_kind
        result = heap.alloc_array(kind, end - start)
        for i in range(start, end):
            heap.array_set(result, i - start, heap.array_get(this, i))
        return result, 10 + 3 * (end - start)
    if name == "fill":
        value = args[0] if args else heap.undefined
        length = heap.array_length(this)
        for i in range(length):
            heap.array_set(this, i, value)
        return this, 6 + 2 * length
    if name == "reverse":
        length = heap.array_length(this)
        words = [heap.array_get(this, i) for i in range(length)]
        for i, word in enumerate(reversed(words)):
            heap.array_set(this, i, word)
        return this, 6 + 3 * length
    if name == "sort":
        return _array_sort(engine, this, args)
    if name == "concat":
        length = heap.array_length(this)
        extra = []
        for arg in args:
            if not is_smi(arg) and heap.map_of(pointer_untag(arg)).instance_type == InstanceType.JS_ARRAY:
                extra.extend(heap.array_get(arg, i) for i in range(heap.array_length(arg)))
            else:
                extra.append(arg)
        result = heap.alloc_array(ElementsKind.PACKED, length + len(extra))
        for i in range(length):
            heap.array_set(result, i, heap.array_get(this, i))
        for i, word in enumerate(extra):
            heap.array_set(result, length + i, word)
        return result, 10 + 3 * (length + len(extra))
    raise JSTypeError(f"unknown array method {name!r}")


def _array_sort(engine, this: int, args: List[int]) -> Tuple[int, int]:
    import functools

    heap: Heap = engine.heap
    length = heap.array_length(this)
    words = [heap.array_get(this, i) for i in range(length)]
    if args and not is_smi(args[0]):
        comparator = args[0]

        def compare(a: int, b: int) -> int:
            result = engine.call_value(comparator, heap.undefined, [a, b], None)
            value = runtime.js_to_number(heap, result)
            return -1 if value < 0 else (1 if value > 0 else 0)

        words.sort(key=functools.cmp_to_key(compare))
    else:
        words.sort(key=lambda w: runtime.js_to_string(heap, w))
    for i, word in enumerate(words):
        heap.array_set(this, i, word)
    import math as _math

    cost = 12 + int(6 * length * max(1.0, _math.log2(length) if length > 1 else 1.0))
    return this, cost


# ---------------------------------------------------------------------------
# Global namespace builtins
# ---------------------------------------------------------------------------


def _parse_int(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    heap: Heap = engine.heap
    text = runtime.js_to_string(heap, args[0]).strip() if args else ""
    radix = int(_num(engine, args[1])) if len(args) > 1 else 10
    if radix == 0:
        radix = 10
    sign = 1
    if text[:1] in "+-":
        if text[0] == "-":
            sign = -1
        text = text[1:]
    if radix == 16 and text[:2].lower() == "0x":
        text = text[2:]
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:radix]
    end = 0
    while end < len(text) and text[end].lower() in digits:
        end += 1
    if end == 0:
        return heap.number_from_float(float("nan")), 10
    return heap.number_from_float(float(sign * int(text[:end], radix))), 10 + end


def _parse_float(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    heap: Heap = engine.heap
    text = runtime.js_to_string(heap, args[0]).strip() if args else ""
    import re as _re

    match = _re.match(r"[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?", text)
    if not match:
        return heap.number_from_float(float("nan")), 10
    return heap.number_from_float(float(match.group(0))), 10 + len(match.group(0))


def _is_nan(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    value = _num(engine, args[0]) if args else float("nan")
    heap = engine.heap
    return (heap.true_value if math.isnan(value) else heap.false_value), 4


def _print(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    heap: Heap = engine.heap
    text = " ".join(runtime.js_to_string(heap, arg) for arg in args)
    engine.print_output.append(text)
    return heap.undefined, 10


def _string_from_char_code(engine, _this: int, args: List[int]) -> Tuple[int, int]:
    heap: Heap = engine.heap
    text = "".join(chr(int(_num(engine, arg)) & 0xFFFF) for arg in args)
    return heap.alloc_string(text), 6 + 2 * len(args)


GLOBAL_BUILTINS: Dict[str, NativeFn] = {
    "parseInt": _parse_int,
    "parseFloat": _parse_float,
    "isNaN": _is_nan,
    "print": _print,
}
