"""Type-feedback vectors collected by the interpreter tier.

Ignition records, per bytecode site, what operand types it has seen.  The
optimizing compiler reads this to decide *what to speculate on* — and every
speculation becomes a deoptimization check in the generated code, which is
precisely the quantity the paper measures.

The lattices mirror V8's:

* binary/compare ops: ``NONE -> SIGNED_SMALL -> NUMBER -> (STRING) -> ANY``
* property/element accesses: uninitialized -> monomorphic -> polymorphic(<=4)
  -> megamorphic
* calls: uninitialized -> monomorphic target -> megamorphic
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Optional

from ..values.maps import Map

POLYMORPHIC_LIMIT = 4


class OperandFeedback(IntEnum):
    """Lattice for arithmetic/compare sites (order = generality)."""

    NONE = 0
    SIGNED_SMALL = 1  # both operands and result were SMIs
    NUMBER = 2  # numeric, but not always SMI
    STRING = 3
    ANY = 4

    def union(self, other: "OperandFeedback") -> "OperandFeedback":
        if self == OperandFeedback.NONE:
            return other
        if other == OperandFeedback.NONE:
            return self
        if self == other:
            return self
        both = {self, other}
        if both <= {OperandFeedback.SIGNED_SMALL, OperandFeedback.NUMBER}:
            return OperandFeedback.NUMBER
        return OperandFeedback.ANY


class ICState(IntEnum):
    """Inline-cache state for property/element/call sites."""

    UNINITIALIZED = 0
    MONOMORPHIC = 1
    POLYMORPHIC = 2
    MEGAMORPHIC = 3


class BinaryOpSlot:
    """Feedback for one arithmetic/compare site."""

    __slots__ = ("state",)

    def __init__(self) -> None:
        self.state = OperandFeedback.NONE

    def record(self, observed: OperandFeedback) -> None:
        self.state = self.state.union(observed)


class PropertySlot:
    """Feedback for a named property load/store site."""

    __slots__ = ("state", "maps", "offsets", "saw_transition")

    def __init__(self) -> None:
        self.state = ICState.UNINITIALIZED
        self.maps: List[Map] = []
        self.offsets: List[int] = []
        self.saw_transition = False

    def record(self, receiver_map: Map, offset: int, transition: bool = False) -> None:
        if transition:
            self.saw_transition = True
        if self.state == ICState.MEGAMORPHIC:
            return
        if receiver_map in self.maps:
            index = self.maps.index(receiver_map)
            if self.offsets[index] != offset:
                # Same map, different slot should be impossible; defensive.
                self.state = ICState.MEGAMORPHIC
            return
        if len(self.maps) >= POLYMORPHIC_LIMIT:
            self.state = ICState.MEGAMORPHIC
            self.maps = []
            self.offsets = []
            return
        self.maps.append(receiver_map)
        self.offsets.append(offset)
        self.state = (
            ICState.MONOMORPHIC if len(self.maps) == 1 else ICState.POLYMORPHIC
        )

    @property
    def monomorphic_map(self) -> Optional[Map]:
        return self.maps[0] if self.state == ICState.MONOMORPHIC else None


class ElementSlot:
    """Feedback for an indexed element load/store site."""

    __slots__ = ("state", "maps", "saw_out_of_bounds", "saw_non_smi_index")

    def __init__(self) -> None:
        self.state = ICState.UNINITIALIZED
        self.maps: List[Map] = []
        self.saw_out_of_bounds = False
        self.saw_non_smi_index = False

    def record(self, receiver_map: Map) -> None:
        if self.state == ICState.MEGAMORPHIC:
            return
        if receiver_map in self.maps:
            return
        if len(self.maps) >= POLYMORPHIC_LIMIT:
            self.state = ICState.MEGAMORPHIC
            self.maps = []
            return
        self.maps.append(receiver_map)
        self.state = (
            ICState.MONOMORPHIC if len(self.maps) == 1 else ICState.POLYMORPHIC
        )

    @property
    def monomorphic_map(self) -> Optional[Map]:
        return self.maps[0] if self.state == ICState.MONOMORPHIC else None


class CallSlot:
    """Feedback for a call/construct site (monomorphic target tracking)."""

    __slots__ = (
        "state",
        "target_shared_index",
        "is_method",
        "method_kind",
        "receiver_map",
        "method_offset",
    )

    def __init__(self) -> None:
        self.state = ICState.UNINITIALIZED
        self.target_shared_index = -1
        self.is_method = False
        # For method calls on primitives: ("string", "charCodeAt") etc.
        self.method_kind: Optional[tuple] = None
        # For method calls on JS objects: receiver map + method slot offset.
        self.receiver_map: Optional[Map] = None
        self.method_offset = -1

    def record_target(self, shared_index: int) -> None:
        if self.state == ICState.UNINITIALIZED:
            self.state = ICState.MONOMORPHIC
            self.target_shared_index = shared_index
        elif (
            self.state == ICState.MONOMORPHIC
            and self.target_shared_index != shared_index
        ):
            self.state = ICState.MEGAMORPHIC
            self.target_shared_index = -1

    def record_primitive_method(
        self, receiver_kind: str, method: str, receiver_map: Optional[Map] = None
    ) -> None:
        key = (receiver_kind, method)
        if self.state == ICState.UNINITIALIZED:
            self.state = ICState.MONOMORPHIC
            self.method_kind = key
            self.receiver_map = receiver_map
        elif self.state == ICState.MONOMORPHIC and (
            self.method_kind != key
            or (receiver_map is not None and self.receiver_map is not receiver_map)
        ):
            self.state = ICState.MEGAMORPHIC
            self.method_kind = None
            self.receiver_map = None

    def record_object_method(
        self, receiver_map: Map, method_offset: int, shared_index: int
    ) -> None:
        if self.state == ICState.UNINITIALIZED:
            self.state = ICState.MONOMORPHIC
            self.is_method = True
            self.receiver_map = receiver_map
            self.method_offset = method_offset
            self.target_shared_index = shared_index
        elif self.state == ICState.MONOMORPHIC and (
            self.receiver_map is not receiver_map
            or self.method_offset != method_offset
            or self.target_shared_index != shared_index
        ):
            self.state = ICState.MEGAMORPHIC
            self.receiver_map = None
            self.method_offset = -1
            self.target_shared_index = -1


class GlobalSlot:
    """Feedback for a global load: caches the global cell index."""

    __slots__ = ("cell_index",)

    def __init__(self) -> None:
        self.cell_index = -1


class FeedbackVector:
    """One per function instance; indexed by the bytecode's feedback slots.

    Slots are created lazily with the right shape on first use, since the
    compiler hands out a flat slot numbering.
    """

    def __init__(self, slot_count: int) -> None:
        self.slots: List[object] = [None] * slot_count
        #: Total interpreted bytecodes executed for this function (profiling).
        self.interpreted_ops = 0

    def binary(self, index: int) -> BinaryOpSlot:
        slot = self.slots[index]
        if slot is None:
            slot = BinaryOpSlot()
            self.slots[index] = slot
        assert isinstance(slot, BinaryOpSlot)
        return slot

    def property(self, index: int) -> PropertySlot:
        slot = self.slots[index]
        if slot is None:
            slot = PropertySlot()
            self.slots[index] = slot
        assert isinstance(slot, PropertySlot)
        return slot

    def element(self, index: int) -> ElementSlot:
        slot = self.slots[index]
        if slot is None:
            slot = ElementSlot()
            self.slots[index] = slot
        assert isinstance(slot, ElementSlot)
        return slot

    def call(self, index: int) -> CallSlot:
        slot = self.slots[index]
        if slot is None:
            slot = CallSlot()
            self.slots[index] = slot
        assert isinstance(slot, CallSlot)
        return slot

    def global_slot(self, index: int) -> GlobalSlot:
        slot = self.slots[index]
        if slot is None:
            slot = GlobalSlot()
            self.slots[index] = slot
        assert isinstance(slot, GlobalSlot)
        return slot

    def has_feedback(self, index: int) -> bool:
        return 0 <= index < len(self.slots) and self.slots[index] is not None
