"""The bytecode interpreter (Ignition-equivalent tier).

Executes :class:`~repro.bytecode.opcodes.FunctionInfo` bytecode over tagged
words, records type feedback, charges simulated interpreter cycles, and
drives tier-up.  It is also the target of deoptimization: compiled code that
fails a check resumes here, mid-function, via :meth:`Interpreter.run_from`.
"""

from __future__ import annotations

from typing import List, Sequence

from ..bytecode.opcodes import FunctionInfo, Instr, Op
from ..lang.errors import JSTypeError
from ..values.heap import Heap
from ..values.maps import ElementsKind, InstanceType
from ..values.tagged import is_smi, pointer_untag, smi_untag
from . import runtime
from .feedback import FeedbackVector, OperandFeedback

#: Simulated cycles charged per interpreted bytecode (handler dispatch +
#: work).  Roughly calibrated so that optimized code runs ~2.5x faster in
#: steady state, matching the paper's Fig. 6 observation.
INTERP_BASE_COST = 9
_OP_EXTRA_COST = {
    Op.CALL: 14,
    Op.CALL_METHOD: 18,
    Op.NEW: 24,
    Op.GET_PROPERTY: 6,
    Op.SET_PROPERTY: 8,
    Op.GET_ELEMENT: 6,
    Op.SET_ELEMENT: 8,
    Op.CREATE_ARRAY: 20,
    Op.CREATE_OBJECT: 24,
    Op.CREATE_CLOSURE: 12,
    Op.DIV: 12,
    Op.MOD: 12,
    Op.LOAD_GLOBAL: 3,
    Op.STORE_GLOBAL: 3,
}

_BINARY_DISPATCH = {
    Op.ADD: runtime.js_add,
    Op.SUB: runtime.js_subtract,
    Op.MUL: runtime.js_multiply,
    Op.DIV: runtime.js_divide,
    Op.MOD: runtime.js_modulo,
}

_BITWISE_NAMES = {
    Op.BIT_OR: "or",
    Op.BIT_AND: "and",
    Op.BIT_XOR: "xor",
    Op.SHL: "shl",
    Op.SAR: "sar",
    Op.SHR: "shr",
}

_COMPARE_NAMES = {
    Op.TEST_LT: "lt",
    Op.TEST_LE: "le",
    Op.TEST_GT: "gt",
    Op.TEST_GE: "ge",
}


class Interpreter:
    """Executes bytecode against an engine (duck-typed to avoid cycles).

    The engine must provide: ``heap``, ``charge(cycles, bucket)``,
    ``call_value(callee_word, this_word, args, call_slot)``,
    ``construct(callee_word, args, call_slot)``,
    ``call_primitive_method(receiver, name, args, call_slot)``,
    ``global_cell_index(name)``, ``global_cells`` (list of words),
    ``closure_for(function_index)``, and ``maybe_tier_up(shared)``.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self.heap: Heap = engine.heap

    # ------------------------------------------------------------------

    def run(self, shared, this_word: int, args: Sequence[int]) -> int:
        """Execute a function from its entry point."""
        info: FunctionInfo = shared.info
        regs: List[int] = [self.heap.undefined] * info.register_count
        for i in range(min(len(args), info.param_count)):
            regs[i] = args[i]
        return self.run_from(shared, regs, 0, this_word)

    def run_from(self, shared, regs: List[int], pc: int, this_word: int) -> int:
        """Execute from ``pc`` with a pre-populated register file.

        This is the deoptimization entry point: the deoptimizer materializes
        the interpreter frame from machine state and resumes here.
        """
        heap = self.heap
        engine = self.engine
        info: FunctionInfo = shared.info
        feedback: FeedbackVector = shared.feedback
        code = info.bytecode
        cycles = 0
        base_cost = INTERP_BASE_COST
        extra = _OP_EXTRA_COST

        while True:
            instr: Instr = code[pc]
            op = instr.op
            cycles += base_cost + extra.get(op, 0)

            if op == Op.LOAD_CONST:
                regs[instr.dst] = self._constant_word(shared, instr.a)
                pc += 1
            elif op == Op.MOVE:
                regs[instr.dst] = regs[instr.a]
                pc += 1
            elif op in _BINARY_DISPATCH:
                result, observed = _BINARY_DISPATCH[op](
                    heap, regs[instr.a], regs[instr.b]
                )
                feedback.binary(instr.d).record(observed)
                regs[instr.dst] = result
                pc += 1
            elif op in _BITWISE_NAMES:
                result, observed = runtime.js_bitwise(
                    heap, _BITWISE_NAMES[op], regs[instr.a], regs[instr.b]
                )
                feedback.binary(instr.d).record(observed)
                regs[instr.dst] = result
                pc += 1
            elif op in _COMPARE_NAMES:
                outcome, observed = runtime.js_compare(
                    heap, _COMPARE_NAMES[op], regs[instr.a], regs[instr.b]
                )
                feedback.binary(instr.d).record(observed)
                regs[instr.dst] = heap.true_value if outcome else heap.false_value
                pc += 1
            elif op == Op.TEST_EQ or op == Op.TEST_NE:
                outcome, observed = runtime.js_loose_equals(
                    heap, regs[instr.a], regs[instr.b]
                )
                if op == Op.TEST_NE:
                    outcome = not outcome
                feedback.binary(instr.d).record(observed)
                regs[instr.dst] = heap.true_value if outcome else heap.false_value
                pc += 1
            elif op == Op.TEST_EQ_STRICT or op == Op.TEST_NE_STRICT:
                outcome, observed = runtime.js_strict_equals(
                    heap, regs[instr.a], regs[instr.b]
                )
                if instr.d >= 0:
                    feedback.binary(instr.d).record(observed)
                if op == Op.TEST_NE_STRICT:
                    outcome = not outcome
                regs[instr.dst] = heap.true_value if outcome else heap.false_value
                pc += 1
            elif op == Op.JUMP:
                if instr.a <= pc:  # back edge: tier-up bookkeeping
                    shared.backedge_count += 1
                    if shared.backedge_count & 127 == 0:
                        engine.maybe_tier_up(shared)
                pc = instr.a
            elif op == Op.JUMP_IF_FALSE:
                taken = not runtime.js_truthy(heap, regs[instr.b])
                if taken and instr.a <= pc:
                    shared.backedge_count += 1
                    if shared.backedge_count & 127 == 0:
                        engine.maybe_tier_up(shared)
                pc = instr.a if taken else pc + 1
            elif op == Op.JUMP_IF_TRUE:
                taken = runtime.js_truthy(heap, regs[instr.b])
                if taken and instr.a <= pc:
                    shared.backedge_count += 1
                    if shared.backedge_count & 127 == 0:
                        engine.maybe_tier_up(shared)
                pc = instr.a if taken else pc + 1
            elif op == Op.LOAD_GLOBAL:
                slot = feedback.global_slot(instr.d)
                if slot.cell_index < 0:
                    slot.cell_index = engine.global_cell_index(info.names[instr.a])
                regs[instr.dst] = engine.global_cells[slot.cell_index]
                pc += 1
            elif op == Op.STORE_GLOBAL:
                engine.set_global_word(info.names[instr.a], regs[instr.b])
                pc += 1
            elif op == Op.LOAD_THIS:
                regs[instr.dst] = this_word
                pc += 1
            elif op == Op.GET_PROPERTY:
                regs[instr.dst] = self.get_property(
                    regs[instr.a], info.names[instr.b], feedback, instr.d
                )
                pc += 1
            elif op == Op.SET_PROPERTY:
                self.set_property(
                    regs[instr.a], info.names[instr.b], regs[instr.c], feedback, instr.d
                )
                pc += 1
            elif op == Op.GET_ELEMENT:
                regs[instr.dst] = self.get_element(
                    regs[instr.a], regs[instr.b], feedback, instr.d
                )
                pc += 1
            elif op == Op.SET_ELEMENT:
                self.set_element(
                    regs[instr.a], regs[instr.b], regs[instr.c], feedback, instr.d
                )
                pc += 1
            elif op == Op.CALL:
                engine.charge(cycles, "interpreter")
                cycles = 0
                arg_words = [regs[r] for r in instr.c]
                regs[instr.dst] = engine.call_value(
                    regs[instr.b], heap.undefined, arg_words, feedback.call(instr.d)
                )
                pc += 1
            elif op == Op.CALL_METHOD:
                engine.charge(cycles, "interpreter")
                cycles = 0
                receiver = regs[instr.b]
                arg_words = [regs[r] for r in instr.c]
                regs[instr.dst] = self._call_method(
                    receiver, info.names[instr.e], arg_words, feedback, instr.d
                )
                pc += 1
            elif op == Op.NEW:
                engine.charge(cycles, "interpreter")
                cycles = 0
                arg_words = [regs[r] for r in instr.c]
                regs[instr.dst] = engine.construct(
                    regs[instr.b], arg_words, feedback.call(instr.d)
                )
                pc += 1
            elif op == Op.CREATE_ARRAY:
                regs[instr.dst] = self._create_array([regs[r] for r in instr.c])
                pc += 1
            elif op == Op.CREATE_OBJECT:
                obj = self.heap.alloc_object()
                for key_index, value_reg in zip(instr.c, instr.e):
                    self.heap.object_set_property(
                        obj, info.names[key_index], regs[value_reg]
                    )
                regs[instr.dst] = obj
                pc += 1
            elif op == Op.CREATE_CLOSURE:
                regs[instr.dst] = engine.closure_for(instr.a)
                pc += 1
            elif op == Op.NEG:
                result, observed = runtime.js_negate(heap, regs[instr.a])
                if instr.d >= 0:
                    feedback.binary(instr.d).record(observed)
                regs[instr.dst] = result
                pc += 1
            elif op == Op.TO_NUMBER:
                word = regs[instr.a]
                if is_smi(word):
                    observed = OperandFeedback.SIGNED_SMALL
                    result = word
                else:
                    observed = (
                        OperandFeedback.NUMBER
                        if runtime.is_number(heap, word)
                        else OperandFeedback.ANY
                    )
                    result = heap.number_from_float(runtime.js_to_number(heap, word))
                if instr.d >= 0:
                    feedback.binary(instr.d).record(observed)
                regs[instr.dst] = result
                pc += 1
            elif op == Op.NOT:
                regs[instr.dst] = (
                    heap.false_value
                    if runtime.js_truthy(heap, regs[instr.a])
                    else heap.true_value
                )
                pc += 1
            elif op == Op.BIT_NOT:
                result, _observed = runtime.js_bit_not(heap, regs[instr.a])
                regs[instr.dst] = result
                pc += 1
            elif op == Op.TYPEOF:
                regs[instr.dst] = heap.alloc_string(
                    runtime.js_typeof(heap, regs[instr.a]), intern=True
                )
                pc += 1
            elif op == Op.RETURN:
                engine.charge(cycles, "interpreter")
                return regs[instr.a]
            else:  # pragma: no cover - all opcodes handled
                raise AssertionError(f"unhandled opcode {op.name}")

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------

    def _constant_word(self, shared, index: int) -> int:
        cached = shared.constant_words[index]
        if cached is not None:
            return cached
        kind, value = shared.info.constants[index]
        heap = self.heap
        if kind == "int":
            word = heap.to_word(value)
        elif kind == "float":
            word = heap.number_from_float(value)  # type: ignore[arg-type]
        elif kind == "string":
            word = heap.alloc_string(value, intern=True)  # type: ignore[arg-type]
        else:
            word = {
                "undefined": heap.undefined,
                "null": heap.null,
                "true": heap.true_value,
                "false": heap.false_value,
            }[value]
        shared.constant_words[index] = word
        return word

    def _create_array(self, element_words: List[int]) -> int:
        heap = self.heap
        kind = ElementsKind.PACKED_SMI
        for word in element_words:
            kind = max(kind, heap._kind_of_value(word))
        array = heap.alloc_array(kind, len(element_words))
        for i, word in enumerate(element_words):
            heap.array_set(array, i, word)
        return array

    # ------------------------------------------------------------------
    # Property / element protocol (shared with the deopt slow path)
    # ------------------------------------------------------------------

    def get_property(
        self, receiver: int, name: str, feedback: FeedbackVector, slot_index: int
    ) -> int:
        heap = self.heap
        if is_smi(receiver):
            raise JSTypeError(f"cannot read property {name!r} of a number")
        addr = pointer_untag(receiver)
        receiver_map = heap.map_of(addr)
        itype = receiver_map.instance_type
        if itype == InstanceType.JS_ARRAY and name == "length":
            feedback.property(slot_index).record(receiver_map, -2)
            return heap.to_word(heap.array_length(receiver))
        if itype == InstanceType.STRING and name == "length":
            feedback.property(slot_index).record(receiver_map, -3)
            return heap.to_word(len(heap.string_value(receiver)))
        if itype in (InstanceType.JS_OBJECT, InstanceType.JS_ARRAY):
            offset = receiver_map.lookup(name)
            if offset is None:
                feedback.property(slot_index).record(receiver_map, -1)
                return heap.undefined
            feedback.property(slot_index).record(receiver_map, offset)
            value = heap.read(addr, offset)
            assert isinstance(value, int)
            return value
        raise JSTypeError(f"cannot read property {name!r} of {runtime.js_typeof(heap, receiver)}")

    def set_property(
        self,
        receiver: int,
        name: str,
        value: int,
        feedback: FeedbackVector,
        slot_index: int,
    ) -> None:
        heap = self.heap
        if is_smi(receiver):
            raise JSTypeError(f"cannot set property {name!r} on a number")
        addr = pointer_untag(receiver)
        receiver_map = heap.map_of(addr)
        if receiver_map.instance_type not in (
            InstanceType.JS_OBJECT,
            InstanceType.JS_ARRAY,
        ):
            raise JSTypeError(
                f"cannot set property {name!r} on {runtime.js_typeof(heap, receiver)}"
            )
        offset = receiver_map.lookup(name)
        transition = offset is None
        heap.object_set_property(receiver, name, value)
        if transition:
            offset = heap.map_of(addr).lookup(name)
        assert offset is not None
        feedback.property(slot_index).record(receiver_map, offset, transition=transition)

    def get_element(
        self, receiver: int, key: int, feedback: FeedbackVector, slot_index: int
    ) -> int:
        heap = self.heap
        slot = feedback.element(slot_index)
        if not is_smi(key):
            if runtime.is_string(heap, key):
                # obj["name"] degrades to a property access.
                slot.saw_non_smi_index = True
                return self.get_property(
                    receiver, heap.string_value(key), feedback, slot_index
                )
            key_num = runtime.js_to_number(heap, key)
            if key_num == int(key_num):
                key = heap.to_word(int(key_num))
                slot.saw_non_smi_index = True
            else:
                raise JSTypeError("non-integer element index")
        if is_smi(receiver):
            raise JSTypeError("cannot index a number")
        index = smi_untag(key)
        addr = pointer_untag(receiver)
        receiver_map = heap.map_of(addr)
        if receiver_map.instance_type == InstanceType.JS_ARRAY:
            slot.record(receiver_map)
            if index < 0 or index >= heap.array_length(receiver):
                slot.saw_out_of_bounds = True
                return heap.undefined
            return heap.array_get(receiver, index)
        if receiver_map.instance_type == InstanceType.STRING:
            text = heap.string_value(receiver)
            if 0 <= index < len(text):
                return heap.alloc_string(text[index])
            return heap.undefined
        raise JSTypeError("value is not indexable")

    def set_element(
        self,
        receiver: int,
        key: int,
        value: int,
        feedback: FeedbackVector,
        slot_index: int,
    ) -> None:
        heap = self.heap
        slot = feedback.element(slot_index)
        if not is_smi(key):
            if runtime.is_string(heap, key):
                slot.saw_non_smi_index = True
                self.set_property(
                    receiver, heap.string_value(key), value, feedback, slot_index
                )
                return
            key_num = runtime.js_to_number(heap, key)
            key = heap.to_word(int(key_num))
            slot.saw_non_smi_index = True
        if is_smi(receiver):
            raise JSTypeError("cannot index a number")
        index = smi_untag(key)
        addr = pointer_untag(receiver)
        receiver_map = heap.map_of(addr)
        if receiver_map.instance_type != InstanceType.JS_ARRAY:
            raise JSTypeError("value is not indexable")
        slot.record(receiver_map)
        length = heap.array_length(receiver)
        if index == length:
            # The append idiom a[a.length] = v is supported as a push.
            slot.saw_out_of_bounds = True
            heap.array_push(receiver, value)
            return
        if index < 0 or index > length:
            slot.saw_out_of_bounds = True
            raise JSTypeError(f"sparse array store at {index} (length {length})")
        heap.array_set(receiver, index, value)

    # ------------------------------------------------------------------

    def _call_method(
        self,
        receiver: int,
        name: str,
        args: List[int],
        feedback: FeedbackVector,
        slot_index: int,
    ) -> int:
        heap = self.heap
        engine = self.engine
        call_slot = feedback.call(slot_index)
        if not is_smi(receiver):
            receiver_map = heap.map_of(pointer_untag(receiver))
            itype = receiver_map.instance_type
            if itype == InstanceType.STRING:
                call_slot.record_primitive_method("string", name, receiver_map)
                return engine.call_primitive_method(receiver, name, args, call_slot)
            if itype == InstanceType.JS_ARRAY:
                call_slot.record_primitive_method("array", name, receiver_map)
                return engine.call_primitive_method(receiver, name, args, call_slot)
            if itype == InstanceType.JS_OBJECT:
                method_offset = receiver_map.lookup(name)
                method = (
                    None
                    if method_offset is None
                    else heap.read(pointer_untag(receiver), method_offset)
                )
                if method is None or method == heap.undefined:
                    if engine.regex_from_word(receiver) is not None:
                        call_slot.record_primitive_method("regex", name, receiver_map)
                        return engine.call_primitive_method(
                            receiver, name, args, call_slot
                        )
                    raise JSTypeError(f"method {name!r} not found")
                assert isinstance(method, int)
                shared_index = engine.shared_index_of_function(method)
                if shared_index >= 0 and method_offset is not None:
                    call_slot.record_object_method(
                        receiver_map, method_offset, shared_index
                    )
                return engine.call_value(method, receiver, args, None)
        raise JSTypeError(
            f"cannot call method {name!r} on {runtime.js_typeof(heap, receiver)}"
        )
