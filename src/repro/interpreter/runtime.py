"""JavaScript operator semantics over tagged words.

These helpers implement the ECMAScript coercion rules our subset needs and
report what :class:`~repro.interpreter.feedback.OperandFeedback` the
operation observed — the interpreter records that into feedback vectors.

They are also the engine's *deopt-safe* slow paths: when JIT-compiled code
bails out, execution resumes in the interpreter, which funnels every
operation through these functions.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..lang.errors import JSTypeError
from ..values.heap import Heap, ODDBALL_KIND_OFFSET, ODDBALL_TRUE, ODDBALL_UNDEFINED
from ..values.maps import InstanceType
from ..values.tagged import is_smi, pointer_untag, smi_untag
from .feedback import OperandFeedback

_TWO_32 = 1 << 32
_TWO_31 = 1 << 31


# ---------------------------------------------------------------------------
# Type inspection / coercion
# ---------------------------------------------------------------------------


def kind_of(heap: Heap, word: int) -> InstanceType:
    """InstanceType of a word; SMIs map to HEAP_NUMBER-like numeric kind."""
    if is_smi(word):
        return InstanceType.HEAP_NUMBER
    return heap.map_of(pointer_untag(word)).instance_type


def is_number(heap: Heap, word: int) -> bool:
    return is_smi(word) or (
        heap.map_of(pointer_untag(word)).instance_type == InstanceType.HEAP_NUMBER
    )


def is_string(heap: Heap, word: int) -> bool:
    return not is_smi(word) and (
        heap.map_of(pointer_untag(word)).instance_type == InstanceType.STRING
    )


def js_truthy(heap: Heap, word: int) -> bool:
    if is_smi(word):
        return smi_untag(word) != 0
    addr = pointer_untag(word)
    itype = heap.map_of(addr).instance_type
    if itype == InstanceType.HEAP_NUMBER:
        value = heap.number_to_float(word)
        return value != 0.0 and not math.isnan(value)
    if itype == InstanceType.STRING:
        return len(heap.string_value(word)) != 0
    if itype == InstanceType.ODDBALL:
        return heap.read(addr, ODDBALL_KIND_OFFSET) == ODDBALL_TRUE
    return True  # objects, arrays, functions


def js_to_number(heap: Heap, word: int) -> float:
    if is_smi(word):
        return float(smi_untag(word))
    addr = pointer_untag(word)
    itype = heap.map_of(addr).instance_type
    if itype == InstanceType.HEAP_NUMBER:
        return heap.number_to_float(word)
    if itype == InstanceType.ODDBALL:
        kind = heap.read(addr, ODDBALL_KIND_OFFSET)
        if kind == ODDBALL_TRUE:
            return 1.0
        if kind == ODDBALL_UNDEFINED:
            return float("nan")
        return 0.0  # null, false
    if itype == InstanceType.STRING:
        text = heap.string_value(word).strip()
        if not text:
            return 0.0
        try:
            if text.startswith(("0x", "0X")):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return float("nan")
    return float("nan")  # objects without valueOf in the subset


def js_number_to_string(value: float) -> str:
    """ECMAScript Number::toString for the common cases."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value) and abs(value) < 1e21:
        return str(int(value))
    return repr(value)


def js_to_string(heap: Heap, word: int) -> str:
    if is_smi(word):
        return str(smi_untag(word))
    addr = pointer_untag(word)
    itype = heap.map_of(addr).instance_type
    if itype == InstanceType.STRING:
        return heap.string_value(word)
    if itype == InstanceType.HEAP_NUMBER:
        return js_number_to_string(heap.number_to_float(word))
    if itype == InstanceType.ODDBALL:
        kind = heap.read(addr, ODDBALL_KIND_OFFSET)
        return {0: "undefined", 1: "null", 2: "true", 3: "false", 4: "hole"}[kind]  # type: ignore[index]
    if itype == InstanceType.JS_ARRAY:
        # Array -> string joins elements with "," (the paper's intro example:
        # [1,2,3] + 7 === "1,2,37").
        return ",".join(
            js_to_string(heap, heap.array_get(word, i))
            for i in range(heap.array_length(word))
        )
    if itype == InstanceType.JS_FUNCTION:
        return "function"
    return "[object Object]"


def js_to_int32(value: float) -> int:
    if math.isnan(value) or math.isinf(value):
        return 0
    value = math.trunc(value)
    value = int(value) % _TWO_32
    return value - _TWO_32 if value >= _TWO_31 else value


def js_to_uint32(value: float) -> int:
    if math.isnan(value) or math.isinf(value):
        return 0
    return int(math.trunc(value)) % _TWO_32


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def js_add(heap: Heap, lhs: int, rhs: int) -> Tuple[int, OperandFeedback]:
    if is_smi(lhs) and is_smi(rhs):
        result = smi_untag(lhs) + smi_untag(rhs)
        if heap.config.fits_smi(result):
            return (result << 1), OperandFeedback.SIGNED_SMALL
        return heap.alloc_number(float(result)), OperandFeedback.NUMBER
    if is_number(heap, lhs) and is_number(heap, rhs):
        value = heap.number_to_float(lhs) + heap.number_to_float(rhs)
        return heap.number_from_float(value), OperandFeedback.NUMBER
    if is_string(heap, lhs) or is_string(heap, rhs):
        text = js_to_string(heap, lhs) + js_to_string(heap, rhs)
        return heap.alloc_string(text), OperandFeedback.STRING
    # ToPrimitive on objects/arrays yields strings in the subset.
    if kind_of(heap, lhs) in (InstanceType.JS_ARRAY, InstanceType.JS_OBJECT) or kind_of(
        heap, rhs
    ) in (InstanceType.JS_ARRAY, InstanceType.JS_OBJECT):
        text = js_to_string(heap, lhs) + js_to_string(heap, rhs)
        return heap.alloc_string(text), OperandFeedback.ANY
    value = js_to_number(heap, lhs) + js_to_number(heap, rhs)
    return heap.number_from_float(value), OperandFeedback.ANY


def js_subtract(heap: Heap, lhs: int, rhs: int) -> Tuple[int, OperandFeedback]:
    if is_smi(lhs) and is_smi(rhs):
        result = smi_untag(lhs) - smi_untag(rhs)
        if heap.config.fits_smi(result):
            return (result << 1), OperandFeedback.SIGNED_SMALL
        return heap.alloc_number(float(result)), OperandFeedback.NUMBER
    feedback = (
        OperandFeedback.NUMBER
        if is_number(heap, lhs) and is_number(heap, rhs)
        else OperandFeedback.ANY
    )
    value = js_to_number(heap, lhs) - js_to_number(heap, rhs)
    return heap.number_from_float(value), feedback


def js_multiply(heap: Heap, lhs: int, rhs: int) -> Tuple[int, OperandFeedback]:
    if is_smi(lhs) and is_smi(rhs):
        a, b = smi_untag(lhs), smi_untag(rhs)
        result = a * b
        # -0 results force the NUMBER representation (V8's minus-zero deopt).
        if heap.config.fits_smi(result) and not (
            result == 0 and (a < 0 or b < 0)
        ):
            return (result << 1), OperandFeedback.SIGNED_SMALL
        # float multiply produces the correct -0.0 for e.g. -1 * 0.
        return heap.number_from_float(float(a) * float(b)), OperandFeedback.NUMBER
    feedback = (
        OperandFeedback.NUMBER
        if is_number(heap, lhs) and is_number(heap, rhs)
        else OperandFeedback.ANY
    )
    value = js_to_number(heap, lhs) * js_to_number(heap, rhs)
    return heap.number_from_float(value), feedback


def js_divide(heap: Heap, lhs: int, rhs: int) -> Tuple[int, OperandFeedback]:
    numeric = is_number(heap, lhs) and is_number(heap, rhs)
    a = js_to_number(heap, lhs)
    b = js_to_number(heap, rhs)
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            value = float("nan")
        else:
            sign = math.copysign(1.0, a) * math.copysign(1.0, b)
            value = math.inf * sign
    else:
        value = a / b
    if (
        is_smi(lhs)
        and is_smi(rhs)
        and not math.isnan(value)
        and not math.isinf(value)
        and value == int(value)
        and heap.config.fits_smi(int(value))
        and not (value == 0.0 and math.copysign(1.0, value) < 0)
    ):
        return (int(value) << 1), OperandFeedback.SIGNED_SMALL
    return heap.number_from_float(value), (
        OperandFeedback.NUMBER if numeric else OperandFeedback.ANY
    )


def js_modulo(heap: Heap, lhs: int, rhs: int) -> Tuple[int, OperandFeedback]:
    numeric = is_number(heap, lhs) and is_number(heap, rhs)
    a = js_to_number(heap, lhs)
    b = js_to_number(heap, rhs)
    if b == 0.0 or math.isnan(a) or math.isnan(b) or math.isinf(a):
        value = float("nan")
    elif math.isinf(b):
        value = a
    else:
        value = math.fmod(a, b)
    if (
        is_smi(lhs)
        and is_smi(rhs)
        and not math.isnan(value)
        and value == int(value)
        and not (value == 0.0 and (math.copysign(1.0, value) < 0 or smi_untag(lhs) < 0))
        and heap.config.fits_smi(int(value))
    ):
        return (int(value) << 1), OperandFeedback.SIGNED_SMALL
    return heap.number_from_float(value), (
        OperandFeedback.NUMBER if numeric else OperandFeedback.ANY
    )


def js_negate(heap: Heap, operand: int) -> Tuple[int, OperandFeedback]:
    if is_smi(operand):
        value = -smi_untag(operand)
        if value != 0 and heap.config.fits_smi(value):
            return (value << 1), OperandFeedback.SIGNED_SMALL
        # -0 and SMI_MIN overflow go to the double domain.
        return heap.number_from_float(-float(smi_untag(operand))), OperandFeedback.NUMBER
    feedback = OperandFeedback.NUMBER if is_number(heap, operand) else OperandFeedback.ANY
    return heap.number_from_float(-js_to_number(heap, operand)), feedback


_BITWISE = {
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: js_to_int32(float((a % _TWO_32) << (b & 31))),
    "sar": lambda a, b: a >> (b & 31),
}


def js_bitwise(heap: Heap, op: str, lhs: int, rhs: int) -> Tuple[int, OperandFeedback]:
    smi_inputs = is_smi(lhs) and is_smi(rhs)
    numeric = is_number(heap, lhs) and is_number(heap, rhs)
    a = js_to_int32(js_to_number(heap, lhs))
    b = js_to_int32(js_to_number(heap, rhs))
    if op == "shr":
        result = (a % _TWO_32) >> (js_to_uint32(js_to_number(heap, rhs)) & 31)
        value = float(result)
        if smi_inputs and heap.config.fits_smi(result):
            return (result << 1), OperandFeedback.SIGNED_SMALL
        return heap.number_from_float(value), (
            OperandFeedback.NUMBER if numeric else OperandFeedback.ANY
        )
    if op == "shl":
        result = js_to_int32(float(((a % _TWO_32) << (b & 31)) % _TWO_32))
    elif op == "sar":
        result = a >> (b & 31)
    else:
        result = _BITWISE[op](a, b)
    if smi_inputs and heap.config.fits_smi(result):
        return (result << 1), OperandFeedback.SIGNED_SMALL
    return heap.number_from_float(float(result)), (
        OperandFeedback.NUMBER if numeric else OperandFeedback.ANY
    )


def js_bit_not(heap: Heap, operand: int) -> Tuple[int, OperandFeedback]:
    value = ~js_to_int32(js_to_number(heap, operand))
    if is_smi(operand) and heap.config.fits_smi(value):
        return (value << 1), OperandFeedback.SIGNED_SMALL
    return heap.number_from_float(float(value)), (
        OperandFeedback.NUMBER if is_number(heap, operand) else OperandFeedback.ANY
    )


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def js_compare(heap: Heap, op: str, lhs: int, rhs: int) -> Tuple[bool, OperandFeedback]:
    """Relational <, <=, >, >= with JS coercion."""
    if is_smi(lhs) and is_smi(rhs):
        a, b = smi_untag(lhs), smi_untag(rhs)
        return _relate(op, a, b), OperandFeedback.SIGNED_SMALL
    if is_number(heap, lhs) and is_number(heap, rhs):
        a_f, b_f = heap.number_to_float(lhs), heap.number_to_float(rhs)
        if math.isnan(a_f) or math.isnan(b_f):
            return False, OperandFeedback.NUMBER
        return _relate(op, a_f, b_f), OperandFeedback.NUMBER
    if is_string(heap, lhs) and is_string(heap, rhs):
        return _relate(op, heap.string_value(lhs), heap.string_value(rhs)), OperandFeedback.STRING
    a_f, b_f = js_to_number(heap, lhs), js_to_number(heap, rhs)
    if math.isnan(a_f) or math.isnan(b_f):
        return False, OperandFeedback.ANY
    return _relate(op, a_f, b_f), OperandFeedback.ANY


def _relate(op: str, a, b) -> bool:
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    return a >= b


def js_strict_equals(heap: Heap, lhs: int, rhs: int) -> Tuple[bool, OperandFeedback]:
    if is_smi(lhs) and is_smi(rhs):
        return lhs == rhs, OperandFeedback.SIGNED_SMALL
    if is_number(heap, lhs) and is_number(heap, rhs):
        a, b = heap.number_to_float(lhs), heap.number_to_float(rhs)
        return (not math.isnan(a) and not math.isnan(b) and a == b), OperandFeedback.NUMBER
    lk, rk = kind_of(heap, lhs), kind_of(heap, rhs)
    if lk != rk:
        return False, OperandFeedback.ANY
    if lk == InstanceType.STRING:
        return heap.string_value(lhs) == heap.string_value(rhs), OperandFeedback.STRING
    return lhs == rhs, OperandFeedback.ANY  # identity for objects/oddballs


def js_loose_equals(heap: Heap, lhs: int, rhs: int) -> Tuple[bool, OperandFeedback]:
    if is_smi(lhs) and is_smi(rhs):
        return lhs == rhs, OperandFeedback.SIGNED_SMALL
    if is_number(heap, lhs) and is_number(heap, rhs):
        a, b = heap.number_to_float(lhs), heap.number_to_float(rhs)
        return (not math.isnan(a) and not math.isnan(b) and a == b), OperandFeedback.NUMBER
    lk, rk = kind_of(heap, lhs), kind_of(heap, rhs)
    if lk == InstanceType.STRING and rk == InstanceType.STRING:
        return heap.string_value(lhs) == heap.string_value(rhs), OperandFeedback.STRING
    if lk == InstanceType.ODDBALL and rk == InstanceType.ODDBALL:
        # null == undefined (and every oddball equals itself).
        null_like = {heap.undefined, heap.null}
        if lhs in null_like and rhs in null_like:
            return True, OperandFeedback.ANY
        return lhs == rhs, OperandFeedback.ANY
    if lk == InstanceType.ODDBALL and lhs in (heap.undefined, heap.null):
        return False, OperandFeedback.ANY
    if rk == InstanceType.ODDBALL and rhs in (heap.undefined, heap.null):
        return False, OperandFeedback.ANY
    if lk in (InstanceType.JS_OBJECT, InstanceType.JS_ARRAY, InstanceType.JS_FUNCTION) and rk == lk:
        return lhs == rhs, OperandFeedback.ANY
    # Mixed types: compare numerically (covers number==string, bool==number).
    a, b = js_to_number(heap, lhs), js_to_number(heap, rhs)
    return (not math.isnan(a) and not math.isnan(b) and a == b), OperandFeedback.ANY


def js_typeof(heap: Heap, word: int) -> str:
    if is_smi(word):
        return "number"
    addr = pointer_untag(word)
    itype = heap.map_of(addr).instance_type
    if itype == InstanceType.HEAP_NUMBER:
        return "number"
    if itype == InstanceType.STRING:
        return "string"
    if itype == InstanceType.ODDBALL:
        kind = heap.read(addr, ODDBALL_KIND_OFFSET)
        if kind == ODDBALL_UNDEFINED:
            return "undefined"
        if kind in (2, 3):
            return "boolean"
        return "object"  # null
    if itype == InstanceType.JS_FUNCTION:
        return "function"
    return "object"


def require_callable(heap: Heap, word: int) -> None:
    if is_smi(word) or heap.map_of(pointer_untag(word)).instance_type != InstanceType.JS_FUNCTION:
        raise JSTypeError(f"value is not callable: {heap.to_python(word)!r}")
