"""Optimizing-tier IR: graph, builder, and passes."""

from .builder import BailoutCompilation, GraphBuilder, build_graph
from .graph import Graph
from .nodes import Block, Checkpoint, Node, Repr

__all__ = [
    "BailoutCompilation",
    "Block",
    "Checkpoint",
    "Graph",
    "GraphBuilder",
    "Node",
    "Repr",
    "build_graph",
]
