"""Speculative graph builder: bytecode + type feedback -> IR with checks.

This is the TurboFan-equivalent front end.  It abstractly interprets the
bytecode with an environment mapping interpreter registers to IR nodes,
speculates according to the recorded feedback, and *materializes every
speculation as an explicit check node* — the artifacts the paper measures:

* ``checked_untag``            Not-a-SMI check + untagging shift
* ``check_map``                SMI check + wrong-map check
* ``check_bounds``             array bounds check (tagged-SMI compare)
* ``checked_int32_*``          overflow / minus-zero / div-by-zero /
                               lost-precision arithmetic checks
* ``checked_to_float64``       not-a-number check
* ``check_call_target``        wrong-call-target check
* ``deopt``                    soft deopt on insufficient feedback

Redundant-check elimination is performed on the fly with environment-scoped
caches (a value checked on every incoming path is not re-checked), the same
effect TurboFan gets from its CheckElimination phase.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..bytecode.opcodes import FunctionInfo, Instr, Op
from ..interpreter.feedback import (
    BinaryOpSlot,
    CallSlot,
    ElementSlot,
    FeedbackVector,
    GlobalSlot,
    ICState,
    OperandFeedback,
    PropertySlot,
)
from ..jit.checks import CheckKind
from ..values.heap import (
    FIXED_ARRAY_ELEMENTS_OFFSET,
    JS_ARRAY_ELEMENTS_OFFSET,
    JS_ARRAY_LENGTH_OFFSET,
    STRING_LENGTH_OFFSET,
)
from ..values.maps import ElementsKind, InstanceType, Map
from .graph import Graph
from .liveness import compute_liveness
from .nodes import Block, Checkpoint, Node, Repr

#: INT32-producing ops whose result always fits in an SMI (so re-tagging
#: needs no overflow check).
_SMI_SAFE_OPS = frozenset(
    {
        "checked_int32_add",
        "checked_int32_sub",
        "checked_int32_mul",
        "checked_int32_div",
        "checked_int32_mod",
        "checked_int32_neg",
        "checked_untag",
        "untag_signed",
        "checked_float64_to_int32",
        "load_array_length",
        "load_string_length",
    }
)

_ARITH_BYTECODES = {
    Op.ADD: "add",
    Op.SUB: "sub",
    Op.MUL: "mul",
    Op.DIV: "div",
    Op.MOD: "mod",
}

_BITWISE_BYTECODES = {
    Op.BIT_OR: "or",
    Op.BIT_AND: "and",
    Op.BIT_XOR: "xor",
    Op.SHL: "shl",
    Op.SAR: "sar",
    Op.SHR: "shr",
}

# TEST_NE compiles as eq + bool_not (the negate flag), so both map to "eq".
_COMPARE_BYTECODES = {
    Op.TEST_LT: "lt",
    Op.TEST_LE: "le",
    Op.TEST_GT: "gt",
    Op.TEST_GE: "ge",
    Op.TEST_EQ: "eq",
    Op.TEST_NE: "eq",
    Op.TEST_EQ_STRICT: "eq",
    Op.TEST_NE_STRICT: "eq",
}


class BailoutCompilation(Exception):
    """The function cannot be optimized (e.g. unsupported shape)."""


class Env:
    """Abstract interpreter state: register contents + check caches."""

    __slots__ = ("regs", "untagged", "floated", "tagged_of", "checked_maps", "bounded")

    def __init__(self, register_count: int, fill: Node) -> None:
        self.regs: List[Node] = [fill] * register_count
        #: tagged node id -> its checked-untagged INT32 node
        self.untagged: Dict[int, Node] = {}
        #: node id -> FLOAT64 version
        self.floated: Dict[int, Node] = {}
        #: INT32/FLOAT64 node id -> its tagged source/version
        self.tagged_of: Dict[int, Node] = {}
        #: node id -> Map it was check_map'ed against
        self.checked_maps: Dict[int, Map] = {}
        #: (index node id, array node id) pairs proven in bounds by a
        #: dominating `i < a.length` guard (bounds-check elimination)
        self.bounded: Set[Tuple[int, int]] = set()

    def copy(self) -> "Env":
        duplicate = Env.__new__(Env)
        duplicate.regs = list(self.regs)
        duplicate.untagged = dict(self.untagged)
        duplicate.floated = dict(self.floated)
        duplicate.tagged_of = dict(self.tagged_of)
        duplicate.checked_maps = dict(self.checked_maps)
        duplicate.bounded = set(self.bounded)
        return duplicate

    def flush_effects(self) -> None:
        """Drop caches invalidated by arbitrary side effects (calls)."""
        self.checked_maps.clear()
        self.bounded.clear()  # a call may shrink an array


def _merge_caches(target: Dict[int, object], other: Dict[int, object]) -> None:
    for key in list(target):
        if other.get(key) is not target[key]:
            del target[key]


class CompilationContext:
    """Engine-facing services the builder needs (duck-typed)."""

    heap = None  # Heap
    config = None  # EngineConfig

    def closure_word_for(self, shared_index: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def global_array_word(self) -> int:  # pragma: no cover
        raise NotImplementedError

    def global_cell_index(self, name: str) -> int:  # pragma: no cover
        raise NotImplementedError


class GraphBuilder:
    """Builds the speculative IR for one function."""

    #: maximum callee bytecode length considered for inlining
    INLINE_SIZE_LIMIT = 48
    #: maximum number of inlined calls per optimized function
    INLINE_BUDGET = 12

    def __init__(
        self,
        shared,
        context,
        graph: Optional[Graph] = None,
        checkpoint_override: Optional[Checkpoint] = None,
        inline_depth: int = 0,
    ) -> None:
        self.shared = shared
        self.info: FunctionInfo = shared.info
        self.feedback: FeedbackVector = shared.feedback
        self.context = context
        self.heap = context.heap
        self.graph = graph if graph is not None else Graph(self.info.name)
        self.checkpoint_override = checkpoint_override
        self.inline_depth = inline_depth
        self.inline_budget = self.INLINE_BUDGET
        self.inline_returns: List[Tuple[Node, Block, Env]] = []
        self.block: Optional[Block] = self.graph.entry
        self.env: Optional[Env] = None
        self.live_in = compute_liveness(self.info)
        self.current_pc = 0
        self._checkpoint_cache: Optional[Tuple[int, Checkpoint]] = None
        #: maps the code depends on being stable (lazy-deopt hooks)
        self.map_dependencies: Set[Map] = set()
        #: tagged constant words embedded in code (GC roots)
        self.embedded_words: Set[int] = set()
        self._const_cache: Dict[Tuple[str, object], Node] = {}
        self.this_node: Optional[Node] = None

        self.block_starts = self._find_block_starts()
        self.loop_headers = self._find_loop_headers()
        self.monotonic_nonneg = self._monotonic_nonneg_regs()
        self.blocks_by_start: Dict[int, Block] = {}
        #: block id -> caller bytecode pc it corresponds to (includes inline
        #: continuation blocks, which carry the pc of the call bytecode)
        self.block_bytecode_pc: Dict[int, int] = {}
        self.edge_envs: Dict[int, List[Tuple[Block, Env, int]]] = {}
        self.loop_phis: Dict[int, Dict[int, Node]] = {}
        #: loop header start -> frame state at loop entry (pre-phi values);
        #: used by LICM so hoisted checks deopt to the loop-entry state.
        self.header_entry_checkpoints: Dict[int, Checkpoint] = {}

    # ------------------------------------------------------------------
    # CFG discovery
    # ------------------------------------------------------------------

    def _find_block_starts(self) -> List[int]:
        starts = {0}
        for pc, instr in enumerate(self.info.bytecode):
            if instr.op in (Op.JUMP, Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE):
                starts.add(instr.a)
                starts.add(pc + 1)
            elif instr.op == Op.RETURN:
                starts.add(pc + 1)
        return sorted(s for s in starts if s < len(self.info.bytecode))

    def _find_loop_headers(self) -> Set[int]:
        headers = set()
        self._loop_end: Dict[int, int] = {}
        for pc, instr in enumerate(self.info.bytecode):
            if instr.op in (Op.JUMP, Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE) and instr.a <= pc:
                headers.add(instr.a)
                self._loop_end[instr.a] = max(self._loop_end.get(instr.a, 0), pc)
        return headers

    def _monotonic_nonneg_regs(self) -> Set[int]:
        """Registers whose every write is a non-negative constant or a
        positive-constant increment of themselves — the loop-counter shape.

        Checked increments deopt on overflow, so such a register grows
        monotonically from >= 0; a dominating ``i < a.length`` guard then
        proves any ``a[i]`` access in bounds (V8's bounds-check
        elimination)."""
        code = self.info.bytecode
        consts = self.info.constants

        def const_value(pc: int) -> Optional[int]:
            instr = code[pc]
            if instr.op != Op.LOAD_CONST:
                return None
            kind, value = consts[instr.a]
            return int(value) if kind == "int" else None

        def defines(reg: int, upto: int) -> Optional[int]:
            for back in range(upto - 1, max(-1, upto - 4), -1):
                if code[back].dst == reg:
                    return back
            return None

        candidates: Dict[int, bool] = {}
        for pc, instr in enumerate(code):
            reg = instr.dst
            if reg < 0 or reg < self.info.param_count:
                continue
            ok = False
            if instr.op == Op.LOAD_CONST:
                value = const_value(pc)
                ok = value is not None and value >= 0
            elif instr.op == Op.MOVE:
                source_pc = defines(instr.a, pc)
                if source_pc is not None:
                    source = code[source_pc]
                    if source.op == Op.LOAD_CONST:
                        value = const_value(source_pc)
                        ok = value is not None and value >= 0
                    elif source.op == Op.ADD and source.a == reg:
                        inc_pc = defines(source.b, source_pc)
                        if inc_pc is not None:
                            inc = const_value(inc_pc)
                            ok = inc is not None and inc > 0
            if reg in candidates:
                candidates[reg] = candidates[reg] and ok
            else:
                candidates[reg] = ok
        return {reg for reg, ok in candidates.items() if ok}

    def _regs_written_in_loop(self, header: int) -> Set[int]:
        """Registers assigned anywhere in the loop's bytecode range.

        Only these need loop phis; untouched registers (typically the
        parameters) keep their node identity across iterations, which lets
        the check caches treat them as loop-invariant — the same effect SSA
        construction gives TurboFan.
        """
        written: Set[int] = set()
        end = self._loop_end.get(header, header)
        for pc in range(header, end + 1):
            dst = self.info.bytecode[pc].dst
            if dst >= 0:
                written.add(dst)
        return written

    # ------------------------------------------------------------------
    # Node emission helpers
    # ------------------------------------------------------------------

    def emit(
        self,
        op: str,
        inputs: Optional[List[Node]] = None,
        out_repr: Repr = Repr.NONE,
        params: Optional[Dict[str, object]] = None,
        check_kind: Optional[CheckKind] = None,
        with_checkpoint: bool = False,
        block: Optional[Block] = None,
    ) -> Node:
        if with_checkpoint or op.startswith("load_"):
            checkpoint = self.current_checkpoint()
        else:
            checkpoint = None
        node = self.graph.new_node(op, inputs, out_repr, params, check_kind, checkpoint)
        target_block = block if block is not None else self.block
        assert target_block is not None
        # Insert before the terminator if the block is already closed (used
        # by edge conversions).
        if target_block.terminator is not None:
            target_block.nodes.insert(len(target_block.nodes) - 1, node)
            node.block = target_block
        else:
            target_block.append(node)
        return node

    def current_checkpoint(self) -> Checkpoint:
        if self.checkpoint_override is not None:
            # Inlined code deopts to the caller's call-site state: the callee
            # is side-effect free, so re-executing the whole call in the
            # interpreter is sound.
            return self.checkpoint_override
        if self._checkpoint_cache is not None and self._checkpoint_cache[0] == self.current_pc:
            return self._checkpoint_cache[1]
        assert self.env is not None
        live = self.live_in[self.current_pc] if self.current_pc < len(self.live_in) else set()
        values = [
            (reg, self.env.regs[reg])
            for reg in sorted(live)
            if reg < len(self.env.regs)
        ]
        checkpoint = Checkpoint(self.current_pc, values, self.this_node)
        self._checkpoint_cache = (self.current_pc, checkpoint)
        return checkpoint

    def _smi_safe(self, node: Node) -> bool:
        if node.op in _SMI_SAFE_OPS:
            return True
        if node.op == "const_int32":
            return self.heap.config.fits_smi(int(node.param("imm", 0)))
        if node.op == "phi":
            return bool(node.param("smi_safe", False))
        return False

    # -- constants -------------------------------------------------------

    def const_int32(self, value: int) -> Node:
        key = ("int32", value)
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        node = self.emit(
            "const_int32", [], Repr.INT32, {"imm": value}, block=self.graph.entry
        )
        self._const_cache[key] = node
        return node

    def const_float(self, value: float) -> Node:
        key = ("float", value)
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        node = self.emit(
            "const_float", [], Repr.FLOAT64, {"imm": value}, block=self.graph.entry
        )
        self._const_cache[key] = node
        return node

    def const_tagged(self, word: int, smi_known: bool = False) -> Node:
        key = ("tagged", word)
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        if word & 1:
            self.embedded_words.add(word)
        node = self.emit(
            "const_tagged",
            [],
            Repr.TAGGED_SIGNED if smi_known else Repr.TAGGED,
            {"imm": word},
            block=self.graph.entry,
        )
        self._const_cache[key] = node
        return node

    # -- conversions -----------------------------------------------------

    def to_int32(self, node: Node) -> Node:
        env = self.env
        assert env is not None
        repr_ = node.out_repr
        if repr_ in (Repr.INT32, Repr.BOOL):
            return node
        if repr_ == Repr.TAGGED_SIGNED:
            cached = env.untagged.get(node.id)
            if cached is not None:
                return cached
            untagged = self.emit("untag_signed", [node], Repr.INT32)
            env.untagged[node.id] = untagged
            env.tagged_of[untagged.id] = node
            return untagged
        if repr_ == Repr.TAGGED:
            cached = env.untagged.get(node.id)
            if cached is not None:
                return cached
            untagged = self.emit(
                "checked_untag",
                [node],
                Repr.INT32,
                check_kind=CheckKind.NOT_A_SMI,
                with_checkpoint=True,
            )
            env.untagged[node.id] = untagged
            env.tagged_of[untagged.id] = node
            return untagged
        if repr_ == Repr.FLOAT64:
            untagged = self.emit(
                "checked_float64_to_int32",
                [node],
                Repr.INT32,
                check_kind=CheckKind.LOST_PRECISION,
                with_checkpoint=True,
            )
            return untagged
        raise BailoutCompilation(f"cannot convert {repr_} to int32")

    def to_int32_truncating(self, node: Node) -> Node:
        """ToInt32 with JS truncation semantics (for bitwise operators)."""
        if node.out_repr == Repr.FLOAT64:
            return self.emit("float64_to_int32_trunc", [node], Repr.INT32)
        return self.to_int32(node)

    def to_float64(self, node: Node) -> Node:
        env = self.env
        assert env is not None
        repr_ = node.out_repr
        if repr_ == Repr.FLOAT64:
            return node
        cached = env.floated.get(node.id)
        if cached is not None:
            return cached
        if repr_ in (Repr.INT32, Repr.BOOL):
            result = self.emit("int32_to_float64", [node], Repr.FLOAT64)
        elif repr_ == Repr.TAGGED_SIGNED:
            result = self.emit(
                "int32_to_float64", [self.to_int32(node)], Repr.FLOAT64
            )
        elif repr_ == Repr.TAGGED:
            result = self.emit(
                "checked_to_float64",
                [node],
                Repr.FLOAT64,
                {"number_map": self.heap.number_map},
                check_kind=CheckKind.NOT_A_NUMBER,
                with_checkpoint=True,
            )
        else:
            raise BailoutCompilation(f"cannot convert {repr_} to float64")
        env.floated[node.id] = result
        return result

    def ensure_tagged(self, node: Node) -> Node:
        env = self.env
        assert env is not None
        repr_ = node.out_repr
        if repr_ in (Repr.TAGGED, Repr.TAGGED_SIGNED):
            return node
        cached = env.tagged_of.get(node.id)
        if cached is not None:
            return cached
        if repr_ == Repr.INT32:
            if self._smi_safe(node):
                tagged = self.emit("tag_int32", [node], Repr.TAGGED_SIGNED)
            else:
                tagged = self.emit(
                    "checked_tag_int32",
                    [node],
                    Repr.TAGGED_SIGNED,
                    check_kind=CheckKind.OVERFLOW,
                    with_checkpoint=True,
                )
        elif repr_ == Repr.FLOAT64:
            # V8's ChangeFloat64ToTagged: integral values in SMI range are
            # tagged inline; everything else allocates a HeapNumber.
            tagged = self.emit("float64_to_tagged", [node], Repr.TAGGED)
        elif repr_ == Repr.BOOL:
            tagged = self.emit(
                "bool_to_tagged",
                [node],
                Repr.TAGGED,
                {
                    "true_word": self.heap.true_value,
                    "false_word": self.heap.false_value,
                },
            )
        else:
            raise BailoutCompilation(f"cannot tag {repr_}")
        env.tagged_of[node.id] = tagged
        env.untagged.setdefault(tagged.id, node if repr_ == Repr.INT32 else None)  # type: ignore[arg-type]
        if env.untagged.get(tagged.id) is None:
            env.untagged.pop(tagged.id, None)
        return tagged

    def tagged_smi_view(self, node: Node) -> Node:
        """A TAGGED_SIGNED view of a value (for tagged SMI comparisons)."""
        if node.out_repr == Repr.TAGGED_SIGNED:
            return node
        if node.out_repr == Repr.TAGGED:
            # checked untag proves SMI-ness; the original node is then a
            # valid tagged-SMI view.
            self.to_int32(node)
            return node
        if node.out_repr in (Repr.INT32, Repr.BOOL):
            return self.ensure_tagged(node)
        raise BailoutCompilation(f"no tagged SMI view for {node.out_repr}")

    # -- checks ----------------------------------------------------------

    def check_map(self, node: Node, expected: Map, depend: bool = False) -> None:
        env = self.env
        assert env is not None
        if env.checked_maps.get(node.id) is expected:
            return
        self.heap.ensure_map_registered(expected)
        needs_smi_check = node.out_repr == Repr.TAGGED
        if needs_smi_check:
            self.emit(
                "check_heap_object",
                [node],
                Repr.NONE,
                check_kind=CheckKind.SMI,
                with_checkpoint=True,
            )
        self.emit(
            "check_map",
            [node],
            Repr.NONE,
            {"map": expected},
            check_kind=CheckKind.WRONG_MAP,
            with_checkpoint=True,
        )
        env.checked_maps[node.id] = expected
        if depend:
            self.map_dependencies.add(expected)

    def check_bounds(self, index: Node, array: Node) -> Node:
        tagged_index = self.tagged_smi_view(index)
        self.emit(
            "check_bounds",
            [tagged_index, array],
            Repr.NONE,
            {"length_offset": JS_ARRAY_LENGTH_OFFSET},
            check_kind=CheckKind.OUT_OF_BOUNDS,
            with_checkpoint=True,
        )
        return tagged_index

    def soft_deopt(self, kind: CheckKind = CheckKind.INSUFFICIENT_FEEDBACK) -> None:
        self.emit(
            "deopt",
            [],
            Repr.NONE,
            check_kind=kind,
            with_checkpoint=True,
        )

    # ------------------------------------------------------------------
    # Main driver
    # ------------------------------------------------------------------

    def build(self) -> Graph:
        info = self.info
        heap = self.heap
        if info.param_count > 7:
            raise BailoutCompilation(
                f"{info.param_count} parameters exceed the calling convention"
            )
        entry_env = Env(info.register_count, None)  # type: ignore[arg-type]
        undefined = self.const_tagged(heap.undefined)
        for reg in range(info.register_count):
            entry_env.regs[reg] = undefined
        for index in range(info.param_count):
            parameter = self.emit(
                "parameter", [], Repr.TAGGED, {"index": index}, block=self.graph.entry
            )
            entry_env.regs[index] = parameter
        if info.uses_this:
            self.this_node = self.emit(
                "this", [], Repr.TAGGED, {}, block=self.graph.entry
            )

        code = info.bytecode
        first_start = self.block_starts[0]
        # The entry block holds parameters/constants only and jumps to the
        # first bytecode block, so loop headers never share a block with it.
        for start in self.block_starts:
            self._block_for(start)  # pre-create in bytecode order
        self.block = self.graph.entry
        self.env = entry_env
        self.current_pc = 0
        self._register_edge(first_start, entry_env, 0)
        self.emit("goto", [], Repr.NONE, {"target_block": self._block_for(first_start)})
        for start_index, start in enumerate(self.block_starts):
            end = (
                self.block_starts[start_index + 1]
                if start_index + 1 < len(self.block_starts)
                else len(code)
            )
            block = self._block_for(start)
            env = self._entry_env_for(start, block)
            if env is None:
                continue  # unreachable block
            self.block = block
            self.env = env
            self._build_range(start, end)
        return self.graph

    def build_inlined(self, caller_block: Block, arg_values: List[Node]) -> List[Tuple[Node, Block, Env]]:
        """Build this function's body inline, entered from ``caller_block``.

        Returns the (value, block, env) triples of the reachable returns;
        the caller wires them into a continuation block.
        """
        info = self.info
        heap = self.heap
        entry_env = Env(info.register_count, None)  # type: ignore[arg-type]
        undefined = self.const_tagged(heap.undefined)
        for reg in range(info.register_count):
            entry_env.regs[reg] = undefined
        for index in range(info.param_count):
            entry_env.regs[index] = (
                arg_values[index] if index < len(arg_values) else undefined
            )
        code = info.bytecode
        for start in self.block_starts:
            self._block_for(start)
        first_start = self.block_starts[0]
        self.block = caller_block
        self.env = entry_env
        self.current_pc = 0
        self._register_edge(first_start, entry_env, 0)
        self.emit("goto", [], Repr.NONE, {"target_block": self._block_for(first_start)})
        for start_index, start in enumerate(self.block_starts):
            end = (
                self.block_starts[start_index + 1]
                if start_index + 1 < len(self.block_starts)
                else len(code)
            )
            block = self._block_for(start)
            env = self._entry_env_for(start, block)
            if env is None:
                continue
            self.block = block
            self.env = env
            self._build_range(start, end)
        return self.inline_returns

    def _block_for(self, start: int) -> Block:
        block = self.blocks_by_start.get(start)
        if block is None:
            block = self.graph.new_block()
            self.blocks_by_start[start] = block
            self.block_bytecode_pc[block.id] = start
        return block

    def _entry_env_for(self, start: int, block: Block) -> Optional[Env]:
        edges = self.edge_envs.get(start)
        if not edges:
            return None
        if start in self.loop_headers:
            if len(edges) != 1:
                # Loop headers with multiple forward predecessors would need
                # nested phi layers; bail out and stay interpreted.
                raise BailoutCompilation("loop header with multiple forward preds")
            merged = self._merge_forward_edges(start, block, edges)
            return self._make_loop_header_env(start, block, merged)
        return self._merge_forward_edges(start, block, edges)

    def _merge_forward_edges(
        self, start: int, block: Block, edges: List[Tuple[Block, Env, int]]
    ) -> Env:
        for pred, _env, _pc in edges:
            self.graph.connect(pred, block)
        if len(edges) == 1:
            return edges[0][1].copy()
        live = self.live_in[start]
        base = edges[0][1].copy()
        reprs_per_reg: Dict[int, Repr] = {}
        for reg in range(len(base.regs)):
            if reg not in live:
                continue
            nodes = [env.regs[reg] for _b, env, _pc in edges]
            if all(node is nodes[0] for node in nodes):
                continue
            reprs_per_reg[reg] = self._merge_repr([n.out_repr for n in nodes])
        for reg, target_repr in reprs_per_reg.items():
            phi_inputs = []
            for pred, env, edge_pc in edges:
                value = env.regs[reg]
                converted = self._convert_on_edge(value, target_repr, pred, env, edge_pc)
                phi_inputs.append(converted)
            phi = self.graph.new_node(
                "phi",
                phi_inputs,
                target_repr,
                {"smi_safe": all(self._smi_safe_static(n) for n in phi_inputs)},
            )
            block.nodes.insert(0, phi)
            phi.block = block
            base.regs[reg] = phi
        # Intersect caches across all incoming envs.
        for _pred, env, _pc in edges[1:]:
            _merge_caches(base.untagged, env.untagged)  # type: ignore[arg-type]
            _merge_caches(base.floated, env.floated)  # type: ignore[arg-type]
            _merge_caches(base.tagged_of, env.tagged_of)  # type: ignore[arg-type]
            _merge_caches(base.checked_maps, env.checked_maps)  # type: ignore[arg-type]
            base.bounded &= env.bounded
        return base

    def _smi_safe_static(self, node: Node) -> bool:
        return self._smi_safe(node) or node.out_repr in (
            Repr.TAGGED_SIGNED,
            Repr.TAGGED,
            Repr.FLOAT64,
        )

    def _merge_repr(self, reprs: List[Repr]) -> Repr:
        unique = set(reprs)
        if len(unique) == 1:
            return reprs[0]
        if unique <= {Repr.TAGGED, Repr.TAGGED_SIGNED}:
            return Repr.TAGGED
        if unique <= {Repr.INT32, Repr.BOOL}:
            return Repr.INT32
        if unique <= {Repr.FLOAT64, Repr.INT32, Repr.BOOL, Repr.TAGGED_SIGNED}:
            return Repr.FLOAT64
        return Repr.TAGGED

    def _convert_on_edge(
        self, value: Node, target: Repr, pred: Block, env: Env, edge_pc: int
    ) -> Node:
        if value.out_repr == target or (
            target == Repr.TAGGED and value.out_repr == Repr.TAGGED_SIGNED
        ):
            return value
        saved_block, saved_env, saved_pc = self.block, self.env, self.current_pc
        saved_cp = self._checkpoint_cache
        self.block, self.env, self.current_pc = pred, env, edge_pc
        self._checkpoint_cache = None
        try:
            if target == Repr.INT32:
                return self.to_int32(value)
            if target == Repr.FLOAT64:
                return self.to_float64(value)
            return self.ensure_tagged(value)
        finally:
            self.block, self.env, self.current_pc = saved_block, saved_env, saved_pc
            self._checkpoint_cache = saved_cp

    def _make_loop_header_env(self, start: int, block: Block, base: Env) -> Env:
        block.loop_header = True
        env = base.copy()
        live_at_header = self.live_in[start]
        self.header_entry_checkpoints[start] = Checkpoint(
            start,
            [
                (reg, base.regs[reg])
                for reg in sorted(live_at_header)
                if reg < len(base.regs)
            ],
            self.this_node,
        )
        live = live_at_header & self._regs_written_in_loop(start)
        phis: Dict[int, Node] = {}
        for reg in sorted(live):
            if reg >= len(env.regs):
                continue
            value = env.regs[reg]
            phi = self.graph.new_node(
                "phi",
                [value],
                value.out_repr if value.out_repr != Repr.BOOL else Repr.INT32,
                {"smi_safe": self._smi_safe_static(value), "loop": True},
            )
            block.nodes.insert(len(phis), phi)
            phi.block = block
            env.regs[reg] = phi
            phis[reg] = phi
        self.loop_phis[start] = phis
        # Value-based caches (smi-checked, float versions) hold immutable
        # facts and stay valid inside the loop — the forward predecessor
        # dominates the header, and phi'd registers get fresh node ids so no
        # stale entry can be consulted.  Map checks are *not* immutable: a
        # call in a previous iteration may have transitioned the map, so the
        # map cache is flushed here (the LICM pass re-hoists invariant map
        # checks out of call-free loops).
        env.checked_maps.clear()
        return env

    def _register_edge(self, target_start: int, env: Env, edge_pc: int) -> None:
        assert self.block is not None
        self.edge_envs.setdefault(target_start, []).append(
            (self.block, env, edge_pc)
        )

    def _take_back_edge(self, header_start: int, env: Env, edge_pc: int) -> None:
        assert self.block is not None
        header = self.blocks_by_start[header_start]
        self.graph.connect(self.block, header)
        phis = self.loop_phis.get(header_start, {})
        for reg, phi in phis.items():
            value = env.regs[reg]
            converted = self._convert_on_edge(
                value, phi.out_repr, self.block, env, edge_pc
            )
            phi.inputs.append(converted)
            if not self._smi_safe_static(converted):
                phi.params["smi_safe"] = False

    # ------------------------------------------------------------------
    # Per-bytecode translation
    # ------------------------------------------------------------------

    def _build_range(self, start: int, end: int) -> None:
        code = self.info.bytecode
        pc = start
        env = self.env
        assert env is not None
        while pc < end:
            self.current_pc = pc
            self._checkpoint_cache = None
            instr = code[pc]
            op = instr.op
            if op == Op.JUMP:
                if instr.a <= pc:
                    self._take_back_edge(instr.a, env, pc)
                else:
                    self._register_edge(instr.a, env.copy(), pc)
                self.emit("goto", [], Repr.NONE, {"target_block": self._block_for(instr.a)})
                return
            if op in (Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE):
                self._build_conditional_jump(instr, pc, env)
                return
            if op == Op.RETURN:
                if self.inline_depth > 0:
                    # Inlined return: record the raw-repr value; the caller
                    # wires this block to the continuation.
                    self.inline_returns.append(
                        (env.regs[instr.a], self.block, env.copy())
                    )
                    return
                value = self.ensure_tagged(env.regs[instr.a])
                self.emit("return", [value], Repr.NONE)
                return
            terminated = self._build_straightline(instr, pc, env)
            if terminated:
                return
            pc += 1
        # Fall through into the next block.
        if pc < len(code):
            self._register_edge(pc, env.copy(), pc - 1 if pc > 0 else 0)
            self.emit("goto", [], Repr.NONE, {"target_block": self._block_for(pc)})

    def _build_conditional_jump(self, instr: Instr, pc: int, env: Env) -> None:
        condition = self._to_bool(env.regs[instr.b])
        target = instr.a
        fallthrough = pc + 1
        if instr.op == Op.JUMP_IF_FALSE:
            true_start, false_start = fallthrough, target
        else:
            true_start, false_start = target, fallthrough
        self.emit(
            "branch",
            [condition],
            Repr.NONE,
            {
                "true_block": self._block_for(true_start),
                "false_block": self._block_for(false_start),
            },
        )
        bounded_pair = self._guard_bounded_pair(condition, env)
        for branch_start in (true_start, false_start):
            if branch_start <= pc:
                self._take_back_edge(branch_start, env, pc)
            else:
                edge_env = env.copy()
                if bounded_pair is not None and branch_start == true_start:
                    edge_env.bounded.add(bounded_pair)
                self._register_edge(branch_start, edge_env, pc)

    def _guard_bounded_pair(self, condition: Node, env: Env) -> Optional[Tuple[int, int]]:
        """(index node id, array node id) when the condition is an
        ``i < a.length`` guard over a monotonic non-negative ``i``."""
        if condition.op != "int32_cmp" or condition.param("cond") != "lt":
            return None
        lhs, rhs = condition.inputs
        if rhs.op != "load_array_length":
            return None
        array = rhs.inputs[0]
        for reg in self.monotonic_nonneg:
            if reg < len(env.regs) and env.regs[reg] is lhs:
                return (lhs.id, array.id)
        return None

    def _to_bool(self, node: Node) -> Node:
        if node.out_repr == Repr.BOOL:
            return node
        if node.out_repr in (Repr.INT32,):
            return self.emit(
                "int32_cmp", [node, self.const_int32(0)], Repr.BOOL, {"cond": "ne"}
            )
        if node.out_repr == Repr.TAGGED_SIGNED:
            return self.emit(
                "int32_cmp",
                [self.to_int32(node), self.const_int32(0)],
                Repr.BOOL,
                {"cond": "ne"},
            )
        if node.out_repr == Repr.FLOAT64:
            return self.emit("float64_truthy", [node], Repr.BOOL)
        # Generic tagged truthiness: ToBoolean builtin (not a deopt check).
        return self.emit("call_rt", [node], Repr.BOOL, {"name": "to_boolean"})

    # -- straight-line ops -------------------------------------------------

    def _build_straightline(self, instr: Instr, pc: int, env: Env) -> bool:
        """Translate one non-control bytecode; True if the block ended
        (soft deopt)."""
        op = instr.op
        heap = self.heap

        if op == Op.LOAD_CONST:
            kind, value = self.info.constants[instr.a]
            if kind == "int":
                if heap.config.fits_smi(value):  # type: ignore[arg-type]
                    env.regs[instr.dst] = self.const_int32(value)  # type: ignore[arg-type]
                else:
                    env.regs[instr.dst] = self.const_float(float(value))  # type: ignore[arg-type]
            elif kind == "float":
                env.regs[instr.dst] = self.const_float(value)  # type: ignore[arg-type]
            elif kind == "string":
                env.regs[instr.dst] = self.const_tagged(
                    heap.alloc_string(value, intern=True)  # type: ignore[arg-type]
                )
            else:
                word = {
                    "undefined": heap.undefined,
                    "null": heap.null,
                    "true": heap.true_value,
                    "false": heap.false_value,
                }[value]
                env.regs[instr.dst] = self.const_tagged(word)
            return False

        if op == Op.MOVE:
            env.regs[instr.dst] = env.regs[instr.a]
            return False

        if op == Op.LOAD_THIS:
            assert self.this_node is not None
            env.regs[instr.dst] = self.this_node
            return False

        if op == Op.LOAD_GLOBAL:
            slot: GlobalSlot = self.feedback.global_slot(instr.d)
            cell = slot.cell_index
            if cell < 0:
                cell = self.context.global_cell_index(self.info.names[instr.a])
            array = self.const_tagged(self.context.global_array_word())
            env.regs[instr.dst] = self.emit(
                "load_field",
                [array],
                Repr.TAGGED,
                {"offset": FIXED_ARRAY_ELEMENTS_OFFSET + cell, "global": True},
            )
            return False

        if op == Op.STORE_GLOBAL:
            cell = self.context.global_cell_index(self.info.names[instr.a])
            array = self.const_tagged(self.context.global_array_word())
            value = self.ensure_tagged(env.regs[instr.b])
            self.emit(
                "store_field",
                [array, value],
                Repr.NONE,
                {"offset": FIXED_ARRAY_ELEMENTS_OFFSET + cell, "global": True},
            )
            return False

        if op in _ARITH_BYTECODES:
            return self._build_arith(instr, _ARITH_BYTECODES[op], env)

        if op in _BITWISE_BYTECODES:
            return self._build_bitwise(instr, _BITWISE_BYTECODES[op], env)

        if op in _COMPARE_BYTECODES:
            return self._build_compare(instr, op, env)

        if op == Op.NEG:
            slot = self.feedback.binary(instr.d) if instr.d >= 0 else None
            state = slot.state if slot else OperandFeedback.NONE
            if state == OperandFeedback.NONE:
                self.soft_deopt()
                return True
            value = env.regs[instr.a]
            if state == OperandFeedback.SIGNED_SMALL and value.out_repr in (
                Repr.INT32,
                Repr.TAGGED_SIGNED,
                Repr.TAGGED,
            ):
                env.regs[instr.dst] = self.emit(
                    "checked_int32_neg",
                    [self.to_int32(value)],
                    Repr.INT32,
                    check_kind=CheckKind.MINUS_ZERO,
                    with_checkpoint=True,
                )
            else:
                env.regs[instr.dst] = self.emit(
                    "float64_neg", [self.to_float64(value)], Repr.FLOAT64
                )
            return False

        if op == Op.TO_NUMBER:
            slot = self.feedback.binary(instr.d) if instr.d >= 0 else None
            state = slot.state if slot else OperandFeedback.NONE
            value = env.regs[instr.a]
            if state == OperandFeedback.SIGNED_SMALL:
                env.regs[instr.dst] = self.to_int32(value)
            elif state in (OperandFeedback.NUMBER, OperandFeedback.NONE):
                env.regs[instr.dst] = self.to_float64(value)
            else:
                env.regs[instr.dst] = self.emit(
                    "call_rt",
                    [self.ensure_tagged(value)],
                    Repr.TAGGED,
                    {"name": "to_number"},
                )
            return False

        if op == Op.NOT:
            env.regs[instr.dst] = self.emit(
                "bool_not", [self._to_bool(env.regs[instr.a])], Repr.BOOL
            )
            return False

        if op == Op.BIT_NOT:
            value = self.to_int32_truncating(env.regs[instr.a])
            env.regs[instr.dst] = self.emit(
                "int32_xor", [value, self.const_int32(-1)], Repr.INT32
            )
            return False

        if op == Op.TYPEOF:
            env.regs[instr.dst] = self.emit(
                "call_rt",
                [self.ensure_tagged(env.regs[instr.a])],
                Repr.TAGGED,
                {"name": "typeof"},
            )
            return False

        if op == Op.GET_PROPERTY:
            return self._build_get_property(instr, env)
        if op == Op.SET_PROPERTY:
            return self._build_set_property(instr, env)
        if op == Op.GET_ELEMENT:
            return self._build_get_element(instr, env)
        if op == Op.SET_ELEMENT:
            return self._build_set_element(instr, env)
        if op == Op.CALL:
            return self._build_call(instr, env)
        if op == Op.CALL_METHOD:
            return self._build_call_method(instr, env)
        if op == Op.NEW:
            return self._build_new(instr, env)

        if op == Op.CREATE_ARRAY:
            elements = [self.ensure_tagged(env.regs[r]) for r in instr.c]
            env.regs[instr.dst] = self.emit(
                "call_rt", elements, Repr.TAGGED, {"name": "create_array"}
            )
            env.flush_effects()
            return False

        if op == Op.CREATE_OBJECT:
            values = [self.ensure_tagged(env.regs[r]) for r in instr.e]
            names = [self.info.names[k] for k in instr.c]
            env.regs[instr.dst] = self.emit(
                "call_rt", values, Repr.TAGGED, {"name": "create_object", "keys": names}
            )
            env.flush_effects()
            return False

        if op == Op.CREATE_CLOSURE:
            word = self.context.closure_word_for(instr.a)
            env.regs[instr.dst] = self.const_tagged(word)
            return False

        raise BailoutCompilation(f"unsupported bytecode {op.name}")

    # -- arithmetic --------------------------------------------------------

    def _build_arith(self, instr: Instr, kind: str, env: Env) -> bool:
        slot: BinaryOpSlot = self.feedback.binary(instr.d)
        state = slot.state
        if state == OperandFeedback.NONE:
            self.soft_deopt()
            return True
        lhs, rhs = env.regs[instr.a], env.regs[instr.b]
        if state == OperandFeedback.SIGNED_SMALL:
            left = self.to_int32(lhs)
            right = self.to_int32(rhs)
            if kind in ("div", "mod"):
                self.emit(
                    "check_nonzero",
                    [right],
                    Repr.NONE,
                    check_kind=CheckKind.DIVISION_BY_ZERO,
                    with_checkpoint=True,
                )
                env.regs[instr.dst] = self.emit(
                    f"checked_int32_{kind}",
                    [left, right],
                    Repr.INT32,
                    check_kind=CheckKind.LOST_PRECISION,
                    with_checkpoint=True,
                )
            else:
                check = (
                    CheckKind.OVERFLOW if kind != "mul" else CheckKind.OVERFLOW
                )
                env.regs[instr.dst] = self.emit(
                    f"checked_int32_{kind}",
                    [left, right],
                    Repr.INT32,
                    check_kind=check,
                    with_checkpoint=True,
                )
            return False
        if state == OperandFeedback.NUMBER:
            left = self.to_float64(lhs)
            right = self.to_float64(rhs)
            if kind == "mod":
                env.regs[instr.dst] = self.emit(
                    "call_rt", [left, right], Repr.FLOAT64, {"name": "float64_mod"}
                )
            else:
                env.regs[instr.dst] = self.emit(
                    f"float64_{kind}", [left, right], Repr.FLOAT64
                )
            return False
        # STRING / ANY: generic builtin (string concatenation etc.).
        env.regs[instr.dst] = self.emit(
            "call_rt",
            [self.ensure_tagged(lhs), self.ensure_tagged(rhs)],
            Repr.TAGGED,
            {"name": f"generic_{kind}"},
        )
        env.flush_effects()
        return False

    def _build_bitwise(self, instr: Instr, kind: str, env: Env) -> bool:
        slot: BinaryOpSlot = self.feedback.binary(instr.d)
        state = slot.state
        if state == OperandFeedback.NONE:
            self.soft_deopt()
            return True
        lhs, rhs = env.regs[instr.a], env.regs[instr.b]
        if state in (OperandFeedback.SIGNED_SMALL, OperandFeedback.NUMBER):
            left = self.to_int32_truncating(lhs)
            right = self.to_int32_truncating(rhs)
            env.regs[instr.dst] = self.emit(
                f"int32_{kind}", [left, right], Repr.INT32
            )
            return False
        env.regs[instr.dst] = self.emit(
            "call_rt",
            [self.ensure_tagged(lhs), self.ensure_tagged(rhs)],
            Repr.TAGGED,
            {"name": f"generic_{kind}"},
        )
        env.flush_effects()
        return False

    def _build_compare(self, instr: Instr, op: Op, env: Env) -> bool:
        cond = _COMPARE_BYTECODES[op]
        strict = op in (Op.TEST_EQ_STRICT, Op.TEST_NE_STRICT)
        negate = op in (Op.TEST_NE, Op.TEST_NE_STRICT)
        slot: BinaryOpSlot = self.feedback.binary(instr.d) if instr.d >= 0 else None  # type: ignore[assignment]
        state = slot.state if slot is not None else OperandFeedback.ANY
        lhs, rhs = env.regs[instr.a], env.regs[instr.b]
        if state == OperandFeedback.NONE and not strict:
            self.soft_deopt()
            return True
        if state == OperandFeedback.SIGNED_SMALL or (
            strict
            and lhs.out_repr in (Repr.INT32, Repr.TAGGED_SIGNED)
            and rhs.out_repr in (Repr.INT32, Repr.TAGGED_SIGNED)
        ):
            result = self.emit(
                "int32_cmp",
                [self.to_int32(lhs), self.to_int32(rhs)],
                Repr.BOOL,
                {"cond": cond},
            )
        elif state == OperandFeedback.NUMBER:
            result = self.emit(
                "float64_cmp",
                [self.to_float64(lhs), self.to_float64(rhs)],
                Repr.BOOL,
                {"cond": cond},
            )
        elif strict and cond in ("eq", "ne"):
            result = self.emit(
                "call_rt",
                [self.ensure_tagged(lhs), self.ensure_tagged(rhs)],
                Repr.BOOL,
                {"name": "strict_equals"},
            )
        else:
            name = "loose_equals" if cond in ("eq", "ne") else f"generic_cmp_{cond}"
            result = self.emit(
                "call_rt",
                [self.ensure_tagged(lhs), self.ensure_tagged(rhs)],
                Repr.BOOL,
                {"name": name},
            )
        if negate:
            result = self.emit("bool_not", [result], Repr.BOOL)
        env.regs[instr.dst] = result
        return False

    # -- properties / elements ----------------------------------------------

    def _build_get_property(self, instr: Instr, env: Env) -> bool:
        slot: PropertySlot = self.feedback.property(instr.d)
        receiver = env.regs[instr.a]
        name = self.info.names[instr.b]
        if slot.state == ICState.UNINITIALIZED:
            self.soft_deopt()
            return True
        mono = slot.monomorphic_map
        if mono is not None:
            offset = slot.offsets[0]
            self.check_map(receiver, mono)
            if offset == -2:  # JSArray length
                length = self.emit(
                    "load_array_length",
                    [receiver],
                    Repr.INT32,
                    {"offset": JS_ARRAY_LENGTH_OFFSET},
                )
                env.regs[instr.dst] = length
            elif offset == -3:  # String length
                env.regs[instr.dst] = self.emit(
                    "load_string_length",
                    [receiver],
                    Repr.INT32,
                    {"offset": STRING_LENGTH_OFFSET},
                )
            elif offset == -1:  # known-absent property
                env.regs[instr.dst] = self.const_tagged(self.heap.undefined)
            else:
                env.regs[instr.dst] = self.emit(
                    "load_field", [receiver], Repr.TAGGED, {"offset": offset, "name": name}
                )
            return False
        env.regs[instr.dst] = self.emit(
            "call_rt",
            [self.ensure_tagged(receiver)],
            Repr.TAGGED,
            {"name": "get_property_generic", "key": name},
        )
        env.flush_effects()
        return False

    def _build_set_property(self, instr: Instr, env: Env) -> bool:
        slot: PropertySlot = self.feedback.property(instr.d)
        receiver = env.regs[instr.a]
        name = self.info.names[instr.b]
        value = self.ensure_tagged(env.regs[instr.c])
        mono = slot.monomorphic_map
        if slot.state == ICState.UNINITIALIZED:
            self.soft_deopt()
            return True
        if mono is not None and not slot.saw_transition and slot.offsets[0] >= 1:
            self.check_map(receiver, mono)
            self.emit(
                "store_field",
                [receiver, value],
                Repr.NONE,
                {"offset": slot.offsets[0], "name": name},
            )
            return False
        self.emit(
            "call_rt",
            [self.ensure_tagged(receiver), value],
            Repr.NONE,
            {"name": "set_property_generic", "key": name},
        )
        env.flush_effects()
        return False

    def _build_get_element(self, instr: Instr, env: Env) -> bool:
        slot: ElementSlot = self.feedback.element(instr.d)
        receiver = env.regs[instr.a]
        key = env.regs[instr.b]
        if slot.state == ICState.UNINITIALIZED:
            self.soft_deopt()
            return True
        mono = slot.monomorphic_map
        if (
            mono is not None
            and mono.instance_type == InstanceType.JS_ARRAY
            and not slot.saw_out_of_bounds
            and not slot.saw_non_smi_index
        ):
            self.check_map(receiver, mono, depend=True)
            if (key.id, receiver.id) in env.bounded:
                index = self.to_int32(key)  # bounds proven by the loop guard
            else:
                index_tagged = self.check_bounds(key, receiver)
                index = self.to_int32(index_tagged if key.out_repr not in (Repr.INT32, Repr.BOOL) else key)
            elements = self.emit(
                "load_field",
                [receiver],
                Repr.TAGGED,
                {"offset": JS_ARRAY_ELEMENTS_OFFSET, "name": "<elements>"},
            )
            kind = mono.elements_kind
            if kind == ElementsKind.PACKED_SMI:
                load = self.emit(
                    "load_element_signed",
                    [elements, index],
                    Repr.TAGGED_SIGNED,
                    {"base_offset": FIXED_ARRAY_ELEMENTS_OFFSET},
                )
                # Eagerly untag right next to the load: representation
                # selection keeps SMI element values as machine ints (and
                # the adjacency is what lets the arm64+smi backend fuse the
                # pair into a single jsldrsmi).  DCE removes the untag when
                # the value is only ever used tagged.
                untagged = self.emit("untag_signed", [load], Repr.INT32)
                env.untagged[load.id] = untagged
                env.tagged_of[untagged.id] = load
                env.regs[instr.dst] = load
            elif kind == ElementsKind.PACKED_DOUBLE:
                env.regs[instr.dst] = self.emit(
                    "load_element_float",
                    [elements, index],
                    Repr.FLOAT64,
                    {"base_offset": FIXED_ARRAY_ELEMENTS_OFFSET},
                )
            else:
                env.regs[instr.dst] = self.emit(
                    "load_element",
                    [elements, index],
                    Repr.TAGGED,
                    {"base_offset": FIXED_ARRAY_ELEMENTS_OFFSET},
                )
            return False
        env.regs[instr.dst] = self.emit(
            "call_rt",
            [self.ensure_tagged(receiver), self.ensure_tagged(key)],
            Repr.TAGGED,
            {"name": "get_element_generic"},
        )
        env.flush_effects()
        return False

    def _build_set_element(self, instr: Instr, env: Env) -> bool:
        slot: ElementSlot = self.feedback.element(instr.d)
        receiver = env.regs[instr.a]
        key = env.regs[instr.b]
        value = env.regs[instr.c]
        if slot.state == ICState.UNINITIALIZED:
            self.soft_deopt()
            return True
        mono = slot.monomorphic_map
        if (
            mono is not None
            and mono.instance_type == InstanceType.JS_ARRAY
            and not slot.saw_out_of_bounds
            and not slot.saw_non_smi_index
        ):
            self.check_map(receiver, mono, depend=True)
            if (key.id, receiver.id) in env.bounded:
                index = self.to_int32(key)  # bounds proven by the loop guard
            else:
                index_tagged = self.check_bounds(key, receiver)
                index = self.to_int32(index_tagged if key.out_repr not in (Repr.INT32, Repr.BOOL) else key)
            elements = self.emit(
                "load_field",
                [receiver],
                Repr.TAGGED,
                {"offset": JS_ARRAY_ELEMENTS_OFFSET, "name": "<elements>"},
            )
            kind = mono.elements_kind
            if kind == ElementsKind.PACKED_SMI:
                # Stored value must be an SMI (Not-a-SMI check on stores).
                stored = self.tagged_smi_view(value)
                self.emit(
                    "store_element",
                    [elements, index, stored],
                    Repr.NONE,
                    {"base_offset": FIXED_ARRAY_ELEMENTS_OFFSET},
                )
            elif kind == ElementsKind.PACKED_DOUBLE:
                self.emit(
                    "store_element_float",
                    [elements, index, self.to_float64(value)],
                    Repr.NONE,
                    {"base_offset": FIXED_ARRAY_ELEMENTS_OFFSET},
                )
            else:
                self.emit(
                    "store_element",
                    [elements, index, self.ensure_tagged(value)],
                    Repr.NONE,
                    {"base_offset": FIXED_ARRAY_ELEMENTS_OFFSET},
                )
            return False
        self.emit(
            "call_rt",
            [
                self.ensure_tagged(receiver),
                self.ensure_tagged(key),
                self.ensure_tagged(value),
            ],
            Repr.NONE,
            {"name": "set_element_generic"},
        )
        env.flush_effects()
        return False

    # -- calls --------------------------------------------------------------

    def _build_call(self, instr: Instr, env: Env) -> bool:
        slot: CallSlot = self.feedback.call(instr.d)
        callee = env.regs[instr.b]
        args = [self.ensure_tagged(env.regs[r]) for r in instr.c]
        if slot.state == ICState.UNINITIALIZED:
            self.soft_deopt()
            return True
        if slot.state == ICState.MONOMORPHIC and slot.target_shared_index >= 0:
            expected = self.context.closure_word_for(slot.target_shared_index)
            self.embedded_words.add(expected)
            self.emit(
                "check_call_target",
                [self.ensure_tagged(callee)],
                Repr.NONE,
                {"expected_word": expected},
                check_kind=CheckKind.WRONG_CALL_TARGET,
                with_checkpoint=True,
            )
            raw_args = [env.regs[r] for r in instr.c]
            inlined = self._try_inline(
                instr, env, slot.target_shared_index, raw_args
            )
            if inlined:
                return False
            env.regs[instr.dst] = self.emit(
                "call_js",
                args,
                Repr.TAGGED,
                {"shared_index": slot.target_shared_index},
            )
        else:
            env.regs[instr.dst] = self.emit(
                "call_dyn", [self.ensure_tagged(callee)] + args, Repr.TAGGED, {}
            )
        env.flush_effects()
        return False

    def _try_inline(
        self, instr: Instr, env: Env, target_index: int, raw_args: List[Node]
    ) -> bool:
        """Inline a monomorphic call to a small pure callee; True on success.

        Every deopt inside the inlined body (including soft deopts on cold
        callee paths) resumes the interpreter at the *call* bytecode, which
        re-executes the callee — sound because the callee is effect-free.
        """
        if self.inline_depth > 0 or self.inline_budget <= 0:
            return False
        functions = getattr(self.context, "functions", None)
        if functions is None or target_index >= len(functions):
            return False
        target_shared = functions[target_index]
        if target_shared is self.shared or not callee_is_inlinable(target_shared):
            return False
        self.inline_budget -= 1
        call_site_checkpoint = self.current_checkpoint()
        nested = GraphBuilder(
            target_shared,
            self.context,
            graph=self.graph,
            checkpoint_override=call_site_checkpoint,
            inline_depth=self.inline_depth + 1,
        )
        assert self.block is not None
        returns = nested.build_inlined(self.block, raw_args)
        self.embedded_words |= nested.embedded_words
        self.map_dependencies |= nested.map_dependencies
        if not returns:
            raise BailoutCompilation(
                f"inlined {target_shared.name} has no reachable return"
            )
        continuation = self.graph.new_block()
        self.block_bytecode_pc[continuation.id] = self.current_pc
        if len(returns) == 1:
            value, block, _ret_env = returns[0]
            self.emit("goto", [], Repr.NONE, {"target_block": continuation}, block=block)
            self.graph.connect(block, continuation)
            result = value
        else:
            target_repr = self._merge_repr([v.out_repr for v, _b, _e in returns])
            phi_inputs: List[Node] = []
            saved_override = self.checkpoint_override
            self.checkpoint_override = call_site_checkpoint
            try:
                for value, block, ret_env in returns:
                    self.emit(
                        "goto", [], Repr.NONE, {"target_block": continuation}, block=block
                    )
                    converted = self._convert_on_edge(
                        value, target_repr, block, ret_env, self.current_pc
                    )
                    self.graph.connect(block, continuation)
                    phi_inputs.append(converted)
            finally:
                self.checkpoint_override = saved_override
            phi = self.graph.new_node(
                "phi",
                phi_inputs,
                target_repr,
                {"smi_safe": all(self._smi_safe_static(n) for n in phi_inputs)},
            )
            continuation.nodes.insert(0, phi)
            phi.block = continuation
            result = phi
        self.block = continuation
        env.regs[instr.dst] = result
        # The callee is pure: the caller's check caches stay valid.
        return True

    def _build_call_method(self, instr: Instr, env: Env) -> bool:
        slot: CallSlot = self.feedback.call(instr.d)
        receiver = env.regs[instr.b]
        name = self.info.names[instr.e]
        args = [self.ensure_tagged(env.regs[r]) for r in instr.c]
        if slot.state == ICState.UNINITIALIZED:
            self.soft_deopt()
            return True
        if slot.state == ICState.MONOMORPHIC and slot.method_kind is not None:
            receiver_kind, method = slot.method_kind
            if slot.receiver_map is not None:
                self.check_map(receiver, slot.receiver_map, depend=receiver_kind == "array")
            env.regs[instr.dst] = self.emit(
                "call_rt",
                [self.ensure_tagged(receiver)] + args,
                Repr.TAGGED,
                {"name": f"method:{receiver_kind}:{method}"},
            )
            env.flush_effects()
            return False
        if (
            slot.state == ICState.MONOMORPHIC
            and slot.is_method
            and slot.receiver_map is not None
        ):
            self.check_map(receiver, slot.receiver_map)
            method_node = self.emit(
                "load_field",
                [receiver],
                Repr.TAGGED,
                {"offset": slot.method_offset, "name": name},
            )
            expected = self.context.closure_word_for(slot.target_shared_index)
            self.embedded_words.add(expected)
            self.emit(
                "check_call_target",
                [method_node],
                Repr.NONE,
                {"expected_word": expected},
                check_kind=CheckKind.WRONG_CALL_TARGET,
                with_checkpoint=True,
            )
            env.regs[instr.dst] = self.emit(
                "call_js",
                args,
                Repr.TAGGED,
                {
                    "shared_index": slot.target_shared_index,
                    "this": True,
                },
                # receiver is passed as `this`; appended as final input below
            )
            env.regs[instr.dst].inputs.append(self.ensure_tagged(receiver))
            env.flush_effects()
            return False
        env.regs[instr.dst] = self.emit(
            "call_rt",
            [self.ensure_tagged(receiver)] + args,
            Repr.TAGGED,
            {"name": "call_method_generic", "key": name},
        )
        env.flush_effects()
        return False

    def _build_new(self, instr: Instr, env: Env) -> bool:
        callee = self.ensure_tagged(env.regs[instr.b])
        args = [self.ensure_tagged(env.regs[r]) for r in instr.c]
        env.regs[instr.dst] = self.emit(
            "call_rt", [callee] + args, Repr.TAGGED, {"name": "construct"}
        )
        env.flush_effects()
        return False


_PURE_BYTECODES = frozenset(
    {
        Op.LOAD_CONST,
        Op.MOVE,
        Op.LOAD_GLOBAL,
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.DIV,
        Op.MOD,
        Op.BIT_OR,
        Op.BIT_AND,
        Op.BIT_XOR,
        Op.SHL,
        Op.SAR,
        Op.SHR,
        Op.NEG,
        Op.NOT,
        Op.BIT_NOT,
        Op.TYPEOF,
        Op.TO_NUMBER,
        Op.TEST_LT,
        Op.TEST_LE,
        Op.TEST_GT,
        Op.TEST_GE,
        Op.TEST_EQ,
        Op.TEST_NE,
        Op.TEST_EQ_STRICT,
        Op.TEST_NE_STRICT,
        Op.JUMP,
        Op.JUMP_IF_FALSE,
        Op.JUMP_IF_TRUE,
        Op.GET_PROPERTY,
        Op.GET_ELEMENT,
        Op.RETURN,
    }
)


def callee_is_inlinable(shared) -> bool:
    """Small, side-effect-free, non-`this` functions can be inlined with
    call-site deopt states (re-executing the call is observationally safe)."""
    info = shared.info
    if info is None or shared.native_impl is not None:
        return False
    if info.uses_this or info.param_count > 7:
        return False
    if len(info.bytecode) > GraphBuilder.INLINE_SIZE_LIMIT:
        return False
    return all(instr.op in _PURE_BYTECODES for instr in info.bytecode)


def build_graph(shared, context) -> GraphBuilder:
    """Build and return the populated :class:`GraphBuilder` for ``shared``."""
    builder = GraphBuilder(shared, context)
    builder.build()
    return builder
