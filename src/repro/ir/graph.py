"""The IR graph container and common queries."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..jit.checks import CheckKind
from .nodes import Block, Checkpoint, Node, Repr


class Graph:
    """IR for one function: blocks in reverse-postorder-ish creation order."""

    def __init__(self, name: str = "<graph>") -> None:
        self.name = name
        self.blocks: List[Block] = []
        self.next_node_id = 0
        self.entry = self.new_block()

    # ------------------------------------------------------------------

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def new_node(
        self,
        op: str,
        inputs: Optional[List[Node]] = None,
        out_repr: Repr = Repr.NONE,
        params: Optional[Dict[str, object]] = None,
        check_kind: Optional[CheckKind] = None,
        checkpoint: Optional[Checkpoint] = None,
    ) -> Node:
        node = Node(
            self.next_node_id,
            op,
            inputs or [],
            out_repr,
            params,
            check_kind,
            checkpoint,
        )
        self.next_node_id += 1
        return node

    def connect(self, source: Block, destination: Block) -> None:
        if destination not in source.successors:
            source.successors.append(destination)
        destination.predecessors.append(source)

    # ------------------------------------------------------------------

    def all_nodes(self) -> Iterator[Node]:
        for block in self.blocks:
            yield from block.nodes

    def check_nodes(self) -> List[Node]:
        return [node for node in self.all_nodes() if node.is_check and not node.dead]

    def count_checks(self) -> Dict[CheckKind, int]:
        counts: Dict[CheckKind, int] = {}
        for node in self.check_nodes():
            assert node.check_kind is not None
            counts[node.check_kind] = counts.get(node.check_kind, 0) + 1
        return counts

    def compute_uses(self) -> Dict[int, int]:
        """Use counts per node id (checkpoint references do not count as
        uses for DCE purposes until the node is actually kept — the deopt
        metadata pins live checkpoint inputs separately)."""
        uses: Dict[int, int] = {}
        for node in self.all_nodes():
            if node.dead:
                continue
            for an_input in node.inputs:
                uses[an_input.id] = uses.get(an_input.id, 0) + 1
        return uses

    def to_text(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"graph {self.name}"]
        for block in self.blocks:
            preds = ",".join(f"B{p.id}" for p in block.predecessors)
            lines.append(f" B{block.id} (preds: {preds}){' LOOP' if block.loop_header else ''}")
            for node in block.nodes:
                if not node.dead:
                    lines.append(f"   {node!r}")
        return "\n".join(lines)
