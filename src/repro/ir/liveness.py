"""Backward liveness analysis over bytecode registers.

Deopt checkpoints must capture the interpreter frame, but capturing every
register would keep all of them alive through the whole optimized function
(bloating deopt metadata and register pressure).  V8 solves this with
bytecode liveness analysis; so do we: a checkpoint only records registers
live-in at its bytecode offset.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..bytecode.opcodes import FunctionInfo, Instr, Op


def _uses_defs(instr: Instr) -> Tuple[List[int], List[int]]:
    """(used registers, defined registers) for one bytecode."""
    op = instr.op
    uses: List[int] = []
    defs: List[int] = []
    if instr.dst >= 0:
        defs.append(instr.dst)
    if op in (Op.LOAD_CONST, Op.CREATE_CLOSURE, Op.LOAD_THIS, Op.JUMP,
              Op.LOAD_GLOBAL):
        pass
    elif op == Op.MOVE:
        uses.append(instr.a)
    elif op == Op.STORE_GLOBAL:
        uses.append(instr.b)
    elif op in (Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE):
        uses.append(instr.b)
    elif op == Op.RETURN:
        uses.append(instr.a)
    elif op in (Op.GET_PROPERTY,):
        uses.append(instr.a)
    elif op == Op.SET_PROPERTY:
        uses.extend([instr.a, instr.c])
    elif op == Op.GET_ELEMENT:
        uses.extend([instr.a, instr.b])
    elif op == Op.SET_ELEMENT:
        uses.extend([instr.a, instr.b, instr.c])
    elif op == Op.CALL:
        uses.append(instr.b)
        uses.extend(instr.c or [])
    elif op == Op.CALL_METHOD:
        uses.append(instr.b)
        uses.extend(instr.c or [])
    elif op == Op.NEW:
        uses.append(instr.b)
        uses.extend(instr.c or [])
    elif op == Op.CREATE_ARRAY:
        uses.extend(instr.c or [])
    elif op == Op.CREATE_OBJECT:
        uses.extend(instr.e or [])
    elif op in (Op.NEG, Op.NOT, Op.BIT_NOT, Op.TYPEOF, Op.TO_NUMBER):
        uses.append(instr.a)
    else:  # binary / compare ops
        uses.extend([instr.a, instr.b])
    return uses, defs


def compute_liveness(info: FunctionInfo) -> List[Set[int]]:
    """live-in register sets, one per bytecode index.

    Parameters are implicitly live at entry (they are, in the interpreter
    frame, ordinary registers).
    """
    code = info.bytecode
    count = len(code)
    live_in: List[Set[int]] = [set() for _ in range(count)]
    live_out: List[Set[int]] = [set() for _ in range(count)]
    successors: List[List[int]] = []
    for pc, instr in enumerate(code):
        if instr.op == Op.JUMP:
            successors.append([instr.a])
        elif instr.op in (Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE):
            successors.append([instr.a, pc + 1])
        elif instr.op == Op.RETURN:
            successors.append([])
        else:
            successors.append([pc + 1] if pc + 1 < count else [])

    changed = True
    while changed:
        changed = False
        for pc in range(count - 1, -1, -1):
            out: Set[int] = set()
            for successor in successors[pc]:
                out |= live_in[successor]
            uses, defs = _uses_defs(code[pc])
            new_in = (out - set(defs)) | set(uses)
            if new_in != live_in[pc] or out != live_out[pc]:
                live_in[pc] = new_in
                live_out[pc] = out
                changed = True
    return live_in
