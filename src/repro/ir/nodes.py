"""IR node and block definitions for the optimizing tier.

The IR is sea-of-nodes-flavoured: value nodes carry explicit input edges
(so dead-code elimination can delete a check's condition-only ancestors,
the mechanism of the paper's Fig. 5), while control is kept in ordered
basic blocks for simplicity of scheduling.

Checks are first-class nodes: every node whose ``check_kind`` is set can
trigger an eager deoptimization and carries a :class:`Checkpoint`
describing how to rebuild the interpreter frame.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..jit.checks import CheckKind


class Repr(Enum):
    """Value representation of a node's output."""

    NONE = "none"  # no value (stores, pure checks, control)
    TAGGED = "tagged"  # any tagged word
    TAGGED_SIGNED = "tagged_signed"  # tagged word known to be an SMI
    INT32 = "int32"  # untagged machine integer
    FLOAT64 = "float64"  # raw double in a float register
    BOOL = "bool"  # 0/1 machine integer


#: Ops producing a value that only exists to feed checks may be deleted by
#: DCE once the checks are gone.
PURE_OPS = frozenset(
    {
        "const_int32",
        "const_float",
        "const_tagged",
        "parameter",
        "this",
        "int32_add",
        "int32_sub",
        "int32_mul",
        "int32_and",
        "int32_or",
        "int32_xor",
        "int32_shl",
        "int32_sar",
        "int32_shr",
        "float64_add",
        "float64_sub",
        "float64_mul",
        "float64_div",
        "float64_neg",
        "float64_abs",
        "int32_cmp",
        "float64_cmp",
        "tagged_equal",
        "bool_not",
        "untag_signed",
        "tag_int32",
        "int32_to_float64",
        "load_field",
        "load_element",
        "load_element_signed",
        "load_element_float",
        "load_array_length",
        "load_string_length",
        "float64_to_int32_trunc",
        "float64_truthy",
        "bool_to_tagged",
        "float64_to_tagged",
        "phi",
    }
)

#: Ops with side effects or control relevance — never removed by DCE.
EFFECTFUL_OPS = frozenset(
    {
        "store_field",
        "store_element",
        "store_element_float",
        "store_global",
        "call_js",
        "call_dyn",
        "call_rt",
        "branch",
        "goto",
        "return",
        "deopt",
        "alloc_heap_number",
    }
)


class Checkpoint:
    """Interpreter frame state captured before a potentially-deopting op.

    ``values`` maps interpreter register index -> IR node currently holding
    that register's value.  On deopt, the deoptimizer re-materializes each
    from the node's machine location (register / stack slot / constant) and
    resumes the interpreter at ``bytecode_pc``.
    """

    __slots__ = ("bytecode_pc", "values", "this_node")

    def __init__(
        self,
        bytecode_pc: int,
        values: List[Tuple[int, "Node"]],
        this_node: Optional["Node"] = None,
    ) -> None:
        self.bytecode_pc = bytecode_pc
        self.values = values
        self.this_node = this_node

    def live_nodes(self) -> List["Node"]:
        nodes = [node for _reg, node in self.values]
        if self.this_node is not None:
            nodes.append(self.this_node)
        return nodes


class Node:
    """One IR node."""

    __slots__ = (
        "id",
        "op",
        "inputs",
        "out_repr",
        "params",
        "check_kind",
        "checkpoint",
        "block",
        "dead",
    )

    def __init__(
        self,
        node_id: int,
        op: str,
        inputs: List["Node"],
        out_repr: Repr,
        params: Optional[Dict[str, object]] = None,
        check_kind: Optional[CheckKind] = None,
        checkpoint: Optional[Checkpoint] = None,
    ) -> None:
        self.id = node_id
        self.op = op
        self.inputs = inputs
        self.out_repr = out_repr
        self.params = params or {}
        self.check_kind = check_kind
        self.checkpoint = checkpoint
        self.block: Optional["Block"] = None
        self.dead = False

    @property
    def is_check(self) -> bool:
        return self.check_kind is not None

    @property
    def produces_value(self) -> bool:
        return self.out_repr != Repr.NONE

    def param(self, key: str, default=None):
        return self.params.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ins = ",".join(f"n{i.id}" for i in self.inputs)
        check = f" !{self.check_kind.name}" if self.check_kind else ""
        return f"n{self.id}:{self.op}({ins}):{self.out_repr.value}{check}"


class Block:
    """A basic block: ordered nodes, the last one being the terminator."""

    __slots__ = ("id", "nodes", "predecessors", "successors", "loop_header")

    def __init__(self, block_id: int) -> None:
        self.id = block_id
        self.nodes: List[Node] = []
        self.predecessors: List["Block"] = []
        self.successors: List["Block"] = []
        self.loop_header = False

    def append(self, node: Node) -> Node:
        node.block = self
        self.nodes.append(node)
        return node

    @property
    def terminator(self) -> Optional[Node]:
        if self.nodes and self.nodes[-1].op in ("branch", "goto", "return", "deopt"):
            return self.nodes[-1]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block B{self.id} nodes={len(self.nodes)}>"
