"""IR passes: check elimination, DCE, loop-invariant check hoisting, and
the verified pass pipeline."""

from .check_elim import eliminate_checks
from .dce import elide_truncated_minus_zero_checks, eliminate_dead_code
from .licm import hoist_invariant_checks
from .pipeline import run_optimization_pipeline
from .schedule import schedule_rpo

__all__ = [
    "eliminate_checks",
    "eliminate_dead_code",
    "elide_truncated_minus_zero_checks",
    "hoist_invariant_checks",
    "run_optimization_pipeline",
    "schedule_rpo",
]
