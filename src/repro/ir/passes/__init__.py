"""IR passes: check elimination, DCE, loop-invariant check hoisting."""

from .check_elim import eliminate_checks
from .dce import eliminate_dead_code
from .licm import hoist_invariant_checks

__all__ = ["eliminate_checks", "eliminate_dead_code", "hoist_invariant_checks"]
from .schedule import schedule_rpo  # noqa: E402

__all__.append("schedule_rpo")
