"""Check elimination by short-circuiting (paper Fig. 5 / Section III-B).

The paper modifies TurboFan to replace a deoptimization condition with a
constant ``false`` in the sea-of-nodes graph; the check node and every
ancestor used *only* by the check then die in dead-code elimination —
including e.g. the array-length load that fed a bounds check.

We implement the same mechanism at the same level: a check node whose kind
is in the removal set is either

* rewritten to its unchecked twin when it produces a value (``checked_untag``
  still has to untag even when it no longer checks), or
* deleted outright when it is a pure guard (``check_map``, ``check_bounds``,
  ...), after which :func:`repro.ir.passes.dce.eliminate_dead_code` removes
  its condition-only ancestors.

Removal is *per check kind*, exactly like the paper's selective-disable
switch, so benchmarks that genuinely deoptimize can keep the triggering
kinds (the "leftover checks" of Section III-B.2).

Soft deopts are never removed: the paper's study targets eager checks, and
removing a soft deopt would leave the block without a terminator.
"""

from __future__ import annotations

from typing import Iterable, Set

from ...jit.checks import CheckKind, DeoptCategory, category_of
from ..graph import Graph

#: checked op -> unchecked replacement op.
UNCHECKED_TWINS = {
    "checked_untag": "untag_signed",
    "checked_tag_int32": "tag_int32",
    "checked_float64_to_int32": "float64_to_int32_trunc",
    "checked_to_float64": "unchecked_to_float64",
    "checked_int32_add": "int32_add",
    "checked_int32_sub": "int32_sub",
    "checked_int32_mul": "int32_mul",
    "checked_int32_neg": "int32_neg",
    "checked_int32_div": "int32_div",
    "checked_int32_mod": "int32_mod",
}

#: Pure guards that disappear entirely when disabled.
PURE_GUARDS = frozenset(
    {
        "check_map",
        "check_heap_object",
        "check_bounds",
        "check_nonzero",
        "check_call_target",
    }
)


def eliminate_checks(graph: Graph, kinds: Iterable[CheckKind]) -> int:
    """Short-circuit all checks of the given kinds; returns how many."""
    removal: Set[CheckKind] = {
        kind for kind in kinds if category_of(kind) != DeoptCategory.SOFT
    }
    if not removal:
        return 0
    removed = 0
    for block in graph.blocks:
        kept = []
        for node in block.nodes:
            if node.dead or not node.is_check or node.check_kind not in removal:
                kept.append(node)
                continue
            removed += 1
            if node.op in PURE_GUARDS:
                node.dead = True
                continue  # physically dropped from the block
            twin = UNCHECKED_TWINS.get(node.op)
            if twin is None:
                # Unknown checked op: keep it but drop the check marker so no
                # deopt branch is emitted.
                node.check_kind = None
                node.checkpoint = None
                kept.append(node)
                continue
            node.op = twin
            node.check_kind = None
            node.checkpoint = None
            kept.append(node)
        block.nodes = kept
    return removed
