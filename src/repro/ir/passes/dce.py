"""Dead-code elimination.

Mark-sweep over the value graph: roots are effectful nodes, live checks and
block terminators; liveness flows through value inputs *and* through the
frame states (checkpoints) of live checks — a value only needed to rebuild
the interpreter frame on deopt must stay alive, but dies together with its
check when the check is eliminated.  This is what deletes the
condition-only ancestors after :mod:`repro.ir.passes.check_elim` runs
(paper Fig. 5).
"""

from __future__ import annotations

from typing import List, Set

from ..graph import Graph
from ..nodes import EFFECTFUL_OPS, Node


#: ops that consume an int32 value in a truncating way: a -0 result is
#: indistinguishable from 0 for them, so V8 drops the minus-zero check.
_TRUNCATING_USERS = frozenset(
    {
        "int32_add", "int32_sub", "int32_mul", "int32_and", "int32_or",
        "int32_xor", "int32_shl", "int32_sar", "int32_shr", "int32_neg",
        "int32_div", "int32_mod",
        "checked_int32_add", "checked_int32_sub", "checked_int32_mul",
        "checked_int32_div", "checked_int32_mod",
        "int32_cmp", "int32_to_float64", "check_nonzero",
    }
)


def elide_truncated_minus_zero_checks(graph: Graph) -> int:
    """Clear the minus-zero side check of multiplies whose results are only
    consumed by truncating int32 operations (V8's truncation analysis)."""
    users = {}
    for node in graph.all_nodes():
        if node.dead:
            continue
        for an_input in node.inputs:
            users.setdefault(an_input.id, []).append(node)
        if node.checkpoint is not None:
            for _reg, value in node.checkpoint.values:
                users.setdefault(value.id, []).append(node)
    elided = 0
    for node in graph.all_nodes():
        if node.dead or node.op != "checked_int32_mul":
            continue
        node_users = users.get(node.id, [])
        if node_users and all(u.op in _TRUNCATING_USERS for u in node_users):
            if node.param("minus_zero_check", True):
                node.params["minus_zero_check"] = False
                elided += 1
    return elided


def eliminate_dead_code(graph: Graph) -> int:
    """Mark and remove dead nodes; returns how many were removed."""
    live: Set[int] = set()
    worklist: List[Node] = []
    for block in graph.blocks:
        for node in block.nodes:
            if node.dead:
                continue
            if node.op in EFFECTFUL_OPS or node.is_check:
                worklist.append(node)
    while worklist:
        node = worklist.pop()
        if node.id in live:
            continue
        live.add(node.id)
        worklist.extend(node.inputs)
        if node.checkpoint is not None:
            worklist.extend(node.checkpoint.live_nodes())
    removed = 0
    for block in graph.blocks:
        kept = []
        for node in block.nodes:
            if node.dead or node.id not in live:
                node.dead = True
                removed += 1
            else:
                kept.append(node)
        block.nodes = kept
    return removed
