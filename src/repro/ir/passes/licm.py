"""Loop-invariant check hoisting.

TurboFan's effect-chain + GVN combination keeps a loop-invariant map check
from being re-executed every iteration when nothing in the loop can change
object shapes.  We get the same effect with a targeted pass: ``check_map`` /
``check_heap_object`` nodes whose inputs are defined outside a loop are
moved to the loop preheader, provided the loop contains no operation that
could transition a map (JS calls, generic accesses, allocation of objects).

Without this pass, every array access in a tight kernel would re-check its
receiver map once per iteration, inflating the Map-check share of Fig. 4
well beyond what V8 produces.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..builder import GraphBuilder
from ..nodes import Block, Node

#: call_rt names that cannot transition any hidden class.
MAP_SAFE_RT = frozenset(
    {
        "to_boolean",
        "strict_equals",
        "loose_equals",
        "float64_mod",
        "typeof",
        "to_number",
        "alloc_number",
        "generic_cmp_lt",
        "generic_cmp_le",
        "generic_cmp_gt",
        "generic_cmp_ge",
    }
)

_HOISTABLE = frozenset({"check_map", "check_heap_object"})


def _loop_is_map_safe(blocks: List[Block]) -> bool:
    for block in blocks:
        for node in block.nodes:
            if node.dead:
                continue
            if node.op in ("call_js", "call_dyn"):
                return False
            if node.op == "call_rt" and node.param("name") not in MAP_SAFE_RT:
                return False
    return True


def hoist_invariant_checks(builder: GraphBuilder) -> int:
    """Hoist invariant map checks to preheaders; returns how many moved."""
    start_of_block: Dict[int, int] = dict(builder.block_bytecode_pc)
    blocks_by_id = {block.id: block for block in builder.graph.blocks}
    hoisted = 0
    for header_start in sorted(builder.loop_headers):
        header = builder.blocks_by_start.get(header_start)
        if header is None:
            continue
        loop_end = builder._loop_end.get(header_start, header_start)
        # Caller blocks in the loop's bytecode range, *including* the
        # continuation blocks created by inlining (the caller code after an
        # inlined call lives there).
        loop_blocks = [
            blocks_by_id[block_id]
            for block_id, pc in start_of_block.items()
            if header_start <= pc <= loop_end and block_id in blocks_by_id
        ]
        if not _loop_is_map_safe(loop_blocks):
            continue
        forward_preds = [
            pred
            for pred in header.predecessors
            if start_of_block.get(pred.id, -1) < header_start
        ]
        if len(forward_preds) != 1:
            continue
        preheader = forward_preds[0]
        entry_checkpoint = builder.header_entry_checkpoints.get(header_start)
        if entry_checkpoint is None:
            continue
        seen: Set[tuple] = set()
        for block in loop_blocks:
            kept = []
            for node in block.nodes:
                if node.op in _HOISTABLE and not node.dead and _defined_outside(
                    node, header_start, start_of_block, builder.graph.entry.id
                ):
                    key = (
                        node.op,
                        node.inputs[0].id,
                        id(node.param("map")) if node.param("map") else 0,
                    )
                    if key in seen:
                        node.dead = True
                        hoisted += 1
                        continue
                    seen.add(key)
                    # A hoisted check deopts to the *loop entry* state: no
                    # iteration has run yet, so resuming the interpreter at
                    # the header with the entry values is sound.
                    node.checkpoint = entry_checkpoint
                    _move_to_block_end(node, preheader)
                    hoisted += 1
                    continue
                kept.append(node)
            block.nodes = kept
    return hoisted


def _defined_outside(
    node: Node, header_start: int, start_of_block: Dict[int, int], entry_id: int
) -> bool:
    for an_input in node.inputs:
        block = an_input.block
        if block is None:
            return False
        if block.id == entry_id:
            continue  # constants/parameters live in the entry block
        # Blocks not in the bytecode map (e.g. inlined bodies, continuation
        # blocks) are conservatively treated as inside the loop.
        input_start = start_of_block.get(block.id)
        if input_start is None or input_start >= header_start:
            return False
    return True


def _move_to_block_end(node: Node, block: Block) -> None:
    node.block = block
    if block.terminator is not None:
        block.nodes.insert(len(block.nodes) - 1, node)
    else:
        block.append(node)
