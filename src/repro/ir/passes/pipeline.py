"""The optimization pass pipeline, with optional per-pass verification.

Runs the same pass sequence :class:`repro.engine.Engine` always ran —
build → LICM check hoisting → check elimination → DCE → minus-zero
elision → RPO scheduling — but as one named pipeline.  With
``verify=True`` the structural verifier runs after every pass, so a pass
that corrupts the graph fails immediately with a
:class:`~repro.analysis.verifier.VerificationError` naming the pass, the
node and the violated invariant, instead of surfacing later as a wrong
benchmark number.
"""

from __future__ import annotations

from typing import FrozenSet, List

from ...jit.checks import CheckKind
from ..builder import GraphBuilder
from .check_elim import eliminate_checks
from .dce import eliminate_dead_code, elide_truncated_minus_zero_checks
from .licm import hoist_invariant_checks
from .schedule import schedule_rpo
from .summary import CheckSummary

#: (pass name, callable) applied in order after graph construction.


def run_optimization_pipeline(
    builder: GraphBuilder,
    removed_checks: FrozenSet[CheckKind] = frozenset(),
    verify: bool = False,
) -> None:
    """Optimize ``builder.graph`` in place.

    Raises :class:`~repro.analysis.verifier.VerificationError` (which is
    *not* a :class:`~repro.ir.builder.BailoutCompilation` — the engine
    must not swallow it as an ordinary optimization bailout) if
    ``verify`` is set and any pass breaks an invariant.
    """
    graph = builder.graph
    info = builder.shared.info
    summary = builder.check_summary = CheckSummary()

    def checked(phase: str, removed: bool = False) -> None:
        summary.record(phase, graph)
        if not verify:
            return
        # Imported lazily so `repro.ir` does not depend on the analysis
        # package unless verification is actually requested.
        from ...analysis.verifier import assert_valid

        assert_valid(
            graph,
            phase=phase,
            info=info,
            removed_kinds=set(removed_checks) if removed else None,
        )

    checked("build_graph")
    hoist_invariant_checks(builder)
    checked("hoist_invariant_checks")
    if removed_checks:
        eliminate_checks(graph, removed_checks)
        checked("eliminate_checks", removed=True)
    eliminate_dead_code(graph)
    checked("eliminate_dead_code", removed=bool(removed_checks))
    elide_truncated_minus_zero_checks(graph)
    checked("elide_truncated_minus_zero_checks", removed=bool(removed_checks))
    schedule_rpo(graph)
    checked("schedule_rpo", removed=bool(removed_checks))


__all__: List[str] = ["run_optimization_pipeline"]
