"""Block scheduling: reverse postorder.

Inlining appends callee blocks after the caller's, so creation order no
longer follows control flow; linear-scan register allocation, however,
needs a linearization where definitions precede uses on forward paths and
loop bodies follow their headers.  Reverse postorder provides both, and as
a side effect drops unreachable blocks (e.g. cold callee paths whose only
entry soft-deopted away).
"""

from __future__ import annotations

from typing import List, Set

from ..graph import Graph
from ..nodes import Block


def schedule_rpo(graph: Graph) -> None:
    """Reorder ``graph.blocks`` into reverse postorder from the entry."""
    postorder: List[Block] = []
    visited: Set[int] = set()
    stack: List[tuple] = [(graph.entry, iter(graph.entry.successors))]
    visited.add(graph.entry.id)
    while stack:
        block, successors = stack[-1]
        advanced = False
        for successor in successors:
            if successor.id not in visited:
                visited.add(successor.id)
                stack.append((successor, iter(successor.successors)))
                advanced = True
                break
        if not advanced:
            postorder.append(block)
            stack.pop()
    graph.blocks = list(reversed(postorder))
