"""Per-pass check-count provenance for the optimization pipeline.

The typeflow CLI (`python -m repro.analysis typeflow`) reports how many
machine-level checks the static analysis can prove away *after* the IR
pipeline already did its own check hoisting/elimination.  To make that
comparison honest, the pipeline records how many live check nodes each
pass left behind; :mod:`repro.jit.codegen` attaches the finished record
to ``CodeObject.ir_check_summary`` so the machine-level number has its
IR-level provenance next to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class CheckSummary:
    """Live check-node counts after each pipeline pass, in order."""

    #: (pass name, live check-node count, counts per CheckKind name)
    stages: List[Tuple[str, int, Dict[str, int]]] = field(default_factory=list)

    def record(self, phase: str, graph) -> None:
        by_kind: Dict[str, int] = {}
        total = 0
        for block in graph.blocks:
            for node in block.nodes:
                if getattr(node, "dead", False) or node.check_kind is None:
                    continue
                total += 1
                name = node.check_kind.name
                by_kind[name] = by_kind.get(name, 0) + 1
        self.stages.append((phase, total, by_kind))

    @property
    def initial_checks(self) -> int:
        return self.stages[0][1] if self.stages else 0

    @property
    def final_checks(self) -> int:
        return self.stages[-1][1] if self.stages else 0

    @property
    def eliminated_by_ir(self) -> int:
        return self.initial_checks - self.final_checks

    def to_json(self) -> List[Dict[str, object]]:
        return [
            {"pass": phase, "checks": total, "by_kind": dict(sorted(by_kind.items()))}
            for phase, total, by_kind in self.stages
        ]


__all__ = ["CheckSummary"]
