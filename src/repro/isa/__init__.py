"""Modelled target ISAs (x64-flavoured CISC, arm64-flavoured RISC, +SMI ext)."""

from .asmprint import format_code, format_instr
from .base import (
    ARG_REGS,
    ARM64,
    ARM64_SMI,
    CC,
    FRAME_BASE,
    MachineInstr,
    MOp,
    REG_BA,
    REG_PC,
    REG_RE,
    TARGETS,
    TargetISA,
    X64,
    resolve_target,
)

__all__ = [
    "ARG_REGS",
    "ARM64",
    "ARM64_SMI",
    "CC",
    "FRAME_BASE",
    "MOp",
    "MachineInstr",
    "REG_BA",
    "REG_PC",
    "REG_RE",
    "TARGETS",
    "TargetISA",
    "X64",
    "format_code",
    "format_instr",
    "resolve_target",
]
