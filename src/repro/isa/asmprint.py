"""Assembly pretty-printer with check annotations.

Produces listings in the style of V8's ``--print-opt-code`` that the paper
uses in Fig. 3: every instruction that belongs to a deoptimization check is
annotated with the check's kind, and deopt stubs appear at the end of the
function body, one per check, each with its own address.
"""

from __future__ import annotations

from typing import List, Optional

from .base import CC, FRAME_BASE, MachineInstr, MOp

_CC_NAMES = {
    CC.EQ: "eq",
    CC.NE: "ne",
    CC.LT: "lt",
    CC.GE: "ge",
    CC.GT: "gt",
    CC.LE: "le",
    CC.HS: "hs",
    CC.LO: "lo",
    CC.HI: "hi",
    CC.LS: "ls",
    CC.VS: "vs",
    CC.VC: "vc",
    CC.MI: "mi",
    CC.PL: "pl",
}


def _mem_str(mem) -> str:
    base, index, scale, disp = mem
    if base == FRAME_BASE:
        return f"[fp, #{disp}]"
    parts = [f"x{base}"]
    if index >= 0:
        parts.append(f"x{index}, lsl #{scale}" if scale else f"x{index}")
    if disp:
        parts.append(f"#{disp}")
    return "[" + ", ".join(parts) + "]"


def format_instr(instr: MachineInstr, index: int = -1) -> str:
    op = instr.op
    d, s1, s2 = instr.dst, instr.s1, instr.s2
    text: str
    if op == MOp.MOVR:
        text = f"mov x{d}, x{s1}"
    elif op == MOp.MOVI:
        text = f"mov x{d}, #{instr.imm}"
    elif op == MOp.FMOVR:
        text = f"fmov d{d}, d{s1}"
    elif op == MOp.FMOVI:
        text = f"fmov d{d}, #{instr.imm}"
    elif op in (MOp.ADD, MOp.SUB, MOp.MUL, MOp.SDIV, MOp.AND, MOp.ORR, MOp.EOR,
                MOp.LSL, MOp.LSR, MOp.ASR):
        text = f"{op.name.lower()} x{d}, x{s1}, x{s2}"
    elif op in (MOp.ADDI, MOp.SUBI, MOp.ANDI, MOp.ORRI, MOp.EORI, MOp.LSLI,
                MOp.LSRI, MOp.ASRI):
        text = f"{op.name.lower()[:-1]} x{d}, x{s1}, #{instr.imm}"
    elif op in (MOp.ADDS, MOp.SUBS, MOp.MULS):
        text = f"{op.name.lower()} x{d}, x{s1}, x{s2}"
    elif op in (MOp.ADDSI, MOp.SUBSI):
        text = f"{op.name.lower()[:-1]} x{d}, x{s1}, #{instr.imm}"
    elif op == MOp.NEGS:
        text = f"negs x{d}, x{s1}"
    elif op == MOp.CMP:
        text = f"cmp x{s1}, x{s2}"
    elif op == MOp.CMPI:
        text = f"cmp x{s1}, #{instr.imm}"
    elif op == MOp.TST:
        text = f"tst x{s1}, x{s2}"
    elif op == MOp.TSTI:
        text = f"tst x{s1}, #{instr.imm}"
    elif op == MOp.CMP_MEM:
        text = f"cmp x{s1}, {_mem_str(instr.mem)}"
    elif op == MOp.CMPI_MEM:
        text = f"cmp {_mem_str(instr.mem)}, #{instr.imm}"
    elif op == MOp.TSTI_MEM:
        text = f"test {_mem_str(instr.mem)}, #{instr.imm}"
    elif op == MOp.FCMP:
        text = f"fcmp d{s1}, d{s2}"
    elif op == MOp.CSET:
        text = f"cset x{d}, {_CC_NAMES.get(CC(instr.cc), '?')}"
    elif op == MOp.MZCMP:
        text = f"mzcmp x{s1}, x{s2}"
    elif op == MOp.LDR:
        text = f"ldr x{d}, {_mem_str(instr.mem)}"
    elif op == MOp.STR:
        text = f"str x{s1}, {_mem_str(instr.mem)}"
    elif op == MOp.LDRF:
        text = f"ldr d{d}, {_mem_str(instr.mem)}"
    elif op == MOp.STRF:
        text = f"str d{s1}, {_mem_str(instr.mem)}"
    elif op == MOp.JSLDRSMI:
        mnemonic = "jsldursmi" if instr.mem and instr.mem[1] < 0 else "jsldrsmi"
        text = f"{mnemonic} x{d}, {_mem_str(instr.mem)}"
    elif op == MOp.MSR:
        names = {0: "REG_BA", 1: "REG_PC", 2: "REG_RE"}
        text = f"msr {names.get(int(instr.imm), '?')}, x{s1}"
    elif op in (MOp.FADD, MOp.FSUB, MOp.FMUL, MOp.FDIV):
        text = f"{op.name.lower()} d{d}, d{s1}, d{s2}"
    elif op == MOp.FNEG:
        text = f"fneg d{d}, d{s1}"
    elif op == MOp.FABS:
        text = f"fabs d{d}, d{s1}"
    elif op == MOp.SCVTF:
        text = f"scvtf d{d}, x{s1}"
    elif op == MOp.FCVTZS:
        text = f"fcvtzs x{d}, d{s1}"
    elif op == MOp.B:
        text = f"b {instr.target}"
    elif op == MOp.BCC:
        cond = _CC_NAMES.get(CC(instr.cc), "?")
        label = f"deopt_{instr.target}" if instr.is_deopt_branch else str(instr.target)
        text = f"b.{cond} {label}"
    elif op == MOp.RET:
        text = "ret"
    elif op == MOp.DEOPT:
        text = f"deopt #{instr.imm}"
    elif op == MOp.CALL_JS:
        text = f"call js:{instr.aux or instr.imm}({', '.join(f'x{a}' for a in instr.args)})"
    elif op == MOp.CALL_DYN:
        text = f"call *x{s1}({', '.join(f'x{a}' for a in instr.args)})"
    elif op == MOp.CALL_RT:
        text = f"call rt:{instr.aux}({', '.join(f'x{a}' for a in instr.args)})"
    else:  # pragma: no cover
        text = op.name.lower()
    prefix = f"{index:4d}: " if index >= 0 else ""
    annotation = ""
    if instr.check_id >= 0:
        shared = "~" if instr.shared_with_main else ""
        annotation = f"    ;; {shared}check#{instr.check_id}"
        if instr.comment:
            annotation += f" {instr.comment}"
    elif instr.comment:
        annotation = f"    ;; {instr.comment}"
    return f"{prefix}{text:<40}{annotation}"


def format_code(instrs: List[MachineInstr], title: Optional[str] = None) -> str:
    lines = [] if title is None else [f"-- {title} --"]
    lines.extend(format_instr(instr, i) for i, instr in enumerate(instrs))
    return "\n".join(lines)
