"""Target machine-instruction model shared by the x64- and ARM64-flavoured
backends.

We model the *shape* of the two ISAs the paper contrasts:

* ``x64`` (CISC): arithmetic/compare instructions may take a memory operand,
  so e.g. a bounds check is ``cmp idx, [arr+len]`` + ``jae`` — one
  instruction before the deopt branch.
* ``arm64`` (RISC): load/store architecture; conditions over memory need an
  explicit load first (``ldr`` + ``cmp`` + ``b.hs``), so checks span more
  instructions — the reason the paper uses a 2-instruction attribution
  window on ARM64 and only 1 on x64.
* ``arm64+smi``: ARM64 plus the paper's Section V extension — the
  ``jsldrsmi``/``jsldursmi`` family that folds the Not-a-SMI check and the
  untagging shift into the load, with special registers REG_BA / REG_PC /
  REG_RE and a commit-time bailout exception.

Memory operands follow V8's compressed-pointer convention: the base
register holds a *tagged* pointer and the effective word address is
``(base >> 1) + (index << scale) + disp`` — the tag is absorbed by address
arithmetic, exactly like V8 folds the untag into the displacement.
A base of :data:`FRAME_BASE` addresses the machine stack frame instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum, auto
from typing import Optional, Sequence, Tuple, Union

#: Sentinel base register meaning "current stack frame" (disp = slot index).
FRAME_BASE = -2

#: Special registers introduced by the SMI extension (indices into the
#: machine's special-register file).
REG_BA = 0  # bailout-handler address
REG_PC = 1  # pc of the failed SMI load
REG_RE = 2  # deopt-reason code (0 = no pending bailout)


class MOp(IntEnum):
    # Moves / constants
    MOVR = auto()  # dst <- s1
    MOVI = auto()  # dst <- imm (int)
    FMOVR = auto()  # fdst <- fs1
    FMOVI = auto()  # fdst <- imm (float)

    # Integer ALU (register forms)
    ADD = auto()
    SUB = auto()
    MUL = auto()
    SDIV = auto()
    AND = auto()
    ORR = auto()
    EOR = auto()
    LSL = auto()
    LSR = auto()
    ASR = auto()
    # Integer ALU (immediate forms)
    ADDI = auto()
    SUBI = auto()
    ANDI = auto()
    ORRI = auto()
    EORI = auto()
    LSLI = auto()
    LSRI = auto()
    ASRI = auto()
    # Flag-setting arithmetic (for overflow checks)
    ADDS = auto()
    SUBS = auto()
    ADDSI = auto()
    SUBSI = auto()
    MULS = auto()  # flag-setting multiply (models smull+check sequence)
    NEGS = auto()  # dst <- -s1, setting flags

    # Compares / tests (set flags)
    CMP = auto()  # s1 vs s2
    CMPI = auto()  # s1 vs imm
    TST = auto()  # flags from s1 & s2
    TSTI = auto()  # flags from s1 & imm
    CMP_MEM = auto()  # s1 vs [mem]            (x64 only)
    CMPI_MEM = auto()  # [mem] vs imm           (x64 only)
    TSTI_MEM = auto()  # [mem] & imm            (x64 only)
    FCMP = auto()  # fs1 vs fs2 (NaN -> unordered flags)

    # Memory
    LDR = auto()  # dst <- word [mem] (tagged or raw int slot)
    STR = auto()  # [mem] <- s1
    LDRF = auto()  # fdst <- raw float [mem]
    STRF = auto()  # [mem] <- fs1
    JSLDRSMI = auto()  # dst <- untag([mem]); commit-time bailout if not SMI

    # Special registers (SMI extension prologue)
    MSR = auto()  # special[imm] <- s1

    # Conditional select / pseudo flag ops
    CSET = auto()  # dst <- 1 if cc else 0
    MZCMP = auto()  # Z <- (s1 == 0 and s2 < 0); models V8's minus-zero test

    # Floating point
    FADD = auto()
    FSUB = auto()
    FMUL = auto()
    FDIV = auto()
    FNEG = auto()
    FABS = auto()
    SCVTF = auto()  # fdst <- float(s1)
    FCVTZS = auto()  # dst <- trunc_to_int(fs1)

    # Control
    B = auto()
    BCC = auto()  # conditional branch on cc
    RET = auto()  # return value in s1 (or fs1 when returns_float)
    DEOPT = auto()  # deopt stub (imm = check_id)

    # Calls (modelled as single instructions + runtime work)
    CALL_JS = auto()  # imm = shared function index; args in `args`
    CALL_DYN = auto()  # callee word in s1; args in `args`
    CALL_RT = auto()  # aux = builtin name; args in `args`


class CC(IntEnum):
    EQ = auto()
    NE = auto()
    LT = auto()
    GE = auto()
    GT = auto()
    LE = auto()
    HS = auto()  # unsigned >=
    LO = auto()  # unsigned <
    HI = auto()  # unsigned >
    LS = auto()  # unsigned <=
    VS = auto()  # overflow set
    VC = auto()  # overflow clear
    MI = auto()  # negative
    PL = auto()  # non-negative


#: Memory operand: (base_reg, index_reg, scale, disp).  index_reg < 0 means
#: no index.  base == FRAME_BASE addresses the stack frame.
Mem = Tuple[int, int, int, int]


class MachineInstr:
    """One target instruction.

    ``check_id`` links the instruction to the static check site it belongs
    to (-1 for main-line code); ``shared_with_main`` marks instructions that
    do double duty (e.g. the ``adds`` of a checked add performs the real
    addition *and* computes the overflow condition) — the ground-truth
    attribution can treat them either way, mirroring the ambiguity the paper
    discusses in Section III-A.
    """

    __slots__ = (
        "uid",
        "op",
        "dst",
        "s1",
        "s2",
        "imm",
        "mem",
        "target",
        "cc",
        "args",
        "aux",
        "check_id",
        "shared_with_main",
        "is_deopt_branch",
        "returns_float",
        "comment",
    )

    _next_uid = 0

    def __init__(
        self,
        op: MOp,
        dst: int = -1,
        s1: int = -1,
        s2: int = -1,
        imm: Union[int, float] = 0,
        mem: Optional[Mem] = None,
        target: int = -1,
        cc: int = 0,
        args: Optional[Sequence[int]] = None,
        aux: object = None,
        check_id: int = -1,
        shared_with_main: bool = False,
        is_deopt_branch: bool = False,
        returns_float: bool = False,
        comment: str = "",
    ) -> None:
        # Stable per-instruction id (used e.g. as the branch-predictor index
        # seed in the pipeline models; `id()` would vary across runs).
        self.uid = MachineInstr._next_uid
        MachineInstr._next_uid += 1
        self.op = op
        self.dst = dst
        self.s1 = s1
        self.s2 = s2
        self.imm = imm
        self.mem = mem
        self.target = target
        self.cc = cc
        self.args = tuple(args) if args is not None else ()
        self.aux = aux
        self.check_id = check_id
        self.shared_with_main = shared_with_main
        self.is_deopt_branch = is_deopt_branch
        self.returns_float = returns_float
        self.comment = comment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .asmprint import format_instr

        return format_instr(self, index=-1)


@dataclass(frozen=True)
class TargetISA:
    """Static description of a compilation target."""

    name: str
    is_cisc: bool
    has_smi_extension: bool
    gpr_count: int = 24
    fpr_count: int = 16
    #: PC-sampling attribution window (instructions before the deopt branch
    #: counted as part of the check) — 1 on x64, 2 on ARM64 (paper §III-A).
    check_window: int = 2

    @property
    def is_risc(self) -> bool:
        return not self.is_cisc


X64 = TargetISA(name="x64", is_cisc=True, has_smi_extension=False, check_window=1)
ARM64 = TargetISA(name="arm64", is_cisc=False, has_smi_extension=False, check_window=2)
ARM64_SMI = TargetISA(
    name="arm64+smi", is_cisc=False, has_smi_extension=True, check_window=2
)

TARGETS = {t.name: t for t in (X64, ARM64, ARM64_SMI)}


def resolve_target(name: str) -> TargetISA:
    try:
        return TARGETS[name]
    except KeyError:
        raise ValueError(
            f"unknown target {name!r}; expected one of {sorted(TARGETS)}"
        ) from None


#: Calling convention: first registers carry arguments / return value.
RET_REG = 0
ARG_REGS = (0, 1, 2, 3, 4, 5, 6, 7)

BRANCH_OPS = frozenset({MOp.B, MOp.BCC})
CALL_OPS = frozenset({MOp.CALL_JS, MOp.CALL_DYN, MOp.CALL_RT})
LOAD_OPS = frozenset({MOp.LDR, MOp.LDRF, MOp.JSLDRSMI})
STORE_OPS = frozenset({MOp.STR, MOp.STRF})
FLAG_SETTING_OPS = frozenset(
    {
        MOp.ADDS,
        MOp.SUBS,
        MOp.ADDSI,
        MOp.SUBSI,
        MOp.MULS,
        MOp.NEGS,
        MOp.CMP,
        MOp.CMPI,
        MOp.TST,
        MOp.TSTI,
        MOp.CMP_MEM,
        MOp.CMPI_MEM,
        MOp.TSTI_MEM,
        MOp.MZCMP,
        MOp.FCMP,
    }
)
