"""Static def/use semantics of :class:`MachineInstr`s.

The executor in :mod:`repro.machine.executor` is the operational truth;
this module is the *static* mirror of it: for each opcode, which integer
registers, float registers and frame slots an instruction reads and
writes, whether it sets or consumes condition flags, and where control
may flow next.  The machine-code linter builds its defined-before-use
dataflow on top of these tables, so any divergence from the executor is
itself a bug — keep the two in sync.

Notes mirroring executor behaviour:

* ``CALL_*`` instructions preserve all registers except the return
  register (the executor runs callees on fresh register files).
* ``CALL_RT`` builtins receive the whole float file out of band, so no
  float uses are recorded for them (linting those would false-positive).
* ``DEOPT`` reads whatever its :class:`~repro.jit.deopt.DeoptPoint`
  frame state names; that is resolved by the linter, not here.
* A memory operand with base :data:`FRAME_BASE` addresses frame slot
  ``disp``; otherwise base/index are ordinary integer register reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from .base import FRAME_BASE, RET_REG, MachineInstr, Mem, MOp

#: Incoming ``this`` value register (mirrors ``repro.jit.codegen.THIS_REG``;
#: defined here too because ``isa`` must not import ``jit``).
THIS_REG = 7

#: Register-form integer ALU ops: dst <- s1 op s2.
_INT_ALU_RR = frozenset(
    {MOp.ADD, MOp.SUB, MOp.MUL, MOp.SDIV, MOp.AND, MOp.ORR, MOp.EOR,
     MOp.LSL, MOp.LSR, MOp.ASR, MOp.ADDS, MOp.SUBS, MOp.MULS}
)
#: Immediate-form integer ALU ops: dst <- s1 op imm.
_INT_ALU_RI = frozenset(
    {MOp.ADDI, MOp.SUBI, MOp.ANDI, MOp.ORRI, MOp.EORI,
     MOp.LSLI, MOp.LSRI, MOp.ASRI, MOp.ADDSI, MOp.SUBSI}
)
_FLOAT_ALU_RR = frozenset({MOp.FADD, MOp.FSUB, MOp.FMUL, MOp.FDIV})

#: Instructions that terminate a basic block in the machine CFG.
BLOCK_END_OPS = frozenset({MOp.B, MOp.BCC, MOp.RET, MOp.DEOPT})


@dataclass
class InstrEffect:
    """Registers/slots/flags an instruction statically reads and writes."""

    int_uses: Set[int] = field(default_factory=set)
    int_defs: Set[int] = field(default_factory=set)
    float_uses: Set[int] = field(default_factory=set)
    float_defs: Set[int] = field(default_factory=set)
    slot_uses: Set[int] = field(default_factory=set)
    slot_defs: Set[int] = field(default_factory=set)
    sets_flags: bool = False
    reads_flags: bool = False
    #: Calls invalidate flags (callee arithmetic clobbers them).
    kills_flags: bool = False


def _mem_operand(effect: InstrEffect, mem: Optional[Mem], is_store: bool) -> None:
    if mem is None:
        return
    base, index, _scale, disp = mem
    if base == FRAME_BASE:
        (effect.slot_defs if is_store else effect.slot_uses).add(disp)
    elif base >= 0:
        effect.int_uses.add(base)
    if index >= 0:
        effect.int_uses.add(index)


def effect_of(instr: MachineInstr) -> InstrEffect:
    """The static effect of one instruction.  Pure; safe to call per-pc."""
    e = InstrEffect()
    op = instr.op

    if op == MOp.MOVR:
        e.int_uses.add(instr.s1)
        e.int_defs.add(instr.dst)
    elif op == MOp.MOVI:
        e.int_defs.add(instr.dst)
    elif op == MOp.FMOVR:
        e.float_uses.add(instr.s1)
        e.float_defs.add(instr.dst)
    elif op == MOp.FMOVI:
        e.float_defs.add(instr.dst)
    elif op in _INT_ALU_RR:
        e.int_uses.update((instr.s1, instr.s2))
        e.int_defs.add(instr.dst)
        e.sets_flags = op in (MOp.ADDS, MOp.SUBS, MOp.MULS)
    elif op in _INT_ALU_RI:
        e.int_uses.add(instr.s1)
        e.int_defs.add(instr.dst)
        e.sets_flags = op in (MOp.ADDSI, MOp.SUBSI)
    elif op == MOp.NEGS:
        e.int_uses.add(instr.s1)
        e.int_defs.add(instr.dst)
        e.sets_flags = True
    elif op in (MOp.CMP, MOp.TST, MOp.MZCMP):
        e.int_uses.update((instr.s1, instr.s2))
        e.sets_flags = True
    elif op in (MOp.CMPI, MOp.TSTI):
        e.int_uses.add(instr.s1)
        e.sets_flags = True
    elif op == MOp.CMP_MEM:
        e.int_uses.add(instr.s1)
        _mem_operand(e, instr.mem, is_store=False)
        e.sets_flags = True
    elif op in (MOp.CMPI_MEM, MOp.TSTI_MEM):
        _mem_operand(e, instr.mem, is_store=False)
        e.sets_flags = True
    elif op == MOp.FCMP:
        e.float_uses.update((instr.s1, instr.s2))
        e.sets_flags = True
    elif op in (MOp.LDR, MOp.JSLDRSMI):
        _mem_operand(e, instr.mem, is_store=False)
        e.int_defs.add(instr.dst)
    elif op == MOp.LDRF:
        _mem_operand(e, instr.mem, is_store=False)
        e.float_defs.add(instr.dst)
    elif op == MOp.STR:
        e.int_uses.add(instr.s1)
        _mem_operand(e, instr.mem, is_store=True)
    elif op == MOp.STRF:
        e.float_uses.add(instr.s1)
        _mem_operand(e, instr.mem, is_store=True)
    elif op == MOp.MSR:
        e.int_uses.add(instr.s1)
    elif op == MOp.CSET:
        e.int_defs.add(instr.dst)
        e.reads_flags = True
    elif op in _FLOAT_ALU_RR:
        e.float_uses.update((instr.s1, instr.s2))
        e.float_defs.add(instr.dst)
    elif op in (MOp.FNEG, MOp.FABS):
        e.float_uses.add(instr.s1)
        e.float_defs.add(instr.dst)
    elif op == MOp.SCVTF:
        e.int_uses.add(instr.s1)
        e.float_defs.add(instr.dst)
    elif op == MOp.FCVTZS:
        e.float_uses.add(instr.s1)
        e.int_defs.add(instr.dst)
    elif op == MOp.B:
        pass
    elif op == MOp.BCC:
        e.reads_flags = True
    elif op == MOp.RET:
        (e.float_uses if instr.returns_float else e.int_uses).add(instr.s1)
    elif op == MOp.DEOPT:
        pass  # frame-state reads resolved by the linter from the DeoptPoint
    elif op == MOp.CALL_JS:
        e.int_uses.update(instr.args)
        e.int_uses.add(THIS_REG)
        e.int_defs.add(RET_REG)
        e.kills_flags = True
    elif op == MOp.CALL_DYN:
        e.int_uses.update(instr.args)
        e.int_uses.add(instr.s1)
        e.int_defs.add(RET_REG)
        e.kills_flags = True
    elif op == MOp.CALL_RT:
        e.int_uses.update(instr.args)
        if instr.returns_float:
            e.float_defs.add(RET_REG)
        else:
            e.int_defs.add(RET_REG)
        e.kills_flags = True
    else:  # pragma: no cover - every MOp is handled above
        raise ValueError(f"effect_of: unhandled opcode {op!r}")
    return e


#: Atom of a parity expression: ("r", reg) reads a register's tag-bit
#: parity, ("s", slot) reads a frame slot's, ("k", 0|1) is a constant.
ParityAtom = Tuple[str, int]

#: Parity descriptor: how the destination's tag bit derives from the
#: operands' tag bits.  ``None`` means the result parity is unknown.
#:   ("copy", a)      bit0(dst) = bit0(a)
#:   ("xor", a, b)    bit0(dst) = bit0(a) ^ bit0(b)   (add/sub/eor)
#:   ("and", a, b)    bit0(dst) = bit0(a) & bit0(b)   (mul/and)
#:   ("or",  a, b)    bit0(dst) = bit0(a) | bit0(b)   (orr)
#:   ("const", p)     bit0(dst) = p
ParityExpr = Optional[Tuple]


@dataclass(frozen=True)
class AbstractTransfer:
    """Abstract (type-state) effect of one instruction.

    The typeflow abstract interpreter (:mod:`repro.analysis.typeflow`)
    evaluates these descriptors against its per-point environment.  Only
    the *tag-bit parity* of integer values is described here — parity 0
    is an SMI, parity 1 a tagged heap pointer — because that single bit
    is what the Not-a-SMI / heap-object checks test.  Everything not
    describable as a parity dataflow (heap loads, shifts right, division,
    conversions) maps to "unknown", which the analysis treats as top.

    Attributes
    ----------
    dest:
        Where the result lands: ``("r", reg)``, ``("s", frame_slot)`` for
        frame-slot stores, or ``None`` when nothing is written.
    parity:
        :data:`ParityExpr` for the destination, or ``None`` (unknown).
    kills_heap:
        True when the instruction may mutate heap memory or transfer
        control into code that does (stores with a heap base, all calls).
        Heap-dependent facts (map words, array lengths, element tags)
        cannot survive such an instruction.
    """

    dest: Optional[ParityAtom] = None
    parity: ParityExpr = None
    kills_heap: bool = False


_PARITY_XOR_RR = frozenset({MOp.ADD, MOp.SUB, MOp.ADDS, MOp.SUBS, MOp.EOR})
_PARITY_XOR_RI = frozenset({MOp.ADDI, MOp.SUBI, MOp.ADDSI, MOp.SUBSI, MOp.EORI})
_PARITY_AND_RR = frozenset({MOp.MUL, MOp.MULS, MOp.AND})


def abstract_transfer_of(instr: MachineInstr) -> AbstractTransfer:
    """Per-opcode abstract transfer for the typeflow analysis.  Pure.

    Mirrors the executor's concrete arithmetic at the level of the tag
    bit: e.g. ``add`` of two even (SMI) values is even, ``lsl #k`` with
    ``k > 0`` is always even, a heap load has unknown parity.  Keep in
    sync with :mod:`repro.machine.executor` — an unsound entry here is
    exactly the class of bug the typeflow cross-validator exists to
    catch.
    """
    op = instr.op
    if op == MOp.MOVI:
        return AbstractTransfer(("r", instr.dst), ("const", int(instr.imm) & 1))
    if op == MOp.MOVR:
        return AbstractTransfer(("r", instr.dst), ("copy", ("r", instr.s1)))
    if op == MOp.NEGS:
        # -x has x's parity in two's complement.
        return AbstractTransfer(("r", instr.dst), ("copy", ("r", instr.s1)))
    if op in _PARITY_XOR_RR:
        return AbstractTransfer(
            ("r", instr.dst), ("xor", ("r", instr.s1), ("r", instr.s2))
        )
    if op in _PARITY_XOR_RI:
        return AbstractTransfer(
            ("r", instr.dst), ("xor", ("r", instr.s1), ("k", int(instr.imm) & 1))
        )
    if op in _PARITY_AND_RR:
        return AbstractTransfer(
            ("r", instr.dst), ("and", ("r", instr.s1), ("r", instr.s2))
        )
    if op == MOp.ORR:
        return AbstractTransfer(
            ("r", instr.dst), ("or", ("r", instr.s1), ("r", instr.s2))
        )
    if op == MOp.ANDI:
        return AbstractTransfer(
            ("r", instr.dst), ("and", ("r", instr.s1), ("k", int(instr.imm) & 1))
        )
    if op == MOp.ORRI:
        return AbstractTransfer(
            ("r", instr.dst), ("or", ("r", instr.s1), ("k", int(instr.imm) & 1))
        )
    if op == MOp.LSLI:
        if int(instr.imm) > 0:
            return AbstractTransfer(("r", instr.dst), ("const", 0))
        return AbstractTransfer(("r", instr.dst), ("copy", ("r", instr.s1)))
    if op in (MOp.LSL, MOp.LSR, MOp.ASR, MOp.SDIV, MOp.LSRI, MOp.ASRI,
              MOp.CSET, MOp.FCVTZS):
        return AbstractTransfer(("r", instr.dst), None)
    if op == MOp.JSLDRSMI:
        # Result is the *untagged* payload; its parity is unrelated to
        # the tag bit the check proved.
        return AbstractTransfer(("r", instr.dst), None)
    if op == MOp.LDR:
        mem = instr.mem
        if mem is not None and mem[0] == FRAME_BASE:
            # Frame reload: the slot holds exactly what was spilled.
            return AbstractTransfer(("r", instr.dst), ("copy", ("s", mem[3])))
        return AbstractTransfer(("r", instr.dst), None)
    if op == MOp.STR:
        mem = instr.mem
        if mem is not None and mem[0] == FRAME_BASE:
            return AbstractTransfer(("s", mem[3]), ("copy", ("r", instr.s1)))
        return AbstractTransfer(None, None, kills_heap=True)
    if op == MOp.STRF:
        mem = instr.mem
        if mem is not None and mem[0] == FRAME_BASE:
            return AbstractTransfer(("s", mem[3]), None)
        return AbstractTransfer(None, None, kills_heap=True)
    if op in (MOp.CALL_JS, MOp.CALL_DYN):
        return AbstractTransfer(("r", RET_REG), None, kills_heap=True)
    if op == MOp.CALL_RT:
        dest = None if instr.returns_float else ("r", RET_REG)
        return AbstractTransfer(dest, None, kills_heap=True)
    # Flag ops, float ops, moves between float regs, control flow: no
    # integer destination and no heap mutation.
    return AbstractTransfer(None, None)


def successors_of(pc: int, instr: MachineInstr, count: int) -> List[int]:
    """Machine-CFG successor pcs of the instruction at ``pc``."""
    if instr.op == MOp.B:
        return [instr.target]
    if instr.op == MOp.BCC:
        result = []
        if pc + 1 < count:
            result.append(pc + 1)
        result.append(instr.target)
        return result
    if instr.op in (MOp.RET, MOp.DEOPT):
        return []
    return [pc + 1] if pc + 1 < count else []


def leaders_of(instrs: Tuple[MachineInstr, ...]) -> Set[int]:
    """Basic-block leader pcs: entry, branch targets, fall-throughs after
    block-ending instructions."""
    leaders: Set[int] = {0} if instrs else set()
    for pc, instr in enumerate(instrs):
        if instr.op in (MOp.B, MOp.BCC) and instr.target >= 0:
            leaders.add(instr.target)
        if instr.op in BLOCK_END_OPS and pc + 1 < len(instrs):
            leaders.add(pc + 1)
    return leaders


#: Instructions that terminate a block in the *executor's* fused-block
#: partition (:mod:`repro.machine.blockjit`).  Besides the CFG enders,
#: calls end blocks because they flush/reload the cycle clock and may
#: sample inside the callee, and ``JSLDRSMI`` ends its block because its
#: commit-time bailout must flush cycles exact to its own pc.
FUSED_BLOCK_END_OPS = BLOCK_END_OPS | frozenset(
    {MOp.CALL_JS, MOp.CALL_DYN, MOp.CALL_RT, MOp.JSLDRSMI}
)


def fused_block_leaders(instrs: Tuple[MachineInstr, ...]) -> Set[int]:
    """Leader pcs of the executor's fused-block partition.

    A superset of :func:`leaders_of`: every CFG leader, plus the
    fall-through after each call and each ``JSLDRSMI`` commit point.
    Both the fast step loop's block-relative cycle accounting and the
    block-compiled executor are built over this partition, so the two
    charge bit-identical cycle totals.
    """
    leaders: Set[int] = {0} if instrs else set()
    count = len(instrs)
    for pc, instr in enumerate(instrs):
        if instr.op in (MOp.B, MOp.BCC) and 0 <= instr.target < count:
            leaders.add(instr.target)
        if instr.op in FUSED_BLOCK_END_OPS and pc + 1 < count:
            leaders.add(pc + 1)
    return leaders


def fused_block_edges(instrs: Tuple[MachineInstr, ...]) -> Set[Tuple[int, int]]:
    """Legal ``(src_bid, dst_bid)`` edges of the fused-block CFG.

    Block ids index the sorted leader list (the same numbering
    :mod:`repro.machine.blockjit` uses).  A block's successors are
    derived from its *last* instruction: branch targets and the
    fall-through for ``BCC``, the target alone for ``B``, nothing for
    ``RET``/``DEOPT``, and the fall-through block for everything else
    (calls, ``JSLDRSMI`` commits, plain straight-line enders).  The
    trace tier (:mod:`repro.machine.tracejit`) only stitches chains
    whose every hop is in this set, and the machine-code linter
    validates the same metadata statically.
    """
    leaders = sorted(fused_block_leaders(tuple(instrs)))
    block_of = {start: i for i, start in enumerate(leaders)}
    count = len(instrs)
    edges: Set[Tuple[int, int]] = set()
    for bid, start in enumerate(leaders):
        end = leaders[bid + 1] if bid + 1 < len(leaders) else count
        last = instrs[end - 1]
        if last.op == MOp.B:
            if last.target in block_of:
                edges.add((bid, block_of[last.target]))
            continue
        if last.op == MOp.BCC:
            if last.target in block_of:
                edges.add((bid, block_of[last.target]))
            if end in block_of:
                edges.add((bid, block_of[end]))
            continue
        if last.op in (MOp.RET, MOp.DEOPT):
            continue
        if end in block_of:
            edges.add((bid, block_of[end]))
    return edges
