"""JIT tier: checks taxonomy, codegen, register allocation, deopt.

``repro.jit.codegen`` is intentionally not imported here: it depends on
``repro.ir.builder`` which itself uses the check taxonomy from this
package, so pulling it in at package-import time would create a cycle.
Import it as ``from repro.jit.codegen import generate_code``.
"""

from .checks import CheckGroup, CheckKind, DeoptCategory, category_of, group_of
from .deopt import (
    CheckSite,
    DeoptEvent,
    DeoptPoint,
    DeoptSignal,
    DeoptValue,
    Location,
    materialize_frame,
)
from .regalloc import Allocation, allocate

__all__ = [
    "Allocation",
    "allocate",
    "CheckGroup",
    "CheckKind",
    "CheckSite",
    "DeoptCategory",
    "DeoptEvent",
    "DeoptPoint",
    "DeoptSignal",
    "DeoptValue",
    "Location",
    "category_of",
    "group_of",
    "materialize_frame",
]
