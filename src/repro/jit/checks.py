"""Deoptimization-check taxonomy (paper Section II-B).

V8 has 52 deoptimization reasons in three categories (eager / lazy / soft).
The paper groups the eager reasons into six groups, extending the taxonomy
of Southern & Renau [3] with *Arithmetic errors* and *Other*:

* **Type**   — wrong instance type / not a number / not a string / wrong
  call target ...
* **SMI**    — Not-a-SMI (expected SMI, found heap object) and SMI
  (expected heap object, found SMI)
* **Bounds** — array index out of bounds
* **Map**    — wrong hidden class
* **Arithmetic** — overflow, lost precision, division by zero, minus zero
* **Other**  — holes, insufficient feedback, ...

Check *kinds* below are what the optimizing compiler emits; each carries
its group and its deopt category.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Dict


class DeoptCategory(Enum):
    EAGER = "deopt-eager"
    LAZY = "deopt-lazy"
    SOFT = "deopt-soft"


class CheckGroup(Enum):
    TYPE = "Type"
    SMI = "SMI"
    BOUNDS = "Bounds"
    MAP = "Map"
    ARITHMETIC = "Arithmetic"
    OTHER = "Other"


class CheckKind(Enum):
    """Eager deoptimization-check kinds emitted by the optimizing tier."""

    NOT_A_SMI = auto()  # expected an SMI, found a heap object
    SMI = auto()  # expected a heap object, found an SMI
    NOT_A_NUMBER = auto()  # expected a HeapNumber
    NOT_A_STRING = auto()
    WRONG_INSTANCE_TYPE = auto()
    WRONG_CALL_TARGET = auto()
    WRONG_MAP = auto()
    OUT_OF_BOUNDS = auto()
    OVERFLOW = auto()
    LOST_PRECISION = auto()
    DIVISION_BY_ZERO = auto()
    MINUS_ZERO = auto()
    HOLE = auto()
    INSUFFICIENT_FEEDBACK = auto()  # soft
    NOT_OPTIMIZABLE_CALL = auto()  # soft: megamorphic / unknown call path


CHECK_GROUPS: Dict[CheckKind, CheckGroup] = {
    CheckKind.NOT_A_SMI: CheckGroup.SMI,
    CheckKind.SMI: CheckGroup.SMI,
    CheckKind.NOT_A_NUMBER: CheckGroup.TYPE,
    CheckKind.NOT_A_STRING: CheckGroup.TYPE,
    CheckKind.WRONG_INSTANCE_TYPE: CheckGroup.TYPE,
    CheckKind.WRONG_CALL_TARGET: CheckGroup.TYPE,
    CheckKind.WRONG_MAP: CheckGroup.MAP,
    CheckKind.OUT_OF_BOUNDS: CheckGroup.BOUNDS,
    CheckKind.OVERFLOW: CheckGroup.ARITHMETIC,
    CheckKind.LOST_PRECISION: CheckGroup.ARITHMETIC,
    CheckKind.DIVISION_BY_ZERO: CheckGroup.ARITHMETIC,
    CheckKind.MINUS_ZERO: CheckGroup.ARITHMETIC,
    CheckKind.HOLE: CheckGroup.OTHER,
    CheckKind.INSUFFICIENT_FEEDBACK: CheckGroup.OTHER,
    CheckKind.NOT_OPTIMIZABLE_CALL: CheckGroup.OTHER,
}

CHECK_CATEGORIES: Dict[CheckKind, DeoptCategory] = {
    kind: DeoptCategory.EAGER for kind in CheckKind
}
CHECK_CATEGORIES[CheckKind.INSUFFICIENT_FEEDBACK] = DeoptCategory.SOFT
CHECK_CATEGORIES[CheckKind.NOT_OPTIMIZABLE_CALL] = DeoptCategory.SOFT


def group_of(kind: CheckKind) -> CheckGroup:
    return CHECK_GROUPS[kind]


def category_of(kind: CheckKind) -> DeoptCategory:
    return CHECK_CATEGORIES[kind]


#: Deopt-reason byte codes for the SMI-extension's REG_RE register
#: (paper Section V-A: an 8-bit code identifying the deoptimization type).
REASON_CODES: Dict[CheckKind, int] = {
    kind: index + 1 for index, kind in enumerate(CheckKind)
}
REASON_CODES_REVERSE: Dict[int, CheckKind] = {
    code: kind for kind, code in REASON_CODES.items()
}
