"""Target code generation: IR -> machine instructions.

Lowers the speculative IR to one of the modelled ISAs.  This is where the
paper's instruction-shape differences materialize:

* on **x64**, map checks and bounds checks use memory-operand compares
  (``cmp [obj], #map`` / ``cmp idx, [arr+len]``) — one instruction before
  the deopt branch;
* on **arm64**, the same checks need explicit loads and constant
  materialization — two or three instructions before the branch;
* on **arm64+smi**, SMI loads that feed an untag are fused into
  ``jsldrsmi``/``jsldursmi`` and the deopt branch disappears entirely
  (commit-time bailout via REG_RE), per the paper's Section V.

Every instruction belonging to a check carries the check's ``check_id`` as
provenance — that is the *ground truth* the profiler's window heuristic is
later compared against.

The ``emit_check_branches=False`` mode reproduces the paper's Section IV-B
experiment: conditions are still computed, but the conditional deopt
branches are not emitted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.builder import BailoutCompilation, GraphBuilder
from ..ir.nodes import Block, Checkpoint, Node, Repr
from ..isa.base import (
    ARG_REGS,
    CC,
    FRAME_BASE,
    MachineInstr,
    Mem,
    MOp,
    REG_BA,
    TargetISA,
)
from ..values.heap import (
    MAP_OFFSET,
    NUMBER_VALUE_OFFSET,
)
from ..values.tagged import pointer_tag
from .checks import CheckKind
from .deopt import CheckSite, DeoptPoint, DeoptValue, Location
from .regalloc import Allocation, Assignment, allocate

THIS_REG = 7
JS_ARG_REGS = ARG_REGS[:7]

_INT_CC = {"lt": CC.LT, "le": CC.LE, "gt": CC.GT, "ge": CC.GE, "eq": CC.EQ, "ne": CC.NE}
_FLOAT_CC = {"lt": CC.MI, "le": CC.LS, "gt": CC.GT, "ge": CC.GE, "eq": CC.EQ, "ne": CC.NE}
_NEGATE_CC = {
    CC.EQ: CC.NE, CC.NE: CC.EQ, CC.LT: CC.GE, CC.GE: CC.LT, CC.GT: CC.LE,
    CC.LE: CC.GT, CC.HS: CC.LO, CC.LO: CC.HS, CC.HI: CC.LS, CC.LS: CC.HI,
    CC.VS: CC.VC, CC.VC: CC.VS, CC.MI: CC.PL, CC.PL: CC.MI,
}
#: negating a float condition must send NaN to the *branch-not-taken* side
#: correctly; for our generated diamonds we only negate int conditions.

_BITWISE_MOPS = {
    "or": MOp.ORR,
    "and": MOp.AND,
    "xor": MOp.EOR,
    "shl": MOp.LSL,
    "sar": MOp.ASR,
    "shr": MOp.LSR,
}


class CodeObject:
    """Compiled machine code for one function, plus its deopt metadata."""

    def __init__(self, shared, target: TargetISA) -> None:
        self.shared = shared
        self.target = target
        self.instrs: List[MachineInstr] = []
        self.deopt_points: Dict[int, DeoptPoint] = {}
        self.check_sites: Dict[int, CheckSite] = {}
        self.stack_slots = 0
        self.embedded_words: Set[int] = set()
        self.map_dependencies: Set[object] = set()
        self.invalidated = False
        self.smi_load_checks: Dict[int, int] = {}  # pc -> check_id
        self.compile_cycles = 0
        #: position in the engine's compiled-code history (-1 until the
        #: engine registers the object); with a check id this keys the
        #: dynamic check-trip profile the typeflow validator joins on.
        self.serial = -1
        #: cached repro.analysis.typeflow result (immutable, like _decoded).
        self._typeflow: Optional[object] = None
        #: cached repro.analysis.typeflow.VersionAnalysis context (the
        #: prepared must-analysis the LBBV tier queries per version key);
        #: immutable and never invalidated, like _typeflow.
        self._version_analysis: Optional[object] = None
        #: per-check summary exported by the IR pipeline (pass-level check
        #: counts before/after elimination), attached by generate_code for
        #: the typeflow CLI's static-density provenance.
        self.ir_check_summary: Optional[object] = None
        #: decoded dispatch entries, filled lazily by the executor at first
        #: execution (see repro.machine.dispatch); never invalidated because
        #: code objects are immutable once generation finishes.
        self._decoded: Optional[list] = None
        #: fused-block table (repro.machine.blockjit.BlockTable), compiled
        #: lazily next to ``_decoded`` on first block-mode execution; also
        #: never invalidated, but rebuilt if a different executor runs the
        #: code (the closures bind executor state).
        self._blocks: Optional[object] = None
        #: trace table (repro.machine.tracejit.TraceTable): hot-chain
        #: edge counters and compiled trace closures, attached lazily by
        #: the trace-aware driver next to ``_blocks``.  Dropped (set back
        #: to None) together with ``_blocks`` on a deopt storm, since its
        #: traces are built over those very blocks.
        self._traces: Optional[object] = None
        #: version table (repro.machine.lbbv.VersionTable): runtime
        #: type-state-specialized block versions keyed by incoming fact
        #: state, compiled lazily on first execution of each state and
        #: chained guard-free.  Dropped with ``_blocks``/``_traces`` on
        #: every degradation-ladder descent.
        self._versions: Optional[object] = None
        #: set by the divergence sentinel (repro.supervise.sentinel) when
        #: a fused block disagreed with its stepped twin: the executor
        #: then routes this code object through the step tier for the
        #: rest of the process instead of crashing the run.
        self._supervise_demoted = False
        #: degradation-ladder rung the owning function sat on when this
        #: object was compiled (repro.machine.continuations): rung >= 2
        #: compiles generic fused blocks only (no typed variants), the
        #: executor refuses trace promotion above rung 0 and routes
        #: rung >= RUNG_STEPPED objects through the step loop.
        self._tier_rung = 0
        #: Allocator pool metadata recorded for the static linter: a deopt
        #: location naming a register outside these ranges points at a
        #: scratch register, which check-condition emission may clobber.
        self.allocatable_int_regs: Tuple[int, int] = (8, target.gpr_count - 4)
        self.allocatable_float_regs: Tuple[int, int] = (2, target.fpr_count - 2)
        #: Frame slots available to the allocator (excludes the fp/lr pair).
        self.allocatable_slots = 0

    @property
    def instruction_count(self) -> int:
        return len(self.instrs)

    def body_instruction_count(self) -> int:
        """Instructions excluding deopt stubs (what 'checks per 100
        instructions' is computed over)."""
        return sum(1 for i in self.instrs if i.op != MOp.DEOPT)

    def check_instruction_stats(self) -> Dict[str, int]:
        body = 0
        check_instrs = 0
        branches = 0
        for instr in self.instrs:
            if instr.op == MOp.DEOPT:
                continue
            body += 1
            if instr.check_id >= 0 and not instr.shared_with_main:
                check_instrs += 1
            if instr.is_deopt_branch:
                branches += 1
        return {
            "body_instructions": body,
            "check_instructions": check_instrs,
            "deopt_branches": branches,
        }

    def annotated_asm(self) -> str:
        from ..isa.asmprint import format_code

        return format_code(self.instrs, title=f"{self.shared.info.name} [{self.target.name}]")


class CodeGenerator:
    def __init__(
        self,
        builder: GraphBuilder,
        target: TargetISA,
        emit_check_branches: bool = True,
    ) -> None:
        self.builder = builder
        self.graph = builder.graph
        self.target = target
        self.emit_check_branches = emit_check_branches
        gpr = target.gpr_count
        self.int_pool = list(range(8, gpr - 4))
        self.scratch = [gpr - 4, gpr - 3, gpr - 2, gpr - 1]
        self.float_pool = list(range(2, target.fpr_count - 2))
        self.float_scratch = [target.fpr_count - 2, target.fpr_count - 1]
        self.code = CodeObject(builder.shared, target)
        self.allocation: Optional[Allocation] = None
        self._scratch_index = 0
        self._fscratch_index = 0
        self._block_pc: Dict[int, int] = {}
        self._branch_patches: List[Tuple[int, int]] = []  # (instr idx, block id)
        self._deopt_patches: List[Tuple[int, int]] = []  # (instr idx, check id)
        self._next_check_id = 0
        self._fused_loads: Dict[int, Node] = {}  # untag node id -> load node
        self._skip: Set[int] = set()  # node ids with no direct emission
        self._uses: Dict[int, int] = {}
        self._emitted_blocks: List[Block] = []
        #: out-of-line runtime-call stubs: (branch_idx, continuation_pc, name)
        self._ool_stubs: List[Tuple[int, int, str]] = []
        cell_fn = getattr(builder.context, "interrupt_cell_word", None)
        self._interrupt_cell = cell_fn() if cell_fn is not None else None
        nursery_fn = getattr(builder.context, "nursery_cell_word", None)
        self._nursery_cell = nursery_fn() if nursery_fn is not None else None
        number_map = getattr(builder.heap, "number_map", None)
        self._number_map_word = (
            pointer_tag(builder.heap.ensure_map_registered(number_map).address)
            if number_map is not None
            else None
        )
        #: stubs that need a result move: (branch_idx, cont_pc, name, dst_reg)
        self._alloc_stubs: List[Tuple[int, int, int]] = []
        self._fp_lr_slots = 0

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def generate(self) -> CodeObject:
        blocks = [b for b in self.graph.blocks if b.nodes]
        self._uses = self.graph.compute_uses()
        if self.target.has_smi_extension:
            self._find_smi_fusions(blocks)
        self._find_branch_fusions(blocks)
        self.allocation = allocate(
            [self._strip_fused(b) for b in blocks], self.int_pool, self.float_pool
        )
        # Two extra slots model the fp/lr save area of a real frame.
        self._fp_lr_slots = self.allocation.slot_count
        self.code.stack_slots = self.allocation.slot_count + 2
        self.code.allocatable_slots = self.allocation.slot_count
        self.code.allocatable_int_regs = (self.int_pool[0], self.int_pool[-1] + 1)
        self.code.allocatable_float_regs = (self.float_pool[0], self.float_pool[-1] + 1)
        self.code.embedded_words = set(self.builder.embedded_words)
        self.code.map_dependencies = set(self.builder.map_dependencies)
        # IR-level check provenance (repro.ir.passes.summary), recorded by
        # the pipeline; absent when a caller built the graph by hand.
        self.code.ir_check_summary = getattr(self.builder, "check_summary", None)

        self._emit_prologue()
        self._emitted_blocks = blocks
        for index, block in enumerate(blocks):
            self._block_pc[block.id] = len(self.code.instrs)
            if block.loop_header:
                self._emit_interrupt_check("loop interrupt check")
            next_block = blocks[index + 1] if index + 1 < len(blocks) else None
            self._emit_block(block, next_block)
        self._emit_ool_stubs()
        self._emit_deopt_stubs()
        self._patch_branches()
        self.code.compile_cycles = 60 * len(self.code.instrs) + 150
        return self.code

    def _strip_fused(self, block: Block) -> Block:
        # For allocation purposes, fused loads produce no value that needs a
        # location; we keep them in the schedule (position holders) but they
        # are never referenced once checkpoints were redirected.
        return block

    # ------------------------------------------------------------------
    # Pre-passes
    # ------------------------------------------------------------------

    def _uses_excluding_checkpoints(self) -> Dict[int, int]:
        return self._uses

    def _find_smi_fusions(self, blocks: List[Block]) -> None:
        """Find load -> untag pairs to fuse into jsldrsmi (Section V)."""
        fusable_loads = {"load_field", "load_element", "load_element_signed"}
        checkpoints: List[Checkpoint] = []
        for block in blocks:
            for node in block.nodes:
                if node.checkpoint is not None:
                    checkpoints.append(node.checkpoint)
        for block in blocks:
            previous_value: Optional[Node] = None
            for node in block.nodes:
                if node.op in ("untag_signed", "checked_untag"):
                    load = node.inputs[0]
                    if (
                        load.op in fusable_loads
                        and load.block is block
                        and previous_value is load
                        and self._uses.get(load.id, 0) == 1
                        and not load.param("global", False)
                    ):
                        self._fused_loads[node.id] = load
                        self._skip.add(load.id)
                if node.produces_value:
                    previous_value = node
                elif node.op in (
                    "store_field",
                    "store_element",
                    "store_element_float",
                    "call_rt",
                    "call_js",
                    "call_dyn",
                ):
                    previous_value = None  # memory may have changed
        if not self._fused_loads:
            return
        fused_ids = {load.id for load in self._fused_loads.values()}
        replacements = {
            load.id: untag_id for untag_id, load in
            ((uid, ld) for uid, ld in self._fused_loads.items())
        }
        by_id: Dict[int, Node] = {}
        for block in blocks:
            for node in block.nodes:
                by_id[node.id] = node
        for checkpoint in checkpoints:
            new_values = []
            for reg, value in checkpoint.values:
                if value.id in fused_ids:
                    value = by_id[replacements[value.id]]
                new_values.append((reg, value))
            checkpoint.values = new_values

    def _find_branch_fusions(self, blocks: List[Block]) -> None:
        """cmp nodes used only by a branch in the same block emit nothing at
        their own position; the branch emits cmp+bcc."""
        no_code_ops = {"const_int32", "const_float", "const_tagged", "parameter", "this", "phi"}
        for block in blocks:
            terminator = block.terminator
            if terminator is None or terminator.op != "branch":
                continue
            condition = terminator.inputs[0]
            if (
                condition.op not in ("int32_cmp", "float64_cmp")
                or condition.block is not block
                or self._uses.get(condition.id, 0) != 1
            ):
                continue
            # Fusing delays the cmp to the branch position, so nothing that
            # emits code (and could clobber the cmp's operand registers) may
            # sit between them — edge conversions inserted before the
            # terminator are the typical offender.
            try:
                cmp_index = block.nodes.index(condition)
            except ValueError:
                continue
            between = block.nodes[cmp_index + 1 : len(block.nodes) - 1]
            if any(not n.dead and n.op not in no_code_ops for n in between):
                continue
            self._skip.add(condition.id)
            terminator.params["fused_cmp"] = condition

    # ------------------------------------------------------------------
    # Operand plumbing
    # ------------------------------------------------------------------

    def _reset_scratch(self) -> None:
        self._scratch_index = 0
        self._fscratch_index = 0

    def _take_scratch(self) -> int:
        if self._scratch_index >= len(self.scratch):
            raise BailoutCompilation("out of scratch registers")
        register = self.scratch[self._scratch_index]
        self._scratch_index += 1
        return register

    def _take_fscratch(self) -> int:
        if self._fscratch_index >= len(self.float_scratch):
            raise BailoutCompilation("out of float scratch registers")
        register = self.float_scratch[self._fscratch_index]
        self._fscratch_index += 1
        return register

    def emit(self, op: MOp, **kwargs) -> MachineInstr:
        instr = MachineInstr(op, **kwargs)
        self.code.instrs.append(instr)
        return instr

    def _loc(self, node: Node) -> Optional[Assignment]:
        assert self.allocation is not None
        return self.allocation.location_of(node)

    def use_int(self, node: Node, check_id: int = -1) -> int:
        """Register holding the (int-file) value of ``node``."""
        if node.op == "const_int32":
            scratch = self._take_scratch()
            self.emit(MOp.MOVI, dst=scratch, imm=int(node.param("imm", 0)), check_id=check_id)
            return scratch
        if node.op == "const_tagged":
            scratch = self._take_scratch()
            self.emit(MOp.MOVI, dst=scratch, imm=int(node.param("imm", 0)), check_id=check_id)
            return scratch
        assignment = self._loc(node)
        if assignment is None:
            raise BailoutCompilation(f"value n{node.id}:{node.op} has no location")
        if assignment.kind == "reg":
            return assignment.index
        if assignment.kind == "slot":
            scratch = self._take_scratch()
            self.emit(
                MOp.LDR, dst=scratch, mem=(FRAME_BASE, -1, 0, assignment.index),
                check_id=check_id,
            )
            return scratch
        raise BailoutCompilation(f"int use of float value n{node.id}")

    def use_float(self, node: Node, check_id: int = -1) -> int:
        if node.op == "const_float":
            scratch = self._take_fscratch()
            self.emit(MOp.FMOVI, dst=scratch, imm=float(node.param("imm", 0.0)), check_id=check_id)
            return scratch
        assignment = self._loc(node)
        if assignment is None:
            raise BailoutCompilation(f"value n{node.id}:{node.op} has no location")
        if assignment.kind == "freg":
            return assignment.index
        if assignment.kind == "slot":
            scratch = self._take_fscratch()
            self.emit(MOp.LDRF, dst=scratch, mem=(FRAME_BASE, -1, 0, assignment.index))
            return scratch
        raise BailoutCompilation(f"float use of int value n{node.id}")

    def def_reg(self, node: Node) -> Tuple[int, Optional[int]]:
        """(register to compute into, spill slot or None)."""
        assignment = self._loc(node)
        if assignment is None:
            # Value is dead (kept only for effects); compute into scratch.
            return self._take_scratch(), None
        if assignment.kind == "reg":
            return assignment.index, None
        return self._take_scratch(), assignment.index

    def def_freg(self, node: Node) -> Tuple[int, Optional[int]]:
        assignment = self._loc(node)
        if assignment is None:
            return self._take_fscratch(), None
        if assignment.kind == "freg":
            return assignment.index, None
        return self._take_fscratch(), assignment.index

    def finish_def(self, node: Node, register: int, slot: Optional[int]) -> None:
        if slot is None:
            return
        if node.out_repr == Repr.FLOAT64:
            self.emit(MOp.STRF, s1=register, mem=(FRAME_BASE, -1, 0, slot))
        else:
            self.emit(MOp.STR, s1=register, mem=(FRAME_BASE, -1, 0, slot))

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _new_check(self, node: Node, kind: Optional[CheckKind] = None) -> int:
        check_kind = kind if kind is not None else node.check_kind
        assert check_kind is not None
        check_id = self._next_check_id
        self._next_check_id += 1
        checkpoint = node.checkpoint
        values: List[DeoptValue] = []
        this_location = None
        if checkpoint is not None:
            for reg, value in checkpoint.values:
                values.append(
                    DeoptValue(reg, self._deopt_location(value), value.out_repr.value)
                )
            if checkpoint.this_node is not None:
                this = checkpoint.this_node
                this_location = (self._deopt_location(this), this.out_repr.value)
            bytecode_pc = checkpoint.bytecode_pc
        else:
            bytecode_pc = 0
        self.code.deopt_points[check_id] = DeoptPoint(
            check_id, check_kind, bytecode_pc, tuple(values), this_location
        )
        self.code.check_sites[check_id] = CheckSite(check_id, check_kind, bytecode_pc)
        return check_id

    def _deopt_location(self, node: Node) -> Location:
        if node.op == "const_int32":
            return Location("const_int", int(node.param("imm", 0)))
        if node.op == "const_float":
            return Location("const_float", float(node.param("imm", 0.0)))
        if node.op == "const_tagged":
            return Location("const_tagged", int(node.param("imm", 0)))
        assignment = self._loc(node)
        if assignment is None:
            # The value was never allocated (e.g. it only feeds checkpoints
            # of checks that got eliminated) — treat as undefined.
            return Location("const_tagged", self.builder.heap.undefined)
        return Location(assignment.kind, assignment.index)

    def _emit_deopt_branch(self, cc: CC, check_id: int) -> None:
        if not self.emit_check_branches:
            return
        instr = self.emit(
            MOp.BCC, cc=cc, check_id=check_id, is_deopt_branch=True,
            comment=self.code.check_sites[check_id].kind.name,
        )
        self.code.check_sites[check_id].branch_pc = len(self.code.instrs) - 1
        self._deopt_patches.append((len(self.code.instrs) - 1, check_id))

    def _emit_deopt_stubs(self) -> None:
        for check_id, site in self.code.check_sites.items():
            site.stub_pc = len(self.code.instrs)
            self.emit(MOp.DEOPT, imm=check_id, check_id=check_id)
        for instr_index, check_id in self._deopt_patches:
            self.code.instrs[instr_index].target = self.code.check_sites[check_id].stub_pc

    def _patch_branches(self) -> None:
        for instr_index, block_id in self._branch_patches:
            self.code.instrs[instr_index].target = self._block_pc[block_id]

    def _emit_interrupt_check(self, comment: str) -> None:
        """V8-style stack/interrupt budget check: a load of the interrupt
        cell, a compare, and a never-taken branch to an out-of-line runtime
        call.  These are *main-line* instructions (not checks) and exist in
        every V8 function prologue and at every loop back edge."""
        if self._interrupt_cell is None:
            return
        self._reset_scratch()
        scratch = self._take_scratch()
        from ..values.heap import FIXED_ARRAY_ELEMENTS_OFFSET as _FA

        base = self._take_scratch()
        self.emit(MOp.MOVI, dst=base, imm=self._interrupt_cell, comment=comment)
        self.emit(MOp.LDR, dst=scratch, mem=(base, -1, 0, _FA))
        self.emit(MOp.CMPI, s1=scratch, imm=0)
        branch_index = len(self.code.instrs)
        self.emit(MOp.BCC, cc=CC.NE)
        self._ool_stubs.append((branch_index, len(self.code.instrs), "interrupt"))

    def _emit_write_barrier(self, base_reg: int, value_node: Node) -> None:
        """Generational write barrier for tagged stores (V8 emits one for
        every store of a possibly-pointer value into the heap): smi values
        skip it; the page-flag test is never-taken to the out-of-line call.
        Statically-SMI values elide the barrier entirely."""
        if value_node.out_repr != Repr.TAGGED:
            return
        value = self.use_int(value_node)
        self.emit(MOp.TSTI, s1=value, imm=1, comment="barrier: smi skip")
        skip_index = len(self.code.instrs)
        self.emit(MOp.BCC, cc=CC.EQ)  # smi -> no barrier (local forward)
        scratch = self._take_scratch()
        self.emit(MOp.ANDI, dst=scratch, s1=base_reg, imm=-4096, comment="page")
        self.emit(MOp.CMPI, s1=scratch, imm=1, comment="page flags")
        branch_index = len(self.code.instrs)
        self.emit(MOp.BCC, cc=CC.EQ)  # never taken
        self._ool_stubs.append((branch_index, len(self.code.instrs), "write_barrier"))
        self.code.instrs[skip_index].target = len(self.code.instrs)

    def _emit_ool_stubs(self) -> None:
        for branch_index, continuation, name in self._ool_stubs:
            stub_pc = len(self.code.instrs)
            self.code.instrs[branch_index].target = stub_pc
            self.emit(MOp.CALL_RT, aux=(name, None), args=(), comment=f"ool {name}")
            self.emit(MOp.B, target=continuation)
        for branch_index, continuation, result_reg in self._alloc_stubs:
            stub_pc = len(self.code.instrs)
            self.code.instrs[branch_index].target = stub_pc
            self.emit(
                MOp.CALL_RT, aux=("alloc_number_slow", None), args=(),
                comment="ool alloc slow path",
            )
            if result_reg != 0:
                self.emit(MOp.MOVR, dst=result_reg, s1=0)
            self.emit(MOp.B, target=continuation)

    # ------------------------------------------------------------------
    # Prologue / epilogue
    # ------------------------------------------------------------------

    def _emit_prologue(self) -> None:
        # Frame build: stp fp, lr / mov fp, sp (modelled as two frame stores).
        self.emit(MOp.STR, s1=0, mem=(FRAME_BASE, -1, 0, self._fp_lr_slots),
                  comment="push fp")
        self.emit(MOp.STR, s1=0, mem=(FRAME_BASE, -1, 0, self._fp_lr_slots + 1),
                  comment="push lr")
        self._emit_interrupt_check("stack check")
        if self.target.has_smi_extension and self._fused_loads:
            scratch = self.scratch[0]
            # adrp/add/msr sequence installing the bailout handler (Fig. 11).
            self.emit(MOp.MOVI, dst=scratch, imm=0, comment="adrp bailout_handler")
            self.emit(MOp.ADDI, dst=scratch, s1=scratch, imm=0, comment=":lo12:bailout_handler")
            self.emit(MOp.MSR, s1=scratch, imm=REG_BA, comment="install REG_BA")
        for block in self.graph.blocks:
            for node in block.nodes:
                if node.op == "parameter":
                    assignment = self._loc(node)
                    if assignment is None:
                        continue
                    index = int(node.param("index", 0))
                    source = JS_ARG_REGS[index]
                    if assignment.kind == "reg":
                        if assignment.index != source:
                            self.emit(MOp.MOVR, dst=assignment.index, s1=source)
                    else:
                        self.emit(MOp.STR, s1=source, mem=(FRAME_BASE, -1, 0, assignment.index))
                elif node.op == "this":
                    assignment = self._loc(node)
                    if assignment is None:
                        continue
                    if assignment.kind == "reg":
                        self.emit(MOp.MOVR, dst=assignment.index, s1=THIS_REG)
                    else:
                        self.emit(MOp.STR, s1=THIS_REG, mem=(FRAME_BASE, -1, 0, assignment.index))

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------

    def _emit_block(self, block: Block, next_block: Optional[Block]) -> None:
        for node in block.nodes:
            if node.dead or node.id in self._skip:
                continue
            self._reset_scratch()
            self._emit_node(node, block, next_block)

    # -- phi moves ---------------------------------------------------------

    def _phi_moves(self, pred: Block, succ: Block) -> List[Tuple[Assignment, Node]]:
        moves: List[Tuple[Assignment, Node]] = []
        try:
            pred_index = succ.predecessors.index(pred)
        except ValueError:
            return moves
        for node in succ.nodes:
            if node.op != "phi" or node.dead:
                continue
            if pred_index >= len(node.inputs):
                continue
            destination = self._loc(node)
            if destination is None:
                continue
            source = node.inputs[pred_index]
            moves.append((destination, source))
        return moves

    def _emit_parallel_moves(self, moves: List[Tuple[Assignment, Node]]) -> None:
        pending: List[Tuple[Assignment, Optional[Node], Optional[Assignment]]] = []
        for destination, source in moves:
            source_assignment = (
                self._loc(source)
                if source.op not in ("const_int32", "const_float", "const_tagged")
                else None
            )
            if source_assignment is not None and (
                source_assignment.kind == destination.kind
                and source_assignment.index == destination.index
            ):
                continue
            pending.append((destination, source, source_assignment))

        spilled: Dict[Tuple[str, int], Tuple[str, int]] = {}

        def src_key(assignment: Optional[Assignment]):
            if assignment is None:
                return None
            return (assignment.kind, assignment.index)

        while pending:
            emitted_one = False
            for index, (destination, source, source_assignment) in enumerate(pending):
                destination_key = (destination.kind, destination.index)
                conflict = any(
                    src_key(other_src) == destination_key
                    for other_index, (_d, _s, other_src) in enumerate(pending)
                    if other_index != index
                )
                if not conflict:
                    self._reset_scratch()
                    self._emit_single_move(destination, source, source_assignment, spilled)
                    pending.pop(index)
                    emitted_one = True
                    break
            if not emitted_one:
                # Cycle: park the first source in a scratch register.
                destination, source, source_assignment = pending[0]
                assert source_assignment is not None
                self._reset_scratch()
                park = (
                    self.float_scratch[-1]
                    if source_assignment.kind == "freg"
                    else self.scratch[-1]
                )
                self._load_assignment(park, source_assignment)
                spilled[(source_assignment.kind, source_assignment.index)] = (
                    "freg" if source_assignment.kind == "freg" else "reg",
                    park,
                )
                new_kind = "freg" if source_assignment.kind == "freg" else "reg"
                pending[0] = (destination, source, Assignment(new_kind, park))
                # Update other moves reading the parked location.
                for j in range(1, len(pending)):
                    d_j, s_j, a_j = pending[j]
                    if src_key(a_j) == (source_assignment.kind, source_assignment.index):
                        pending[j] = (d_j, s_j, Assignment(new_kind, park))

    def _load_assignment(self, register: int, assignment: Assignment) -> None:
        if assignment.kind == "reg":
            self.emit(MOp.MOVR, dst=register, s1=assignment.index)
        elif assignment.kind == "freg":
            self.emit(MOp.FMOVR, dst=register, s1=assignment.index)
        else:
            self.emit(MOp.LDR, dst=register, mem=(FRAME_BASE, -1, 0, assignment.index))

    def _emit_single_move(
        self,
        destination: Assignment,
        source: Node,
        source_assignment: Optional[Assignment],
        spilled: Dict,
    ) -> None:
        if source_assignment is None:
            # Constant rematerialization straight into the destination.
            if source.op == "const_float":
                if destination.kind == "freg":
                    self.emit(MOp.FMOVI, dst=destination.index, imm=float(source.param("imm", 0.0)))
                else:
                    scratch = self._take_fscratch()
                    self.emit(MOp.FMOVI, dst=scratch, imm=float(source.param("imm", 0.0)))
                    self.emit(MOp.STRF, s1=scratch, mem=(FRAME_BASE, -1, 0, destination.index))
            else:
                imm = int(source.param("imm", 0))
                if destination.kind == "reg":
                    self.emit(MOp.MOVI, dst=destination.index, imm=imm)
                else:
                    scratch = self._take_scratch()
                    self.emit(MOp.MOVI, dst=scratch, imm=imm)
                    self.emit(MOp.STR, s1=scratch, mem=(FRAME_BASE, -1, 0, destination.index))
            return
        actual = spilled.get((source_assignment.kind, source_assignment.index))
        if actual is not None:
            source_assignment = Assignment(actual[0], actual[1])
        kind = source_assignment.kind
        if destination.kind == "reg":
            self._load_assignment(destination.index, source_assignment)
        elif destination.kind == "freg":
            if kind == "freg":
                self.emit(MOp.FMOVR, dst=destination.index, s1=source_assignment.index)
            else:
                self.emit(MOp.LDRF, dst=destination.index, mem=(FRAME_BASE, -1, 0, source_assignment.index))
        else:  # slot destination
            if kind == "reg":
                self.emit(MOp.STR, s1=source_assignment.index, mem=(FRAME_BASE, -1, 0, destination.index))
            elif kind == "freg":
                self.emit(MOp.STRF, s1=source_assignment.index, mem=(FRAME_BASE, -1, 0, destination.index))
            else:
                scratch = self._take_scratch()
                self.emit(MOp.LDR, dst=scratch, mem=(FRAME_BASE, -1, 0, source_assignment.index))
                self.emit(MOp.STR, s1=scratch, mem=(FRAME_BASE, -1, 0, destination.index))

    def _emit_edge(self, pred: Block, succ_block: Block, next_block: Optional[Block]) -> None:
        """Phi moves + jump for an unconditional edge."""
        moves = self._phi_moves(pred, succ_block)
        self._emit_parallel_moves(moves)
        if next_block is not succ_block:
            instr = self.emit(MOp.B)
            self._branch_patches.append((len(self.code.instrs) - 1, succ_block.id))

    # ------------------------------------------------------------------
    # Node emission
    # ------------------------------------------------------------------

    def _emit_node(self, node: Node, block: Block, next_block: Optional[Block]) -> None:
        op = node.op
        handler = getattr(self, f"_emit_{op}", None)
        if handler is not None:
            handler(node, block, next_block)
            return
        raise BailoutCompilation(f"no emitter for IR op {op!r}")

    # constants / parameters produce no code at their position
    def _emit_const_int32(self, node, block, next_block):  # noqa: D401
        pass

    _emit_const_float = _emit_const_int32
    _emit_const_tagged = _emit_const_int32
    _emit_parameter = _emit_const_int32
    _emit_this = _emit_const_int32
    _emit_phi = _emit_const_int32

    # -- moves / tagging ---------------------------------------------------

    def _emit_tag_int32(self, node, block, next_block):
        source = self.use_int(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(MOp.LSLI, dst=register, s1=source, imm=1)
        self.finish_def(node, register, slot)

    def _emit_checked_tag_int32(self, node, block, next_block):
        check_id = self._new_check(node)
        source = self.use_int(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(
            MOp.ADDS, dst=register, s1=source, s2=source,
            check_id=check_id, shared_with_main=True, comment="smi tag",
        )
        self._emit_deopt_branch(CC.VS, check_id)
        self.finish_def(node, register, slot)

    def _emit_untag_signed(self, node, block, next_block):
        fused = self._fused_loads.get(node.id)
        if fused is not None:
            self._emit_jsldrsmi(node, fused, check_id=-1)
            return
        source = self.use_int(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(MOp.ASRI, dst=register, s1=source, imm=1)
        self.finish_def(node, register, slot)

    def _emit_checked_untag(self, node, block, next_block):
        fused = self._fused_loads.get(node.id)
        if fused is not None:
            check_id = self._new_check(node)
            self._emit_jsldrsmi(node, fused, check_id=check_id)
            return
        check_id = self._new_check(node)
        source = self.use_int(node.inputs[0])
        self.emit(MOp.TSTI, s1=source, imm=1, check_id=check_id)
        self._emit_deopt_branch(CC.NE, check_id)
        register, slot = self.def_reg(node)
        self.emit(MOp.ASRI, dst=register, s1=source, imm=1)
        self.finish_def(node, register, slot)

    def _emit_jsldrsmi(self, untag_node: Node, load_node: Node, check_id: int) -> None:
        mem = self._mem_for_load(load_node)
        register, slot = self.def_reg(untag_node)
        pc = len(self.code.instrs)
        self.emit(
            MOp.JSLDRSMI, dst=register, mem=mem, check_id=check_id,
            comment="fused SMI load",
        )
        if check_id >= 0:
            self.code.smi_load_checks[pc] = check_id
        self.finish_def(untag_node, register, slot)

    def _mem_for_load(self, load_node: Node) -> Mem:
        if load_node.op == "load_field":
            base = self.use_int(load_node.inputs[0])
            return (base, -1, 0, int(load_node.param("offset", 0)))
        base = self.use_int(load_node.inputs[0])
        index = self.use_int(load_node.inputs[1])
        return (base, index, 0, int(load_node.param("base_offset", 0)))

    # -- integer ALU ---------------------------------------------------------

    def _emit_int32_binary(self, node, mop: MOp) -> None:
        lhs = self.use_int(node.inputs[0])
        rhs = self.use_int(node.inputs[1])
        register, slot = self.def_reg(node)
        self.emit(mop, dst=register, s1=lhs, s2=rhs)
        self.finish_def(node, register, slot)

    def _emit_int32_add(self, node, block, next_block):
        self._emit_int32_binary(node, MOp.ADD)

    def _emit_int32_sub(self, node, block, next_block):
        self._emit_int32_binary(node, MOp.SUB)

    def _emit_int32_mul(self, node, block, next_block):
        self._emit_int32_binary(node, MOp.MUL)

    def _emit_int32_and(self, node, block, next_block):
        self._emit_int32_binary(node, MOp.AND)

    def _emit_int32_or(self, node, block, next_block):
        self._emit_int32_binary(node, MOp.ORR)

    def _emit_int32_xor(self, node, block, next_block):
        self._emit_int32_binary(node, MOp.EOR)

    def _emit_int32_shl(self, node, block, next_block):
        self._emit_int32_binary(node, MOp.LSL)

    def _emit_int32_sar(self, node, block, next_block):
        self._emit_int32_binary(node, MOp.ASR)

    def _emit_int32_shr(self, node, block, next_block):
        self._emit_int32_binary(node, MOp.LSR)

    def _emit_int32_neg(self, node, block, next_block):
        source = self.use_int(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(MOp.NEGS, dst=register, s1=source)
        self.finish_def(node, register, slot)

    def _emit_checked_arith(self, node, mop: MOp) -> None:
        check_id = self._new_check(node)
        lhs = self.use_int(node.inputs[0])
        rhs = self.use_int(node.inputs[1])
        register, slot = self.def_reg(node)
        self.emit(
            mop, dst=register, s1=lhs, s2=rhs,
            check_id=check_id, shared_with_main=True,
        )
        self._emit_deopt_branch(CC.VS, check_id)
        self.finish_def(node, register, slot)

    def _emit_checked_int32_add(self, node, block, next_block):
        self._emit_checked_arith(node, MOp.ADDS)

    def _emit_checked_int32_sub(self, node, block, next_block):
        self._emit_checked_arith(node, MOp.SUBS)

    def _emit_checked_int32_mul(self, node, block, next_block):
        check_id = self._new_check(node)
        lhs = self.use_int(node.inputs[0])
        rhs = self.use_int(node.inputs[1])
        register, slot = self.def_reg(node)
        self.emit(
            MOp.MULS, dst=register, s1=lhs, s2=rhs,
            check_id=check_id, shared_with_main=True, comment="smull+cmp",
        )
        self._emit_deopt_branch(CC.VS, check_id)
        if node.param("minus_zero_check", True):
            # Minus-zero: result 0 with a negative operand deopts.  Elided
            # when every consumer truncates (V8's truncation analysis).
            mz_id = self._new_check(node, CheckKind.MINUS_ZERO)
            sign_scratch = self._take_scratch()
            self.emit(MOp.ORR, dst=sign_scratch, s1=lhs, s2=rhs, check_id=mz_id)
            self.emit(MOp.MZCMP, s1=register, s2=sign_scratch, check_id=mz_id)
            self._emit_deopt_branch(CC.EQ, mz_id)
        self.finish_def(node, register, slot)

    def _emit_checked_int32_neg(self, node, block, next_block):
        check_id = self._new_check(node)
        source = self.use_int(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(
            MOp.NEGS, dst=register, s1=source,
            check_id=check_id, shared_with_main=True,
        )
        self._emit_deopt_branch(CC.EQ, check_id)  # -0 when source was 0
        self.finish_def(node, register, slot)

    def _emit_check_nonzero(self, node, block, next_block):
        check_id = self._new_check(node)
        source = self.use_int(node.inputs[0], check_id=check_id)
        self.emit(MOp.CMPI, s1=source, imm=0, check_id=check_id)
        self._emit_deopt_branch(CC.EQ, check_id)

    def _emit_checked_int32_div(self, node, block, next_block):
        check_id = self._new_check(node)
        lhs = self.use_int(node.inputs[0])
        rhs = self.use_int(node.inputs[1])
        register, slot = self.def_reg(node)
        self.emit(MOp.SDIV, dst=register, s1=lhs, s2=rhs)
        scratch = self._take_scratch()
        self.emit(MOp.MUL, dst=scratch, s1=register, s2=rhs, check_id=check_id)
        self.emit(MOp.CMP, s1=scratch, s2=lhs, check_id=check_id)
        self._emit_deopt_branch(CC.NE, check_id)
        self.finish_def(node, register, slot)

    def _emit_int32_div(self, node, block, next_block):
        lhs = self.use_int(node.inputs[0])
        rhs = self.use_int(node.inputs[1])
        register, slot = self.def_reg(node)
        self.emit(MOp.SDIV, dst=register, s1=lhs, s2=rhs)
        self.finish_def(node, register, slot)

    def _emit_checked_int32_mod(self, node, block, next_block):
        check_id = self._new_check(node)
        lhs = self.use_int(node.inputs[0])
        rhs = self.use_int(node.inputs[1])
        register, slot = self.def_reg(node)
        quotient = self._take_scratch()
        self.emit(MOp.SDIV, dst=quotient, s1=lhs, s2=rhs)
        self.emit(MOp.MUL, dst=quotient, s1=quotient, s2=rhs)
        self.emit(MOp.SUB, dst=register, s1=lhs, s2=quotient)
        self.emit(MOp.MZCMP, s1=register, s2=lhs, check_id=check_id)
        self._emit_deopt_branch(CC.EQ, check_id)
        self.finish_def(node, register, slot)

    def _emit_int32_mod(self, node, block, next_block):
        lhs = self.use_int(node.inputs[0])
        rhs = self.use_int(node.inputs[1])
        register, slot = self.def_reg(node)
        quotient = self._take_scratch()
        self.emit(MOp.SDIV, dst=quotient, s1=lhs, s2=rhs)
        self.emit(MOp.MUL, dst=quotient, s1=quotient, s2=rhs)
        self.emit(MOp.SUB, dst=register, s1=lhs, s2=quotient)
        self.finish_def(node, register, slot)

    # -- float ALU -----------------------------------------------------------

    def _emit_float_binary(self, node, mop: MOp) -> None:
        lhs = self.use_float(node.inputs[0])
        rhs = self.use_float(node.inputs[1])
        register, slot = self.def_freg(node)
        self.emit(mop, dst=register, s1=lhs, s2=rhs)
        self.finish_def(node, register, slot)

    def _emit_float64_add(self, node, block, next_block):
        self._emit_float_binary(node, MOp.FADD)

    def _emit_float64_sub(self, node, block, next_block):
        self._emit_float_binary(node, MOp.FSUB)

    def _emit_float64_mul(self, node, block, next_block):
        self._emit_float_binary(node, MOp.FMUL)

    def _emit_float64_div(self, node, block, next_block):
        self._emit_float_binary(node, MOp.FDIV)

    def _emit_float64_neg(self, node, block, next_block):
        source = self.use_float(node.inputs[0])
        register, slot = self.def_freg(node)
        self.emit(MOp.FNEG, dst=register, s1=source)
        self.finish_def(node, register, slot)

    def _emit_float64_abs(self, node, block, next_block):
        source = self.use_float(node.inputs[0])
        register, slot = self.def_freg(node)
        self.emit(MOp.FABS, dst=register, s1=source)
        self.finish_def(node, register, slot)

    def _emit_int32_to_float64(self, node, block, next_block):
        source = self.use_int(node.inputs[0])
        register, slot = self.def_freg(node)
        self.emit(MOp.SCVTF, dst=register, s1=source)
        self.finish_def(node, register, slot)

    def _emit_float64_to_int32_trunc(self, node, block, next_block):
        source = self.use_float(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(MOp.FCVTZS, dst=register, s1=source)
        self.finish_def(node, register, slot)

    def _emit_checked_float64_to_int32(self, node, block, next_block):
        check_id = self._new_check(node)
        source = self.use_float(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(
            MOp.FCVTZS, dst=register, s1=source,
            check_id=check_id, shared_with_main=True,
        )
        round_trip = self._take_fscratch()
        self.emit(MOp.SCVTF, dst=round_trip, s1=register, check_id=check_id)
        self.emit(MOp.FCMP, s1=round_trip, s2=source, check_id=check_id)
        self._emit_deopt_branch(CC.NE, check_id)
        self.finish_def(node, register, slot)

    def _emit_to_float64_diamond(self, node, with_check: bool) -> None:
        source = self.use_int(node.inputs[0], check_id=-1)
        register, slot = self.def_freg(node)
        check_id = self._new_check(node) if with_check else -1
        self.emit(MOp.TSTI, s1=source, imm=1)
        smi_branch = self.emit(MOp.BCC, cc=CC.EQ)  # local: smi path
        smi_branch_index = len(self.code.instrs) - 1
        if with_check:
            map_scratch = self._take_scratch()
            self.emit(
                MOp.LDR, dst=map_scratch, mem=(source, -1, 0, MAP_OFFSET),
                check_id=check_id,
            )
            number_map = node.param("number_map")
            self.emit(
                MOp.CMPI, s1=map_scratch,
                imm=pointer_tag(number_map.address),  # type: ignore[union-attr]
                check_id=check_id, comment="HeapNumber map",
            )
            self._emit_deopt_branch(CC.NE, check_id)
        self.emit(MOp.LDRF, dst=register, mem=(source, -1, 0, NUMBER_VALUE_OFFSET))
        done_branch = self.emit(MOp.B)
        done_branch_index = len(self.code.instrs) - 1
        self.code.instrs[smi_branch_index].target = len(self.code.instrs)
        untag_scratch = self._take_scratch()
        self.emit(MOp.ASRI, dst=untag_scratch, s1=source, imm=1)
        self.emit(MOp.SCVTF, dst=register, s1=untag_scratch)
        self.code.instrs[done_branch_index].target = len(self.code.instrs)
        self.finish_def(node, register, slot)

    def _emit_checked_to_float64(self, node, block, next_block):
        self._emit_to_float64_diamond(node, with_check=True)

    def _emit_unchecked_to_float64(self, node, block, next_block):
        self._emit_to_float64_diamond(node, with_check=False)

    # -- comparisons -----------------------------------------------------------

    def _emit_compare_flags(self, node: Node) -> CC:
        cond = str(node.param("cond", "eq"))
        if node.op == "int32_cmp":
            lhs_node, rhs_node = node.inputs
            lhs = self.use_int(lhs_node)
            if rhs_node.op == "const_int32":
                self.emit(MOp.CMPI, s1=lhs, imm=int(rhs_node.param("imm", 0)))
            else:
                rhs = self.use_int(rhs_node)
                self.emit(MOp.CMP, s1=lhs, s2=rhs)
            return _INT_CC[cond]
        lhs = self.use_float(node.inputs[0])
        rhs = self.use_float(node.inputs[1])
        self.emit(MOp.FCMP, s1=lhs, s2=rhs)
        return _FLOAT_CC[cond]

    def _emit_int32_cmp(self, node, block, next_block):
        cc = self._emit_compare_flags(node)
        register, slot = self.def_reg(node)
        self.emit(MOp.CSET, dst=register, cc=cc)
        self.finish_def(node, register, slot)

    _emit_float64_cmp = _emit_int32_cmp

    def _emit_tagged_equal(self, node, block, next_block):
        lhs = self.use_int(node.inputs[0])
        rhs = self.use_int(node.inputs[1])
        self.emit(MOp.CMP, s1=lhs, s2=rhs)
        register, slot = self.def_reg(node)
        self.emit(MOp.CSET, dst=register, cc=CC.EQ)
        self.finish_def(node, register, slot)

    def _emit_bool_not(self, node, block, next_block):
        source = self.use_int(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(MOp.EORI, dst=register, s1=source, imm=1)
        self.finish_def(node, register, slot)

    def _emit_bool_to_tagged(self, node, block, next_block):
        source = self.use_int(node.inputs[0])
        true_word = int(node.param("true_word", 0))
        false_word = int(node.param("false_word", 0))
        register, slot = self.def_reg(node)
        scratch = self._take_scratch()
        self.emit(MOp.MOVI, dst=scratch, imm=true_word - false_word)
        self.emit(MOp.MUL, dst=register, s1=source, s2=scratch)
        self.emit(MOp.ADDI, dst=register, s1=register, imm=false_word)
        self.finish_def(node, register, slot)

    def _emit_float64_truthy(self, node, block, next_block):
        source = self.use_float(node.inputs[0])
        zero = self._take_fscratch()
        self.emit(MOp.FMOVI, dst=zero, imm=0.0)
        self.emit(MOp.FCMP, s1=source, s2=zero)
        register, slot = self.def_reg(node)
        scratch = self._take_scratch()
        self.emit(MOp.CSET, dst=register, cc=CC.NE)  # != 0 (NaN -> true here)
        self.emit(MOp.CSET, dst=scratch, cc=CC.VS)  # NaN flag
        self.emit(MOp.EORI, dst=scratch, s1=scratch, imm=1)
        self.emit(MOp.AND, dst=register, s1=register, s2=scratch)
        self.finish_def(node, register, slot)

    # -- memory ------------------------------------------------------------

    def _emit_load_field(self, node, block, next_block):
        base = self.use_int(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(
            MOp.LDR, dst=register, mem=(base, -1, 0, int(node.param("offset", 0))),
            comment=str(node.param("name", "")),
        )
        self.finish_def(node, register, slot)

    def _emit_store_field(self, node, block, next_block):
        base = self.use_int(node.inputs[0])
        value = self.use_int(node.inputs[1])
        self.emit(
            MOp.STR, s1=value, mem=(base, -1, 0, int(node.param("offset", 0))),
            comment=str(node.param("name", "")),
        )
        self._emit_write_barrier(base, node.inputs[1])

    def _emit_load_element(self, node, block, next_block):
        base = self.use_int(node.inputs[0])
        index = self.use_int(node.inputs[1])
        register, slot = self.def_reg(node)
        self.emit(
            MOp.LDR, dst=register,
            mem=(base, index, 0, int(node.param("base_offset", 0))),
        )
        self.finish_def(node, register, slot)

    _emit_load_element_signed = _emit_load_element

    def _emit_load_element_float(self, node, block, next_block):
        base = self.use_int(node.inputs[0])
        index = self.use_int(node.inputs[1])
        register, slot = self.def_freg(node)
        self.emit(
            MOp.LDRF, dst=register,
            mem=(base, index, 0, int(node.param("base_offset", 0))),
        )
        self.finish_def(node, register, slot)

    def _emit_store_element(self, node, block, next_block):
        base = self.use_int(node.inputs[0])
        index = self.use_int(node.inputs[1])
        value = self.use_int(node.inputs[2])
        self.emit(
            MOp.STR, s1=value,
            mem=(base, index, 0, int(node.param("base_offset", 0))),
        )
        self._emit_write_barrier(base, node.inputs[2])

    def _emit_store_element_float(self, node, block, next_block):
        base = self.use_int(node.inputs[0])
        index = self.use_int(node.inputs[1])
        value = self.use_float(node.inputs[2])
        self.emit(
            MOp.STRF, s1=value,
            mem=(base, index, 0, int(node.param("base_offset", 0))),
        )

    def _emit_load_array_length(self, node, block, next_block):
        base = self.use_int(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(
            MOp.LDR, dst=register, mem=(base, -1, 0, int(node.param("offset", 0))),
            comment="length (smi)",
        )
        self.emit(MOp.ASRI, dst=register, s1=register, imm=1)
        self.finish_def(node, register, slot)

    def _emit_load_string_length(self, node, block, next_block):
        base = self.use_int(node.inputs[0])
        register, slot = self.def_reg(node)
        self.emit(
            MOp.LDR, dst=register, mem=(base, -1, 0, int(node.param("offset", 0))),
            comment="string length",
        )
        self.finish_def(node, register, slot)

    # -- checks --------------------------------------------------------------

    def _emit_check_heap_object(self, node, block, next_block):
        check_id = self._new_check(node)
        source = self.use_int(node.inputs[0], check_id=check_id)
        self.emit(MOp.TSTI, s1=source, imm=1, check_id=check_id)
        self._emit_deopt_branch(CC.EQ, check_id)

    def _emit_check_map(self, node, block, next_block):
        check_id = self._new_check(node)
        expected = node.param("map")
        map_word = pointer_tag(expected.address)  # type: ignore[union-attr]
        source = self.use_int(node.inputs[0], check_id=check_id)
        if self.target.is_cisc:
            self.emit(
                MOp.CMPI_MEM, mem=(source, -1, 0, MAP_OFFSET), imm=map_word,
                check_id=check_id, comment="map check",
            )
        else:
            map_scratch = self._take_scratch()
            self.emit(
                MOp.LDR, dst=map_scratch, mem=(source, -1, 0, MAP_OFFSET),
                check_id=check_id,
            )
            const_scratch = self._take_scratch()
            self.emit(MOp.MOVI, dst=const_scratch, imm=map_word, check_id=check_id)
            self.emit(MOp.CMP, s1=map_scratch, s2=const_scratch, check_id=check_id)
        self._emit_deopt_branch(CC.NE, check_id)

    def _emit_check_bounds(self, node, block, next_block):
        check_id = self._new_check(node)
        index = self.use_int(node.inputs[0], check_id=check_id)
        array = self.use_int(node.inputs[1], check_id=check_id)
        length_offset = int(node.param("length_offset", 0))
        if self.target.is_cisc:
            self.emit(
                MOp.CMP_MEM, s1=index, mem=(array, -1, 0, length_offset),
                check_id=check_id, comment="bounds",
            )
        else:
            length_scratch = self._take_scratch()
            self.emit(
                MOp.LDR, dst=length_scratch, mem=(array, -1, 0, length_offset),
                check_id=check_id,
            )
            self.emit(MOp.CMP, s1=index, s2=length_scratch, check_id=check_id)
        self._emit_deopt_branch(CC.HS, check_id)

    def _emit_check_call_target(self, node, block, next_block):
        check_id = self._new_check(node)
        expected = int(node.param("expected_word", 0))
        source = self.use_int(node.inputs[0], check_id=check_id)
        if self.target.is_cisc:
            self.emit(MOp.CMPI, s1=source, imm=expected, check_id=check_id)
        else:
            scratch = self._take_scratch()
            self.emit(MOp.MOVI, dst=scratch, imm=expected, check_id=check_id)
            self.emit(MOp.CMP, s1=source, s2=scratch, check_id=check_id)
        self._emit_deopt_branch(CC.NE, check_id)

    def _emit_deopt(self, node, block, next_block):
        check_id = self._new_check(node)
        self.emit(MOp.DEOPT, imm=check_id, check_id=check_id, comment="soft deopt")

    # -- calls -----------------------------------------------------------------

    def _emit_call_arguments(self, args: Sequence[Node]) -> List[int]:
        registers = []
        for index, arg in enumerate(args):
            self._reset_scratch()
            source = self.use_int(arg)
            if source != JS_ARG_REGS[index]:
                self.emit(MOp.MOVR, dst=JS_ARG_REGS[index], s1=source)
            registers.append(JS_ARG_REGS[index])
        return registers

    def _emit_call_js(self, node, block, next_block):
        if node.param("this"):
            args = node.inputs[:-1]
            receiver = node.inputs[-1]
        else:
            args = node.inputs
            receiver = None
        if len(args) > len(JS_ARG_REGS):
            raise BailoutCompilation("too many call arguments")
        registers = self._emit_call_arguments(args)
        if receiver is not None:
            self._reset_scratch()
            source = self.use_int(receiver)
            if source != THIS_REG:
                self.emit(MOp.MOVR, dst=THIS_REG, s1=source)
        code_scratch = self._take_scratch()
        self.emit(
            MOp.MOVI, dst=code_scratch, imm=0, comment="code entry"
        )
        self.emit(
            MOp.CALL_JS, imm=int(node.param("shared_index", -1)), args=registers,
            aux=node.param("shared_index"),
        )
        self._reset_scratch()
        register, slot = self.def_reg(node)
        if register != 0:
            self.emit(MOp.MOVR, dst=register, s1=0)
        self.finish_def(node, register, slot)

    def _emit_call_dyn(self, node, block, next_block):
        callee = node.inputs[0]
        args = node.inputs[1:]
        if len(args) > len(JS_ARG_REGS):
            raise BailoutCompilation("too many call arguments")
        registers = self._emit_call_arguments(args)
        self._reset_scratch()
        callee_reg = self.use_int(callee)
        self.emit(MOp.CALL_DYN, s1=callee_reg, args=registers)
        self._reset_scratch()
        register, slot = self.def_reg(node)
        if register != 0:
            self.emit(MOp.MOVR, dst=register, s1=0)
        self.finish_def(node, register, slot)

    def _emit_call_rt(self, node, block, next_block):
        name = str(node.param("name", ""))
        float_args = all(i.out_repr == Repr.FLOAT64 for i in node.inputs) and node.inputs
        if float_args:
            # float-typed runtime helpers (float64_mod): args in f0, f1.
            for index, arg in enumerate(node.inputs):
                self._reset_scratch()
                source = self.use_float(arg)
                if source != index:
                    self.emit(MOp.FMOVR, dst=index, s1=source)
            registers = list(range(len(node.inputs)))
        else:
            if len(node.inputs) > len(JS_ARG_REGS):
                raise BailoutCompilation("too many runtime-call arguments")
            registers = self._emit_call_arguments(node.inputs)
        extra = node.param("keys") or node.param("key")
        self.emit(
            MOp.CALL_RT, aux=(name, extra), args=registers,
            returns_float=node.out_repr == Repr.FLOAT64,
        )
        self._reset_scratch()
        if node.out_repr == Repr.FLOAT64:
            register, slot = self.def_freg(node)
            if register != 0:
                self.emit(MOp.FMOVR, dst=register, s1=0)
        else:
            register, slot = self.def_reg(node)
            if register != 0:
                self.emit(MOp.MOVR, dst=register, s1=0)
        self.finish_def(node, register, slot)

    def _emit_float64_to_tagged(self, node, block, next_block):
        """ChangeFloat64ToTagged: smi fast path, HeapNumber allocation slow
        path (both inline, V8-style)."""
        value = self.use_float(node.inputs[0])
        if value != 0:
            self.emit(MOp.FMOVR, dst=0, s1=value)  # also the ool-alloc argument
            value = 0
        register, slot = self.def_reg(node)
        int_scratch = self._take_scratch()
        round_trip = self._take_fscratch()
        self.emit(MOp.FCVTZS, dst=int_scratch, s1=value, comment="to-smi try")
        self.emit(MOp.SCVTF, dst=round_trip, s1=int_scratch)
        self.emit(MOp.FCMP, s1=round_trip, s2=value)
        to_alloc_1 = len(self.code.instrs)
        self.emit(MOp.BCC, cc=CC.NE)  # fractional / NaN -> allocate
        self.emit(MOp.ADDS, dst=register, s1=int_scratch, s2=int_scratch, comment="smi tag")
        to_alloc_2 = len(self.code.instrs)
        self.emit(MOp.BCC, cc=CC.VS)  # out of SMI range -> allocate
        done_branch = len(self.code.instrs)
        self.emit(MOp.B)
        alloc_pc = len(self.code.instrs)
        self.code.instrs[to_alloc_1].target = alloc_pc
        self.code.instrs[to_alloc_2].target = alloc_pc
        self._emit_inline_allocation(register, value)
        self.code.instrs[done_branch].target = len(self.code.instrs)
        self.finish_def(node, register, slot)

    def _emit_inline_allocation(self, register: int, value_freg: int) -> None:
        """Bump-allocate a HeapNumber into ``register`` (fast path + ool)."""
        if self._nursery_cell is None or self._number_map_word is None:
            self.emit(MOp.CALL_RT, aux=("alloc_number", None), args=())
            if register != 0:
                self.emit(MOp.MOVR, dst=register, s1=0)
            return
        cell = self._take_scratch()
        limit = self._take_scratch()
        self.emit(MOp.MOVI, dst=cell, imm=self._nursery_cell, comment="nursery")
        from ..values.heap import FIXED_ARRAY_ELEMENTS_OFFSET as _FA

        self.emit(MOp.LDR, dst=register, mem=(cell, -1, 0, _FA), comment="alloc top")
        self.emit(MOp.LDR, dst=limit, mem=(cell, -1, 0, _FA + 1), comment="alloc limit")
        self.emit(MOp.CMP, s1=register, s2=limit)
        branch_index = len(self.code.instrs)
        self.emit(MOp.BCC, cc=CC.HS)  # nursery full -> out of line
        self.emit(MOp.ADDI, dst=limit, s1=register, imm=4, comment="bump (2 words)")
        self.emit(MOp.STR, s1=limit, mem=(cell, -1, 0, _FA))
        self.emit(MOp.MOVI, dst=limit, imm=self._number_map_word, comment="HeapNumber map")
        self.emit(MOp.STR, s1=limit, mem=(register, -1, 0, 0))
        self.emit(MOp.STRF, s1=value_freg, mem=(register, -1, 0, NUMBER_VALUE_OFFSET))
        self._alloc_stubs.append((branch_index, len(self.code.instrs), register))

    def _emit_alloc_heap_number(self, node, block, next_block):
        if self._nursery_cell is None or self._number_map_word is None:
            source = self.use_float(node.inputs[0])
            if source != 0:
                self.emit(MOp.FMOVR, dst=0, s1=source)
            self.emit(MOp.CALL_RT, aux=("alloc_number", None), args=())
            self._reset_scratch()
            register, slot = self.def_reg(node)
            if register != 0:
                self.emit(MOp.MOVR, dst=register, s1=0)
            self.finish_def(node, register, slot)
            return
        # V8-style inline allocation fast path: bump the nursery top, write
        # the map and the payload; overflow goes out of line.
        value = self.use_float(node.inputs[0])
        if value != 0:
            self.emit(MOp.FMOVR, dst=0, s1=value)  # slow path argument
            value = 0
        register, slot = self.def_reg(node)
        cell = self._take_scratch()
        limit = self._take_scratch()
        self.emit(MOp.MOVI, dst=cell, imm=self._nursery_cell, comment="nursery")
        from ..values.heap import FIXED_ARRAY_ELEMENTS_OFFSET as _FA

        self.emit(MOp.LDR, dst=register, mem=(cell, -1, 0, _FA), comment="alloc top")
        self.emit(MOp.LDR, dst=limit, mem=(cell, -1, 0, _FA + 1), comment="alloc limit")
        self.emit(MOp.CMP, s1=register, s2=limit)
        branch_index = len(self.code.instrs)
        self.emit(MOp.BCC, cc=CC.HS)  # nursery full -> out of line
        cont_after_slow = -1  # patched below
        new_top = self._take_scratch()
        self.emit(MOp.ADDI, dst=new_top, s1=register, imm=4, comment="bump (2 words)")
        self.emit(MOp.STR, s1=new_top, mem=(cell, -1, 0, _FA))
        self.emit(MOp.MOVI, dst=limit, imm=self._number_map_word, comment="HeapNumber map")
        self.emit(MOp.STR, s1=limit, mem=(register, -1, 0, 0))
        self.emit(MOp.STRF, s1=value, mem=(register, -1, 0, NUMBER_VALUE_OFFSET))
        self._alloc_stubs.append((branch_index, len(self.code.instrs), register))
        self.finish_def(node, register, slot)

    # -- control -----------------------------------------------------------------

    def _emit_goto(self, node, block, next_block):
        succ_block = node.param("target_block")
        assert succ_block is not None
        self._emit_edge(block, succ_block, next_block)

    def _emit_branch(self, node, block, next_block):
        fused: Optional[Node] = node.param("fused_cmp")  # type: ignore[assignment]
        if fused is not None:
            cc = self._emit_compare_flags(fused)
        else:
            condition = self.use_int(node.inputs[0])
            self.emit(MOp.CMPI, s1=condition, imm=0)
            cc = CC.NE
        true_block = node.param("true_block")
        false_block = node.param("false_block")
        assert true_block is not None and false_block is not None
        true_moves = self._phi_moves(block, true_block)
        false_moves = self._phi_moves(block, false_block)
        if not true_moves:
            branch = self.emit(MOp.BCC, cc=cc)
            self._branch_patches.append((len(self.code.instrs) - 1, true_block.id))
            self._emit_parallel_moves(false_moves)
            if next_block is not false_block:
                self.emit(MOp.B)
                self._branch_patches.append((len(self.code.instrs) - 1, false_block.id))
        elif not false_moves:
            inverted = _NEGATE_CC[cc] if fused is None or fused.op == "int32_cmp" else None
            if inverted is not None:
                branch = self.emit(MOp.BCC, cc=inverted)
                self._branch_patches.append((len(self.code.instrs) - 1, false_block.id))
                self._emit_parallel_moves(true_moves)
                if next_block is not true_block:
                    self.emit(MOp.B)
                    self._branch_patches.append((len(self.code.instrs) - 1, true_block.id))
            else:
                # Cannot safely invert a float condition (NaN); use an edge
                # trampoline for the true side.
                branch = self.emit(MOp.BCC, cc=cc)
                trampoline_patch = len(self.code.instrs) - 1
                self.emit(MOp.B)
                self._branch_patches.append((len(self.code.instrs) - 1, false_block.id))
                self.code.instrs[trampoline_patch].target = len(self.code.instrs)
                self._emit_parallel_moves(true_moves)
                self.emit(MOp.B)
                self._branch_patches.append((len(self.code.instrs) - 1, true_block.id))
        else:
            branch = self.emit(MOp.BCC, cc=cc)
            trampoline_patch = len(self.code.instrs) - 1
            self._emit_parallel_moves(false_moves)
            self.emit(MOp.B)
            self._branch_patches.append((len(self.code.instrs) - 1, false_block.id))
            self.code.instrs[trampoline_patch].target = len(self.code.instrs)
            self._emit_parallel_moves(true_moves)
            self.emit(MOp.B)
            self._branch_patches.append((len(self.code.instrs) - 1, true_block.id))

    def _emit_return(self, node, block, next_block):
        source = self.use_int(node.inputs[0])
        if source != 0:
            self.emit(MOp.MOVR, dst=0, s1=source)
        # Frame teardown: ldp fp, lr (modelled as two frame loads).
        scratch = self._take_scratch()
        self.emit(MOp.LDR, dst=scratch, mem=(FRAME_BASE, -1, 0, self._fp_lr_slots),
                  comment="pop fp")
        self.emit(MOp.LDR, dst=scratch, mem=(FRAME_BASE, -1, 0, self._fp_lr_slots + 1),
                  comment="pop lr")
        self.emit(MOp.RET, s1=0)


def generate_code(
    builder: GraphBuilder, target: TargetISA, emit_check_branches: bool = True
) -> CodeObject:
    """Run register allocation + instruction selection for ``builder``."""
    return CodeGenerator(builder, target, emit_check_branches).generate()
