"""Deoptimization: frame states, bailout, and interpreter resumption.

TurboFan inserts a *checkpoint* before every eager check; if the check
fails, execution "deoptimizes to the state of the most recent checkpoint
and resumes in the interpreter" (paper Section II-B).  Here:

* :class:`DeoptPoint` is the compiled form of a checkpoint: for every live
  interpreter register, where its value lives in the machine state
  (register / stack slot / constant) and in which representation.
* :class:`DeoptSignal` is raised by the functional simulator when a deopt
  branch is taken (or when the SMI-extension's commit-time bailout fires).
* :func:`materialize_frame` rebuilds the interpreter register file, re-
  tagging untagged ints and boxing raw doubles, exactly what V8's
  deoptimizer does when converting machine frames to interpreter frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..values.heap import Heap
from .checks import CheckGroup, CheckKind, group_of


@dataclass(frozen=True)
class Location:
    """Where a checkpoint value lives at deopt time.

    kind: "reg" | "freg" | "slot" | "const_int" | "const_float" |
    "const_tagged"; ``value`` is the register/slot index or the constant.
    """

    kind: str
    value: object


@dataclass(frozen=True)
class DeoptValue:
    interp_reg: int
    location: Location
    repr_name: str  # Repr.value of the node


@dataclass
class DeoptPoint:
    check_id: int
    kind: CheckKind
    bytecode_pc: int
    values: Tuple[DeoptValue, ...]
    this_location: Optional[Tuple[Location, str]] = None

    @property
    def group(self) -> CheckGroup:
        return group_of(self.kind)


@dataclass
class CheckSite:
    """Static metadata about one emitted check (for attribution/reporting)."""

    check_id: int
    kind: CheckKind
    bytecode_pc: int
    branch_pc: int = -1  # machine pc of the deopt branch (-1 if suppressed)
    stub_pc: int = -1


class DeoptSignal(Exception):
    """Raised by the machine when a deoptimization check fires."""

    def __init__(self, check_id: int) -> None:
        super().__init__(f"deopt check #{check_id}")
        self.check_id = check_id


class DeoptStateError(RuntimeError):
    """The deoptimizer was entered without captured machine state.

    This is an engine invariant violation, not a guest-program error: the
    executor must record ``(regs, fregs, frame)`` before raising
    :class:`DeoptSignal`.  A typed exception (rather than ``assert``) keeps
    the failure loud under ``python -O`` and lets chaos harnesses attach
    benchmark context.
    """

    def __init__(self, check_id: int, kind: str, function: str, context: str = "") -> None:
        detail = f"no machine state for deopt check #{check_id} ({kind}) in {function!r}"
        if context:
            detail += f" [{context}]"
        super().__init__(detail)
        self.check_id = check_id
        self.kind = kind
        self.function = function
        self.context = context


@dataclass
class LazyDeoptEvent:
    """Logged when invalidated code is discarded at its next invocation.

    Lazy deopts never transfer machine state (the code was off-stack when
    its assumptions died), so they are accounted separately from
    :class:`DeoptEvent`; ``Engine.lazy_deopts`` must equal the number of
    these events (asserted by the resilience tests).
    """

    function_name: str
    iteration: int
    cycle: int


@dataclass
class DeoptEvent:
    """Logged by the engine for Fig. 6's deopt-event markers."""

    function_name: str
    kind: CheckKind
    bytecode_pc: int
    iteration: int
    cycle: int
    #: check id within the code object that deoptimized (-1 for events
    #: logged before check attribution existed); joined with
    #: ``CodeObject.serial`` this keys the engine's ``check_trips``
    #: profile that the typeflow cross-validator consumes.
    check_id: int = -1


def _decode(heap: Heap, location: Location, repr_name: str, regs, fregs, frame) -> int:
    if location.kind == "reg":
        raw = regs[location.value]
    elif location.kind == "freg":
        raw = fregs[location.value]
    elif location.kind == "slot":
        raw = frame[location.value]
    elif location.kind == "const_int":
        raw = location.value
    elif location.kind == "const_float":
        raw = location.value
    else:  # const_tagged
        return int(location.value)  # type: ignore[arg-type]
    if repr_name in ("tagged", "tagged_signed"):
        return int(raw)  # already a tagged word
    if repr_name in ("int32", "bool"):
        return heap.to_word(int(raw))
    if repr_name == "float64":
        return heap.number_from_float(float(raw))
    raise AssertionError(f"cannot materialize repr {repr_name}")


def materialize_frame(
    heap: Heap,
    point: DeoptPoint,
    register_count: int,
    regs: List[object],
    fregs: List[float],
    frame: List[object],
) -> Tuple[List[int], int]:
    """Rebuild (interpreter registers, this_word-or-undefined) from machine
    state."""
    interp_regs = [heap.undefined] * register_count
    for value in point.values:
        interp_regs[value.interp_reg] = _decode(
            heap, value.location, value.repr_name, regs, fregs, frame
        )
    this_word = heap.undefined
    if point.this_location is not None:
        location, repr_name = point.this_location
        this_word = _decode(heap, location, repr_name, regs, fregs, frame)
    return interp_regs, this_word
