"""Linear-scan register allocation over IR nodes.

Every live non-constant value node gets either a physical register or a
stack-frame slot.  Constants are rematerialized at each use (like a RISC
``movz``), so they never occupy a register.  Integer and floating-point
values are allocated from separate register files.

Loop handling: a value defined before a loop and used inside it must stay
live for the whole loop (the back edge re-enters the body), so its interval
is extended to the loop end — the classic linear-scan fix-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.nodes import Block, Node, Repr

#: ops whose values are rematerialized at use sites instead of allocated.
REMAT_OPS = frozenset({"const_int32", "const_float", "const_tagged"})


@dataclass
class Assignment:
    kind: str  # "reg" | "freg" | "slot"
    index: int


class Allocation:
    """Result of register allocation."""

    def __init__(self) -> None:
        self.assignments: Dict[int, Assignment] = {}
        self.slot_count = 0

    def location_of(self, node: Node) -> Optional[Assignment]:
        return self.assignments.get(node.id)


def _is_float(node: Node) -> bool:
    return node.out_repr == Repr.FLOAT64


def _linearize(blocks: List[Block]) -> Tuple[List[Node], Dict[int, int], Dict[int, Tuple[int, int]]]:
    order: List[Node] = []
    position: Dict[int, int] = {}
    block_range: Dict[int, Tuple[int, int]] = {}
    for block in blocks:
        start = len(order)
        for node in block.nodes:
            if node.dead:
                continue
            position[node.id] = len(order)
            order.append(node)
        block_range[block.id] = (start, max(start, len(order) - 1))
    return order, position, block_range


def _compute_intervals(
    blocks: List[Block],
    order: List[Node],
    position: Dict[int, int],
    block_range: Dict[int, Tuple[int, int]],
) -> Dict[int, Tuple[int, int]]:
    last_use: Dict[int, int] = {}

    def use(node: Node, at: int) -> None:
        if node.id in position:
            last_use[node.id] = max(last_use.get(node.id, position[node.id]), at)

    for node in order:
        at = position[node.id]
        if node.op == "phi":
            # Phi inputs are used at the end of each predecessor block.
            assert node.block is not None
            preds = node.block.predecessors
            for index, an_input in enumerate(node.inputs):
                if index < len(preds):
                    pred_end = block_range.get(preds[index].id, (at, at))[1]
                    use(an_input, pred_end)
                else:
                    use(an_input, at)
            continue
        for an_input in node.inputs:
            use(an_input, at)
        if node.checkpoint is not None:
            for _reg, value in node.checkpoint.values:
                use(value, at)
            if node.checkpoint.this_node is not None:
                use(node.checkpoint.this_node, at)

    # Loop extension: values defined before a loop header but used inside
    # the loop stay live until the loop's last block.
    loops: List[Tuple[int, int]] = []
    for block in blocks:
        if not block.loop_header:
            continue
        header_start = block_range[block.id][0]
        loop_end = header_start
        for pred in block.predecessors:
            pred_range = block_range.get(pred.id)
            if pred_range is not None and pred_range[0] >= header_start:
                loop_end = max(loop_end, pred_range[1])
        loops.append((header_start, loop_end))

    changed = True
    while changed:
        changed = False
        for header_start, loop_end in loops:
            for node_id, end in list(last_use.items()):
                start = position.get(node_id)
                if start is None:
                    continue
                if start < header_start and header_start <= end < loop_end:
                    last_use[node_id] = loop_end
                    changed = True

    intervals: Dict[int, Tuple[int, int]] = {}
    for node in order:
        if node.op in REMAT_OPS or not node.produces_value:
            continue
        start = position[node.id]
        end = last_use.get(node.id, start)
        intervals[node.id] = (start, end)
    return intervals


def allocate(
    blocks: List[Block], int_pool: List[int], float_pool: List[int]
) -> Allocation:
    """Allocate registers for all live value nodes across ``blocks``."""
    order, position, block_range = _linearize(blocks)
    intervals = _compute_intervals(blocks, order, position, block_range)
    by_node: Dict[int, Node] = {n.id: n for n in order}

    allocation = Allocation()
    sorted_ids = sorted(intervals, key=lambda node_id: intervals[node_id][0])
    active: List[Tuple[int, int]] = []  # (end, node_id), int file
    active_f: List[Tuple[int, int]] = []
    free_int = list(int_pool)
    free_float = list(float_pool)

    def expire(current_start: int) -> None:
        for active_list, free in ((active, free_int), (active_f, free_float)):
            index = 0
            while index < len(active_list):
                end, node_id = active_list[index]
                if end < current_start:
                    assignment = allocation.assignments[node_id]
                    free.append(assignment.index)
                    active_list.pop(index)
                else:
                    index += 1

    def new_slot() -> int:
        slot = allocation.slot_count
        allocation.slot_count += 1
        return slot

    for node_id in sorted_ids:
        start, end = intervals[node_id]
        expire(start)
        node = by_node[node_id]
        is_float = _is_float(node)
        free = free_float if is_float else free_int
        active_list = active_f if is_float else active
        if free:
            register = free.pop()
            allocation.assignments[node_id] = Assignment(
                "freg" if is_float else "reg", register
            )
            active_list.append((end, node_id))
            active_list.sort()
        else:
            # Spill the interval that ends last (current one included).
            active_list.sort()
            if active_list and active_list[-1][0] > end:
                victim_end, victim_id = active_list.pop()
                victim_assignment = allocation.assignments[victim_id]
                allocation.assignments[victim_id] = Assignment("slot", new_slot())
                allocation.assignments[node_id] = Assignment(
                    victim_assignment.kind, victim_assignment.index
                )
                active_list.append((end, node_id))
                active_list.sort()
            else:
                allocation.assignments[node_id] = Assignment("slot", new_slot())
    return allocation
