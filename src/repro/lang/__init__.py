"""Language front end: lexer, parser, AST."""

from . import ast_nodes
from .errors import JSRangeError, JSReferenceError, JSSyntaxError, JSTypeError
from .lexer import Lexer, Token, tokenize
from .parser import Parser, parse

__all__ = [
    "JSRangeError",
    "JSReferenceError",
    "JSSyntaxError",
    "JSTypeError",
    "Lexer",
    "Parser",
    "Token",
    "ast_nodes",
    "parse",
    "tokenize",
]
