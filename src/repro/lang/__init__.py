"""Language front end: lexer, parser, AST, pretty-printer."""

from . import ast_nodes
from .errors import JSRangeError, JSReferenceError, JSSyntaxError, JSTypeError
from .lexer import Lexer, Token, tokenize
from .parser import Parser, parse
from .unparse import unparse

__all__ = [
    "JSRangeError",
    "JSReferenceError",
    "JSSyntaxError",
    "JSTypeError",
    "Lexer",
    "Parser",
    "Token",
    "ast_nodes",
    "parse",
    "tokenize",
    "unparse",
]
