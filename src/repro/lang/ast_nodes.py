"""AST node definitions for the JavaScript subset.

Plain dataclasses; every node records its source line so that bytecode and
ultimately machine instructions can be traced back to source positions (the
profiler's annotated listings rely on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    line: int = field(default=0, compare=False)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class NumberLiteral(Node):
    value: float = 0.0
    is_integer: bool = False


@dataclass
class StringLiteral(Node):
    value: str = ""


@dataclass
class BooleanLiteral(Node):
    value: bool = False


@dataclass
class NullLiteral(Node):
    pass


@dataclass
class UndefinedLiteral(Node):
    pass


@dataclass
class Identifier(Node):
    name: str = ""


@dataclass
class ThisExpression(Node):
    pass


@dataclass
class ArrayLiteral(Node):
    elements: List[Node] = field(default_factory=list)


@dataclass
class ObjectLiteral(Node):
    # (key, value) pairs; keys are plain strings in the subset.
    properties: List[Tuple[str, Node]] = field(default_factory=list)


@dataclass
class FunctionExpression(Node):
    name: Optional[str] = None
    params: List[str] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)


@dataclass
class UnaryExpression(Node):
    operator: str = ""
    operand: Node = None  # type: ignore[assignment]


@dataclass
class UpdateExpression(Node):
    """++x / x++ / --x / x-- on identifiers, members, or elements."""

    operator: str = ""
    target: Node = None  # type: ignore[assignment]
    prefix: bool = True


@dataclass
class BinaryExpression(Node):
    operator: str = ""
    left: Node = None  # type: ignore[assignment]
    right: Node = None  # type: ignore[assignment]


@dataclass
class LogicalExpression(Node):
    operator: str = ""  # "&&" or "||"
    left: Node = None  # type: ignore[assignment]
    right: Node = None  # type: ignore[assignment]


@dataclass
class ConditionalExpression(Node):
    test: Node = None  # type: ignore[assignment]
    consequent: Node = None  # type: ignore[assignment]
    alternate: Node = None  # type: ignore[assignment]


@dataclass
class AssignmentExpression(Node):
    operator: str = "="  # "=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>=", ">>>="
    target: Node = None  # type: ignore[assignment]
    value: Node = None  # type: ignore[assignment]


@dataclass
class CallExpression(Node):
    callee: Node = None  # type: ignore[assignment]
    arguments: List[Node] = field(default_factory=list)


@dataclass
class NewExpression(Node):
    callee: Node = None  # type: ignore[assignment]
    arguments: List[Node] = field(default_factory=list)


@dataclass
class MemberExpression(Node):
    """obj.name (computed=False) or obj[expr] (computed=True)."""

    object: Node = None  # type: ignore[assignment]
    property: Node = None  # type: ignore[assignment]
    computed: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Program(Node):
    body: List[Node] = field(default_factory=list)


@dataclass
class VariableDeclaration(Node):
    kind: str = "var"  # var / let / const
    declarations: List[Tuple[str, Optional[Node]]] = field(default_factory=list)


@dataclass
class FunctionDeclaration(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)


@dataclass
class ExpressionStatement(Node):
    expression: Node = None  # type: ignore[assignment]


@dataclass
class BlockStatement(Node):
    body: List[Node] = field(default_factory=list)


@dataclass
class IfStatement(Node):
    test: Node = None  # type: ignore[assignment]
    consequent: Node = None  # type: ignore[assignment]
    alternate: Optional[Node] = None


@dataclass
class WhileStatement(Node):
    test: Node = None  # type: ignore[assignment]
    body: Node = None  # type: ignore[assignment]


@dataclass
class DoWhileStatement(Node):
    body: Node = None  # type: ignore[assignment]
    test: Node = None  # type: ignore[assignment]


@dataclass
class ForStatement(Node):
    init: Optional[Node] = None
    test: Optional[Node] = None
    update: Optional[Node] = None
    body: Node = None  # type: ignore[assignment]


@dataclass
class ReturnStatement(Node):
    argument: Optional[Node] = None


@dataclass
class BreakStatement(Node):
    pass


@dataclass
class ContinueStatement(Node):
    pass


@dataclass
class EmptyStatement(Node):
    pass
