"""Errors raised by the language front end and the runtime."""

from __future__ import annotations


class JSSyntaxError(Exception):
    """Raised by the lexer/parser on malformed source."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class JSTypeError(Exception):
    """Raised by the runtime on operations the subset does not define."""


class JSReferenceError(Exception):
    """Raised when an undeclared identifier is referenced."""


class JSRangeError(Exception):
    """Raised on out-of-range runtime operations (e.g. bad array length)."""
