"""Hand-written lexer for the JavaScript subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .errors import JSSyntaxError

KEYWORDS = {
    "var",
    "let",
    "const",
    "function",
    "return",
    "if",
    "else",
    "while",
    "do",
    "for",
    "break",
    "continue",
    "true",
    "false",
    "null",
    "undefined",
    "new",
    "this",
    "typeof",
}

# Longest-match-first list of punctuators.
PUNCTUATORS = [
    ">>>=",
    "===",
    "!==",
    ">>>",
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "!",
    "~",
    "?",
    ":",
    "=",
    ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "string" | "identifier" | "keyword" | "punct" | "eof"
    value: str
    line: int
    column: int
    number_value: float = 0.0
    is_integer: bool = False


_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "'": "'",
    '"': '"',
    "\\": "\\",
    "/": "/",
}


class Lexer:
    """Tokenizes a source string in a single forward pass."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind == "eof":
                return tokens

    # ------------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise JSSyntaxError("unterminated block comment", self.line, self.column)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token("eof", "", line, column)
        char = self._peek()
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if char.isalpha() or char in ("_", "$"):
            return self._lex_identifier(line, column)
        if char in "'\"":
            return self._lex_string(line, column)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token("punct", punct, line, column)
        raise JSSyntaxError(f"unexpected character {char!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_integer = True
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start : self.pos]
            return Token("number", text, line, column, float(int(text, 16)), True)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            is_integer = False
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() and self._peek() in "eE":
            is_integer = False
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            if not self._peek().isdigit():
                raise JSSyntaxError("malformed exponent", self.line, self.column)
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        value = float(text)
        return Token("number", text, line, column, value, is_integer)

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() in ("_", "$")):
            self._advance()
        text = self.source[start : self.pos]
        kind = "keyword" if text in KEYWORDS else "identifier"
        return Token(kind, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        quote = self._peek()
        self._advance()
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise JSSyntaxError("unterminated string literal", line, column)
            char = self._peek()
            if char == quote:
                self._advance()
                return Token("string", "".join(chars), line, column)
            if char == "\\":
                self._advance()
                escape = self._peek()
                if escape == "u":
                    self._advance()
                    hex_digits = self.source[self.pos : self.pos + 4]
                    if len(hex_digits) != 4:
                        raise JSSyntaxError("bad unicode escape", self.line, self.column)
                    chars.append(chr(int(hex_digits, 16)))
                    self._advance(4)
                elif escape == "x":
                    self._advance()
                    hex_digits = self.source[self.pos : self.pos + 2]
                    chars.append(chr(int(hex_digits, 16)))
                    self._advance(2)
                elif escape in _ESCAPES:
                    chars.append(_ESCAPES[escape])
                    self._advance()
                else:
                    chars.append(escape)
                    self._advance()
            elif char == "\n":
                raise JSSyntaxError("newline in string literal", self.line, self.column)
            else:
                chars.append(char)
                self._advance()


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list."""
    return Lexer(source).tokenize()
