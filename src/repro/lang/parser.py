"""Recursive-descent parser for the JavaScript subset.

Expression parsing uses precedence climbing; the precedence table mirrors
ECMAScript's operator precedence for the operators in the subset.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast_nodes as ast
from .errors import JSSyntaxError
from .lexer import Token, tokenize

# operator -> (precedence, right_associative)
_BINARY_PRECEDENCE = {
    "||": (1, False),
    "&&": (2, False),
    "|": (3, False),
    "^": (4, False),
    "&": (5, False),
    "==": (6, False),
    "!=": (6, False),
    "===": (6, False),
    "!==": (6, False),
    "<": (7, False),
    ">": (7, False),
    "<=": (7, False),
    ">=": (7, False),
    "<<": (8, False),
    ">>": (8, False),
    ">>>": (8, False),
    "+": (9, False),
    "-": (9, False),
    "*": (10, False),
    "/": (10, False),
    "%": (10, False),
}

_ASSIGNMENT_OPS = {
    "=",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<=",
    ">>=",
    ">>>=",
}


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        return token.kind == kind and (value is None or token.value == value)

    def _match(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            wanted = value or kind
            raise JSSyntaxError(
                f"expected {wanted!r} but found {token.value!r}", token.line, token.column
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Program / statements
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        body: List[ast.Node] = []
        first = self._peek()
        while not self._check("eof"):
            body.append(self.parse_statement())
        return ast.Program(line=first.line, body=body)

    def parse_statement(self) -> ast.Node:
        token = self._peek()
        if token.kind == "keyword":
            handler = {
                "var": self._parse_variable_declaration,
                "let": self._parse_variable_declaration,
                "const": self._parse_variable_declaration,
                "function": self._parse_function_declaration,
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do_while,
                "for": self._parse_for,
                "return": self._parse_return,
                "break": self._parse_break,
                "continue": self._parse_continue,
            }.get(token.value)
            if handler is not None:
                return handler()
        if self._check("punct", "{"):
            return self._parse_block()
        if self._match("punct", ";"):
            return ast.EmptyStatement(line=token.line)
        expression = self.parse_expression()
        self._match("punct", ";")
        return ast.ExpressionStatement(line=token.line, expression=expression)

    def _parse_block(self) -> ast.BlockStatement:
        start = self._expect("punct", "{")
        body: List[ast.Node] = []
        while not self._check("punct", "}") and not self._check("eof"):
            body.append(self.parse_statement())
        self._expect("punct", "}")
        return ast.BlockStatement(line=start.line, body=body)

    def _parse_variable_declaration(self, consume_semicolon: bool = True) -> ast.VariableDeclaration:
        kind_token = self._advance()
        declarations: List[Tuple[str, Optional[ast.Node]]] = []
        while True:
            name = self._expect("identifier").value
            init: Optional[ast.Node] = None
            if self._match("punct", "="):
                init = self.parse_assignment()
            declarations.append((name, init))
            if not self._match("punct", ","):
                break
        if consume_semicolon:
            self._match("punct", ";")
        return ast.VariableDeclaration(
            line=kind_token.line, kind=kind_token.value, declarations=declarations
        )

    def _parse_function_declaration(self) -> ast.FunctionDeclaration:
        start = self._expect("keyword", "function")
        name = self._expect("identifier").value
        params = self._parse_params()
        body = self._parse_block().body
        return ast.FunctionDeclaration(line=start.line, name=name, params=params, body=body)

    def _parse_params(self) -> List[str]:
        self._expect("punct", "(")
        params: List[str] = []
        if not self._check("punct", ")"):
            while True:
                params.append(self._expect("identifier").value)
                if not self._match("punct", ","):
                    break
        self._expect("punct", ")")
        return params

    def _parse_if(self) -> ast.IfStatement:
        start = self._expect("keyword", "if")
        self._expect("punct", "(")
        test = self.parse_expression()
        self._expect("punct", ")")
        consequent = self.parse_statement()
        alternate: Optional[ast.Node] = None
        if self._match("keyword", "else"):
            alternate = self.parse_statement()
        return ast.IfStatement(
            line=start.line, test=test, consequent=consequent, alternate=alternate
        )

    def _parse_while(self) -> ast.WhileStatement:
        start = self._expect("keyword", "while")
        self._expect("punct", "(")
        test = self.parse_expression()
        self._expect("punct", ")")
        body = self.parse_statement()
        return ast.WhileStatement(line=start.line, test=test, body=body)

    def _parse_do_while(self) -> ast.DoWhileStatement:
        start = self._expect("keyword", "do")
        body = self.parse_statement()
        self._expect("keyword", "while")
        self._expect("punct", "(")
        test = self.parse_expression()
        self._expect("punct", ")")
        self._match("punct", ";")
        return ast.DoWhileStatement(line=start.line, body=body, test=test)

    def _parse_for(self) -> ast.ForStatement:
        start = self._expect("keyword", "for")
        self._expect("punct", "(")
        init: Optional[ast.Node] = None
        if not self._check("punct", ";"):
            if self._peek().kind == "keyword" and self._peek().value in ("var", "let", "const"):
                init = self._parse_variable_declaration(consume_semicolon=False)
            else:
                init = ast.ExpressionStatement(
                    line=self._peek().line, expression=self.parse_expression()
                )
        self._expect("punct", ";")
        test = None if self._check("punct", ";") else self.parse_expression()
        self._expect("punct", ";")
        update = None if self._check("punct", ")") else self.parse_expression()
        self._expect("punct", ")")
        body = self.parse_statement()
        return ast.ForStatement(
            line=start.line, init=init, test=test, update=update, body=body
        )

    def _parse_return(self) -> ast.ReturnStatement:
        start = self._expect("keyword", "return")
        argument: Optional[ast.Node] = None
        if not self._check("punct", ";") and not self._check("punct", "}") and not self._check("eof"):
            argument = self.parse_expression()
        self._match("punct", ";")
        return ast.ReturnStatement(line=start.line, argument=argument)

    def _parse_break(self) -> ast.BreakStatement:
        start = self._expect("keyword", "break")
        self._match("punct", ";")
        return ast.BreakStatement(line=start.line)

    def _parse_continue(self) -> ast.ContinueStatement:
        start = self._expect("keyword", "continue")
        self._match("punct", ";")
        return ast.ContinueStatement(line=start.line)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> ast.Node:
        expression = self.parse_assignment()
        # The comma operator is rare but cheap to support (e.g. for-updates).
        while self._check("punct", ",") and self._is_comma_expression_context():
            self._advance()
            right = self.parse_assignment()
            expression = ast.BinaryExpression(
                line=expression.line, operator=",", left=expression, right=right
            )
        return expression

    def _is_comma_expression_context(self) -> bool:
        # Commas inside argument lists / literals are handled by their own
        # parsers, which call parse_assignment directly; reaching here means
        # a genuine comma operator.
        return True

    def parse_assignment(self) -> ast.Node:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind == "punct" and token.value in _ASSIGNMENT_OPS:
            if not isinstance(left, (ast.Identifier, ast.MemberExpression)):
                raise JSSyntaxError("invalid assignment target", token.line, token.column)
            self._advance()
            value = self.parse_assignment()
            return ast.AssignmentExpression(
                line=token.line, operator=token.value, target=left, value=value
            )
        return left

    def _parse_conditional(self) -> ast.Node:
        test = self._parse_binary(0)
        if self._match("punct", "?"):
            consequent = self.parse_assignment()
            self._expect("punct", ":")
            alternate = self.parse_assignment()
            return ast.ConditionalExpression(
                line=test.line, test=test, consequent=consequent, alternate=alternate
            )
        return test

    def _parse_binary(self, min_precedence: int) -> ast.Node:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind != "punct":
                return left
            info = _BINARY_PRECEDENCE.get(token.value)
            if info is None or info[0] < min_precedence:
                return left
            precedence, right_assoc = info
            self._advance()
            right = self._parse_binary(precedence if right_assoc else precedence + 1)
            if token.value in ("&&", "||"):
                left = ast.LogicalExpression(
                    line=token.line, operator=token.value, left=left, right=right
                )
            else:
                left = ast.BinaryExpression(
                    line=token.line, operator=token.value, left=left, right=right
                )

    def _parse_unary(self) -> ast.Node:
        token = self._peek()
        if token.kind == "punct" and token.value in ("-", "+", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryExpression(line=token.line, operator=token.value, operand=operand)
        if token.kind == "keyword" and token.value == "typeof":
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryExpression(line=token.line, operator="typeof", operand=operand)
        if token.kind == "punct" and token.value in ("++", "--"):
            self._advance()
            target = self._parse_unary()
            if not isinstance(target, (ast.Identifier, ast.MemberExpression)):
                raise JSSyntaxError("invalid increment target", token.line, token.column)
            return ast.UpdateExpression(
                line=token.line, operator=token.value, target=target, prefix=True
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Node:
        expression = self._parse_call_member()
        token = self._peek()
        if token.kind == "punct" and token.value in ("++", "--"):
            if not isinstance(expression, (ast.Identifier, ast.MemberExpression)):
                raise JSSyntaxError("invalid increment target", token.line, token.column)
            self._advance()
            return ast.UpdateExpression(
                line=token.line, operator=token.value, target=expression, prefix=False
            )
        return expression

    def _parse_call_member(self) -> ast.Node:
        if self._check("keyword", "new"):
            start = self._advance()
            callee = self._parse_call_member_tail(self._parse_primary(), allow_call=False)
            arguments: List[ast.Node] = []
            if self._check("punct", "("):
                arguments = self._parse_arguments()
            expression: ast.Node = ast.NewExpression(
                line=start.line, callee=callee, arguments=arguments
            )
            return self._parse_call_member_tail(expression, allow_call=True)
        return self._parse_call_member_tail(self._parse_primary(), allow_call=True)

    def _parse_call_member_tail(self, expression: ast.Node, allow_call: bool) -> ast.Node:
        while True:
            if self._check("punct", "."):
                dot = self._advance()
                name_token = self._peek()
                if name_token.kind not in ("identifier", "keyword"):
                    raise JSSyntaxError(
                        "expected property name", name_token.line, name_token.column
                    )
                self._advance()
                expression = ast.MemberExpression(
                    line=dot.line,
                    object=expression,
                    property=ast.Identifier(line=name_token.line, name=name_token.value),
                    computed=False,
                )
            elif self._check("punct", "["):
                bracket = self._advance()
                index = self.parse_expression()
                self._expect("punct", "]")
                expression = ast.MemberExpression(
                    line=bracket.line, object=expression, property=index, computed=True
                )
            elif allow_call and self._check("punct", "("):
                paren = self._peek()
                arguments = self._parse_arguments()
                expression = ast.CallExpression(
                    line=paren.line, callee=expression, arguments=arguments
                )
            else:
                return expression

    def _parse_arguments(self) -> List[ast.Node]:
        self._expect("punct", "(")
        arguments: List[ast.Node] = []
        if not self._check("punct", ")"):
            while True:
                arguments.append(self.parse_assignment())
                if not self._match("punct", ","):
                    break
        self._expect("punct", ")")
        return arguments

    def _parse_primary(self) -> ast.Node:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return ast.NumberLiteral(
                line=token.line, value=token.number_value, is_integer=token.is_integer
            )
        if token.kind == "string":
            self._advance()
            return ast.StringLiteral(line=token.line, value=token.value)
        if token.kind == "identifier":
            self._advance()
            return ast.Identifier(line=token.line, name=token.value)
        if token.kind == "keyword":
            if token.value in ("true", "false"):
                self._advance()
                return ast.BooleanLiteral(line=token.line, value=token.value == "true")
            if token.value == "null":
                self._advance()
                return ast.NullLiteral(line=token.line)
            if token.value == "undefined":
                self._advance()
                return ast.UndefinedLiteral(line=token.line)
            if token.value == "this":
                self._advance()
                return ast.ThisExpression(line=token.line)
            if token.value == "function":
                return self._parse_function_expression()
        if self._check("punct", "("):
            self._advance()
            expression = self.parse_expression()
            self._expect("punct", ")")
            return expression
        if self._check("punct", "["):
            return self._parse_array_literal()
        if self._check("punct", "{"):
            return self._parse_object_literal()
        raise JSSyntaxError(f"unexpected token {token.value!r}", token.line, token.column)

    def _parse_function_expression(self) -> ast.FunctionExpression:
        start = self._expect("keyword", "function")
        name: Optional[str] = None
        if self._peek().kind == "identifier":
            name = self._advance().value
        params = self._parse_params()
        body = self._parse_block().body
        return ast.FunctionExpression(line=start.line, name=name, params=params, body=body)

    def _parse_array_literal(self) -> ast.ArrayLiteral:
        start = self._expect("punct", "[")
        elements: List[ast.Node] = []
        if not self._check("punct", "]"):
            while True:
                elements.append(self.parse_assignment())
                if not self._match("punct", ","):
                    break
        self._expect("punct", "]")
        return ast.ArrayLiteral(line=start.line, elements=elements)

    def _parse_object_literal(self) -> ast.ObjectLiteral:
        start = self._expect("punct", "{")
        properties: List[Tuple[str, ast.Node]] = []
        if not self._check("punct", "}"):
            while True:
                key_token = self._peek()
                if key_token.kind in ("identifier", "keyword", "string"):
                    key = key_token.value
                    self._advance()
                elif key_token.kind == "number":
                    key = (
                        str(int(key_token.number_value))
                        if key_token.is_integer
                        else str(key_token.number_value)
                    )
                    self._advance()
                else:
                    raise JSSyntaxError(
                        "expected property key", key_token.line, key_token.column
                    )
                self._expect("punct", ":")
                value = self.parse_assignment()
                properties.append((key, value))
                if not self._match("punct", ","):
                    break
        self._expect("punct", "}")
        return ast.ObjectLiteral(line=start.line, properties=properties)


def parse(source: str) -> ast.Program:
    """Parse ``source`` into a :class:`repro.lang.ast_nodes.Program`."""
    return Parser(tokenize(source)).parse_program()
