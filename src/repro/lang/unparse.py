"""AST → source pretty-printer for the JavaScript subset.

The inverse of :func:`repro.lang.parser.parse`: ``unparse(parse(src))``
produces canonical source whose re-parse is structurally equal to the
original AST (``line`` fields are excluded from node equality, so the
dataclass ``==`` is exactly "same program shape").  The printer is the
storage format of the fuzzing corpus (``repro.fuzz``) and the substrate
of the AST-level crash-bundle minimizer, which both rely on the
**fixed-point property**: for any program ``p``,

    unparse(parse(unparse(parse(p)))) == unparse(parse(p))

i.e. one round of parse→unparse reaches canonical form and further
rounds are the identity.  Property-tested over all 31 suite programs in
``tests/lang/test_unparse.py``.

One deliberate structural exception: a consequent whose rightmost
statement chain ends in an ``if`` without an ``else`` is wrapped in a
block when the outer ``if`` carries an ``else`` (the dangling-else
hazard).  The wrap inserts a :class:`~repro.lang.ast_nodes.BlockStatement`
on re-parse, which is the only way to print such an AST without the
``else`` re-binding to the inner ``if``; the generator and minimizer
always emit braced bodies, so in practice the round-trip is exact.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .lexer import KEYWORDS

# Expression precedence levels, mirroring the parser's grammar shape:
# parse_expression (comma) < parse_assignment < conditional < the binary
# table < unary < postfix-update < call/member < primary.
_COMMA = 0
_ASSIGN = 1
_COND = 2
_BINARY_BASE = 2  # binary levels are parser precedence (1..10) + this
_UNARY = 13
_POSTFIX = 14
_CALL = 15
_PRIMARY = 17

#: parser precedence table, re-stated here (operator -> level)
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_STRING_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
    "\b": "\\b",
    "\f": "\\f",
    "\v": "\\v",
    "\0": "\\0",
}

_INDENT = "  "


def _escape_string(value: str) -> str:
    out: List[str] = ['"']
    for char in value:
        if char in _STRING_ESCAPES:
            out.append(_STRING_ESCAPES[char])
        elif ord(char) < 0x20 or ord(char) > 0xFFFF:
            out.append(f"\\u{ord(char) & 0xFFFF:04x}")
        elif ord(char) >= 0x7F:
            out.append(f"\\u{ord(char):04x}")
        else:
            out.append(char)
    out.append('"')
    return "".join(out)


def _number(node: ast.NumberLiteral) -> str:
    if node.is_integer:
        return str(int(node.value))
    text = repr(float(node.value))
    return text


def _is_identifier(text: str) -> bool:
    if not text or text in KEYWORDS:
        return False
    head = text[0]
    if not (head.isalpha() or head in "_$"):
        return False
    return all(char.isalnum() or char in "_$" for char in text[1:])


def _object_key(key: str) -> str:
    # The parser accepts identifier, keyword, string and number tokens as
    # keys, normalizing each to a plain string; print the cheapest form
    # that re-lexes to the same key string.
    if _is_identifier(key) or key in KEYWORDS:
        return key
    if key.isdigit():
        return key
    return _escape_string(key)


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append(_INDENT * self.depth + text)

    def program(self, node: ast.Program) -> str:
        for statement in node.body:
            self.statement(statement)
        return "\n".join(self.lines) + ("\n" if self.lines else "")

    def statement(self, node: ast.Node) -> None:
        if isinstance(node, ast.VariableDeclaration):
            self.emit(self._variable_declaration(node) + ";")
        elif isinstance(node, ast.FunctionDeclaration):
            self._function(node.name, node.params, node.body, declaration=True)
        elif isinstance(node, ast.ExpressionStatement):
            text = self.expression(node.expression, _COMMA)
            if self._needs_statement_parens(node.expression):
                text = f"({text})"
            self.emit(text + ";")
        elif isinstance(node, ast.BlockStatement):
            self.emit("{")
            self.depth += 1
            for child in node.body:
                self.statement(child)
            self.depth -= 1
            self.emit("}")
        elif isinstance(node, ast.IfStatement):
            self._if(node)
        elif isinstance(node, ast.WhileStatement):
            self._suite(f"while ({self.expression(node.test, _COMMA)})", node.body)
        elif isinstance(node, ast.DoWhileStatement):
            self._do_while(node)
        elif isinstance(node, ast.ForStatement):
            self._for(node)
        elif isinstance(node, ast.ReturnStatement):
            if node.argument is None:
                self.emit("return;")
            else:
                self.emit(f"return {self.expression(node.argument, _COMMA)};")
        elif isinstance(node, ast.BreakStatement):
            self.emit("break;")
        elif isinstance(node, ast.ContinueStatement):
            self.emit("continue;")
        elif isinstance(node, ast.EmptyStatement):
            self.emit(";")
        else:
            raise TypeError(f"cannot unparse statement {type(node).__name__}")

    def _variable_declaration(self, node: ast.VariableDeclaration) -> str:
        parts = []
        for name, init in node.declarations:
            if init is None:
                parts.append(name)
            else:
                parts.append(f"{name} = {self.expression(init, _ASSIGN)}")
        return f"{node.kind} " + ", ".join(parts)

    def _function(
        self, name: Optional[str], params: List[str], body: List[ast.Node],
        declaration: bool,
    ) -> None:
        keyword = f"function {name}" if name else "function"
        self.emit(f"{keyword}({', '.join(params)}) {{")
        self.depth += 1
        for child in body:
            self.statement(child)
        self.depth -= 1
        self.emit("}")

    def _suite(self, head: str, body: ast.Node) -> None:
        """A statement head followed by its (possibly non-block) body."""
        if isinstance(body, ast.BlockStatement):
            self.emit(head + " {")
            self.depth += 1
            for child in body.body:
                self.statement(child)
            self.depth -= 1
            self.emit("}")
        else:
            self.emit(head)
            self.depth += 1
            self.statement(body)
            self.depth -= 1

    def _if(self, node: ast.IfStatement) -> None:
        head = f"if ({self.expression(node.test, _COMMA)})"
        consequent = node.consequent
        if node.alternate is not None and _ends_with_open_if(consequent):
            # Dangling-else hazard: printed bare, the `else` would bind to
            # the consequent's trailing open `if`.  Bracing is the only
            # faithful rendering (see module docstring).
            consequent = ast.BlockStatement(line=consequent.line, body=[consequent])
        self._suite(head, consequent)
        if node.alternate is None:
            return
        closing = self.lines.pop()
        if isinstance(consequent, ast.BlockStatement) and closing.strip() == "}":
            # canonical `} else ...` on the consequent's closing line
            prefix = closing + " else"
        else:
            self.lines.append(closing)
            prefix = _INDENT * self.depth + "else"
        if isinstance(node.alternate, ast.IfStatement):
            # else-if chain: splice onto the first line of the nested if
            mark = len(self.lines)
            self._if(node.alternate)
            self.lines[mark] = prefix + " " + self.lines[mark].strip()
            return
        self._suite_tail(prefix, node.alternate)

    def _suite_tail(self, head: str, body: ast.Node) -> None:
        if isinstance(body, ast.BlockStatement):
            self.lines.append(head + " {")
            self.depth += 1
            for child in body.body:
                self.statement(child)
            self.depth -= 1
            self.emit("}")
        else:
            self.lines.append(head)
            self.depth += 1
            self.statement(body)
            self.depth -= 1

    def _do_while(self, node: ast.DoWhileStatement) -> None:
        self._suite("do", node.body)
        closing = self.lines.pop()
        test = self.expression(node.test, _COMMA)
        if closing.strip() == "}":
            self.lines.append(f"{closing} while ({test});")
        else:
            self.lines.append(closing)
            self.emit(f"while ({test});")

    def _for(self, node: ast.ForStatement) -> None:
        if node.init is None:
            init = ""
        elif isinstance(node.init, ast.VariableDeclaration):
            init = self._variable_declaration(node.init)
        elif isinstance(node.init, ast.ExpressionStatement):
            init = self.expression(node.init.expression, _COMMA)
        else:
            init = self.expression(node.init, _COMMA)
        test = "" if node.test is None else self.expression(node.test, _COMMA)
        update = "" if node.update is None else self.expression(node.update, _COMMA)
        self._suite(f"for ({init}; {test}; {update})", node.body)

    def _needs_statement_parens(self, node: ast.Node) -> bool:
        # An expression statement whose leftmost token would be `function`
        # or `{` re-parses as a declaration / block; parenthesize.
        while True:
            if isinstance(node, (ast.FunctionExpression, ast.ObjectLiteral)):
                return True
            if isinstance(node, (ast.BinaryExpression, ast.LogicalExpression)):
                node = node.left
            elif isinstance(node, ast.ConditionalExpression):
                node = node.test
            elif isinstance(node, ast.AssignmentExpression):
                node = node.target
            elif isinstance(node, ast.MemberExpression):
                node = node.object
            elif isinstance(node, ast.CallExpression):
                node = node.callee
            elif isinstance(node, ast.UpdateExpression) and not node.prefix:
                node = node.target
            else:
                return False

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def expression(self, node: ast.Node, parent: int) -> str:
        text, prec = self._expr(node)
        if prec < parent:
            return f"({text})"
        return text

    def _expr(self, node: ast.Node):
        if isinstance(node, ast.NumberLiteral):
            return _number(node), _PRIMARY
        if isinstance(node, ast.StringLiteral):
            return _escape_string(node.value), _PRIMARY
        if isinstance(node, ast.BooleanLiteral):
            return ("true" if node.value else "false"), _PRIMARY
        if isinstance(node, ast.NullLiteral):
            return "null", _PRIMARY
        if isinstance(node, ast.UndefinedLiteral):
            return "undefined", _PRIMARY
        if isinstance(node, ast.Identifier):
            return node.name, _PRIMARY
        if isinstance(node, ast.ThisExpression):
            return "this", _PRIMARY
        if isinstance(node, ast.ArrayLiteral):
            elements = ", ".join(
                self.expression(element, _ASSIGN) for element in node.elements
            )
            return f"[{elements}]", _PRIMARY
        if isinstance(node, ast.ObjectLiteral):
            if not node.properties:
                return "{}", _PRIMARY
            properties = ", ".join(
                f"{_object_key(key)}: {self.expression(value, _ASSIGN)}"
                for key, value in node.properties
            )
            return f"{{{properties}}}", _PRIMARY
        if isinstance(node, ast.FunctionExpression):
            return self._inline_function(node), _PRIMARY
        if isinstance(node, ast.BinaryExpression):
            if node.operator == ",":
                left = self.expression(node.left, _COMMA)
                right = self.expression(node.right, _ASSIGN)
                return f"{left}, {right}", _COMMA
            prec = _BINARY_PRECEDENCE[node.operator] + _BINARY_BASE
            left = self.expression(node.left, prec)
            right = self.expression(node.right, prec + 1)
            return f"{left} {node.operator} {right}", prec
        if isinstance(node, ast.LogicalExpression):
            prec = _BINARY_PRECEDENCE[node.operator] + _BINARY_BASE
            left = self.expression(node.left, prec)
            right = self.expression(node.right, prec + 1)
            return f"{left} {node.operator} {right}", prec
        if isinstance(node, ast.ConditionalExpression):
            test = self.expression(node.test, _COND + 1)
            consequent = self.expression(node.consequent, _ASSIGN)
            alternate = self.expression(node.alternate, _ASSIGN)
            return f"{test} ? {consequent} : {alternate}", _COND
        if isinstance(node, ast.AssignmentExpression):
            target = self.expression(node.target, _CALL)
            value = self.expression(node.value, _ASSIGN)
            return f"{target} {node.operator} {value}", _ASSIGN
        if isinstance(node, ast.UnaryExpression):
            operand = self.expression(node.operand, _UNARY)
            if node.operator == "typeof":
                return f"typeof {operand}", _UNARY
            if node.operator in ("-", "+") and operand[:1] == node.operator:
                # `- -x`, not `--x` (which would lex as a decrement)
                return f"{node.operator} {operand}", _UNARY
            return f"{node.operator}{operand}", _UNARY
        if isinstance(node, ast.UpdateExpression):
            target = self.expression(node.target, _CALL)
            if node.prefix:
                return f"{node.operator}{target}", _UNARY
            return f"{target}{node.operator}", _POSTFIX
        if isinstance(node, ast.CallExpression):
            callee = self.expression(node.callee, _CALL)
            arguments = ", ".join(
                self.expression(argument, _ASSIGN) for argument in node.arguments
            )
            return f"{callee}({arguments})", _CALL
        if isinstance(node, ast.NewExpression):
            callee, callee_prec = self._expr(node.callee)
            # `new` callees parse without call tails; a call (or lower
            # precedence) callee must be parenthesized.
            if callee_prec < _PRIMARY or isinstance(node.callee, ast.CallExpression):
                callee = f"({callee})"
            arguments = ", ".join(
                self.expression(argument, _ASSIGN) for argument in node.arguments
            )
            return f"new {callee}({arguments})", _CALL
        if isinstance(node, ast.MemberExpression):
            target = self.expression(node.object, _CALL)
            if isinstance(node.object, ast.NumberLiteral):
                target = f"({target})"
            if node.computed:
                index = self.expression(node.property, _COMMA)
                return f"{target}[{index}]", _CALL
            assert isinstance(node.property, ast.Identifier)
            return f"{target}.{node.property.name}", _CALL
        raise TypeError(f"cannot unparse expression {type(node).__name__}")

    def _inline_function(self, node: ast.FunctionExpression) -> str:
        nested = _Printer()
        nested.depth = self.depth
        nested._function(node.name, node.params, node.body, declaration=False)
        first = nested.lines[0].strip()
        rest = nested.lines[1:]
        if not rest:
            return first
        body = "\n".join(rest)
        return first + "\n" + body


def _ends_with_open_if(node: ast.Node) -> bool:
    """Does this statement's rightmost chain end in an else-less ``if``?"""
    while True:
        if isinstance(node, ast.IfStatement):
            if node.alternate is None:
                return True
            node = node.alternate
        elif isinstance(node, (ast.WhileStatement, ast.ForStatement)):
            node = node.body
        else:
            return False


def unparse(node: ast.Node) -> str:
    """Render an AST back to canonical JS-subset source."""
    printer = _Printer()
    if isinstance(node, ast.Program):
        return printer.program(node)
    if isinstance(
        node,
        (
            ast.VariableDeclaration, ast.FunctionDeclaration,
            ast.ExpressionStatement, ast.BlockStatement, ast.IfStatement,
            ast.WhileStatement, ast.DoWhileStatement, ast.ForStatement,
            ast.ReturnStatement, ast.BreakStatement, ast.ContinueStatement,
            ast.EmptyStatement,
        ),
    ):
        printer.statement(node)
        return "\n".join(printer.lines) + "\n"
    return printer.expression(node, _COMMA)
