"""Functional machine simulator for the modelled ISAs."""

from .executor import BranchPredictor, CostModel, ExecStats, Executor, MachineError

__all__ = ["BranchPredictor", "CostModel", "ExecStats", "Executor", "MachineError"]
