"""Block-compiled executor: superinstruction fusion for the step loop.

PR 2's decode-once dispatch removed the per-retire enum/attribute traffic
but still pays, for every instruction, a tuple unpack, a dispatch-chain
walk, a cycle add and a sampler poll.  This module takes the next rung on
the ladder real engines climb to escape interpreter dispatch — in the
spirit of lazy basic-block versioning (Chevalier-Boisvert & Feeley, VEE
2015): it partitions each code object's decoded instruction stream into
basic blocks and translates every block into one fused Python closure (a
*superinstruction*) that

* executes the whole straight-line body against the register file / heap
  with operands and immediates inlined as literals (no dispatch, no
  decoded-tuple traffic),
* charges the block's precomputed base cycle cost in a single add
  (the same left-folded float the step loop reaches via its per-pc
  ``entry + prefix`` accounting, so totals are bit-identical),
* applies branch-predictor updates, taken/mispredict penalties and flag
  effects at block exit, and
* returns the next block id.

Fidelity discipline follows Deoptless (Flückiger et al., 2022): the fast
path may *bail out*, never diverge.  Each block therefore also compiles a
**stepped twin** — same generated statements, plus the step loop's per-pc
cycle/sampler prologue — and the driver in
:meth:`repro.machine.executor.Executor._run_blocks` routes a block
through its twin whenever per-instruction fidelity is required:

* a PC-sampling tick lands inside the block's cycle window (proved via
  the window API in :mod:`repro.profiling.sampler`), or
* an injected deopt trip is pending
  (:attr:`Executor.forced_deopt_trips`), so the trip lands on the exact
  deopt branch the step loop would have tripped.

Instruction tracing for the pipeline models disables block mode entirely
(the step loop is the only tier that materializes traces).

Partition rules (:func:`repro.isa.semantics.fused_block_leaders`): block
leaders are the entry pc, every branch target, and the fall-through after
every branch, call, ``RET``/``DEOPT`` and ``JSLDRSMI`` commit point.
Calls end blocks because they flush/reload the cycle clock; ``jsldrsmi``
ends its block because its commit-time bailout must observe cycles exact
to its own pc.  Consequently every raise point is a block's *last*
instruction, which is what makes block-batched statistics exact.  The
machine-code linter (:mod:`repro.analysis.mclint`) independently verifies
this partition against the label/branch structure of the code.

Tables are cached on ``CodeObject._blocks`` next to ``_decoded``; code
objects are immutable so the cache is never invalidated, but it is
rebuilt if a different executor runs the code (closures bind executor
state).  ``REPRO_BLOCKJIT=0`` or ``EngineConfig(blockjit=False)`` falls
back to the step loop, which remains the timing/sampling reference.
"""

from __future__ import annotations

import operator
import os
from math import copysign, inf, isinf, isnan
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..isa.base import CC, REG_PC, REG_RE
from ..isa.semantics import fused_block_leaders
from ..jit.codegen import THIS_REG
from ..jit.deopt import DeoptSignal
from .dispatch import (
    K_ADDS,
    K_ADDSI,
    K_ALU_RI,
    K_ALU_RR,
    K_ASRI,
    K_B,
    K_BCC,
    K_CALL_DYN,
    K_CALL_JS,
    K_CALL_RT,
    K_CMP,
    K_CMP_MEM,
    K_CMPI,
    K_CMPI_MEM,
    K_CSET,
    K_DEOPT,
    K_FALU_R,
    K_FALU_RR,
    K_FCMP,
    K_FCVTZS,
    K_FDIV,
    K_FMOVI,
    K_FMOVR,
    K_JSLDRSMI,
    K_LDR,
    K_LDR_FRAME,
    K_LDR_IDX,
    K_LDRF,
    K_LDRF_FRAME,
    K_LSLI,
    K_MOVI,
    K_MOVR,
    K_MSR,
    K_MULS,
    K_MZCMP,
    K_NEGS,
    K_RET,
    K_SCVTF,
    K_STR,
    K_STR_FRAME,
    K_STRF,
    K_STRF_FRAME,
    K_SUBS,
    K_SUBSI,
    K_TST,
    K_TSTI,
    K_TSTI_MEM,
    _asr,
    _lsl,
    _lsr,
    _lsri,
    _sdiv,
    decode,
)

if TYPE_CHECKING:
    from ..jit.codegen import CodeObject
    from .executor import Executor

_UINT32 = 4294967295

#: process-wide source -> compiled module cache.  The generated source
#: embeds every literal (operands, costs, smi bounds, predictor mask), so
#: identical source means identical bytecode; re-running a benchmark in
#: the same process (grid reps, cold-vs-warm cache measurements) skips
#: ``compile()`` entirely and only pays the per-executor ``exec``.
_COMPILED_SOURCES: Dict[str, object] = {}


def default_blockjit() -> bool:
    """Process-wide default for block-compiled execution (REPRO_BLOCKJIT)."""
    return os.environ.get("REPRO_BLOCKJIT", "1").lower() not in (
        "0", "false", "off", "no",
    )


def default_typed_blocks() -> bool:
    """Process-wide default for typed block variants (REPRO_TYPED_BLOCKS).

    Typed variants drop statically-proven checks
    (:mod:`repro.analysis.typeflow`) behind hoisted entry guards; they
    are bit-identical to the generic tier by construction, so they
    default on wherever block mode itself is on.
    """
    return os.environ.get("REPRO_TYPED_BLOCKS", "1").lower() not in (
        "0", "false", "off", "no",
    )


def block_spans(instrs) -> List[Tuple[int, int]]:
    """The fused-block partition as ``[start, end)`` pc spans, in order."""
    leaders = sorted(fused_block_leaders(tuple(instrs)))
    count = len(instrs)
    return [
        (start, leaders[i + 1] if i + 1 < len(leaders) else count)
        for i, start in enumerate(leaders)
    ]


class Block:
    """One compiled basic block: fused + stepped closures and static
    per-execution statistics (charged block-at-a-time by a generated
    prologue inside each closure)."""

    __slots__ = (
        "start",
        "end",
        "total_cost",
        "n_instr",
        "n_loads",
        "n_stores",
        "n_branches",
        "n_deopt_branches",
        "fused",
        "stepped",
    )

    def __init__(self, start: int, end: int) -> None:
        self.start = start
        self.end = end
        self.total_cost = 0.0
        self.n_instr = end - start
        self.n_loads = 0
        self.n_stores = 0
        self.n_branches = 0
        self.n_deopt_branches = 0
        self.fused = None
        self.stepped = None


class BlockTable:
    """All blocks of one code object, compiled against one executor.

    ``driver`` is the flat ``(total_cost, fused, stepped)`` tuple list the
    executor's dispatch loop indexes — one sequence lookup and unpack per
    retired block instead of attribute traffic on :class:`Block`.
    """

    __slots__ = ("executor", "blocks", "block_of", "spans", "driver",
                 "flags_live", "auditable", "demoted", "typed_plans",
                 "traces")

    def __init__(self, executor: "Executor") -> None:
        self.executor = executor
        self.blocks: List[Block] = []
        self.block_of: Dict[int, int] = {}
        self.spans: List[Tuple[int, int]] = []
        self.driver: List[Tuple[float, object, object]] = []
        #: repro.machine.tracejit.TraceTable once the trace tier has
        #: attached to this table (None while tracing is disabled).
        #: Kept here so demote() can tear traces down with their blocks.
        self.traces = None
        #: bid -> repro.analysis.typeflow.TypedBlockPlan for every block
        #: whose fused closure is a typed variant (empty when typed
        #: blocks are disabled or nothing was provably elidable).
        self.typed_plans: Dict[int, object] = {}
        #: True when any block reads flags it did not set, i.e. flags
        #: flow across block boundaries and the closures must thread
        #: (n, z, c, v) through their signature.  Compiler-generated code
        #: keeps compare and branch in the same block, so this is the
        #: exception, not the rule.
        self.flags_live = False
        #: per-block: True when the divergence sentinel may shadow-execute
        #: the block side-effect-free (its last instruction is not a call,
        #: RET, DEOPT or JSLDRSMI — see repro.supervise.sentinel).
        self.auditable: List[bool] = []
        #: set by the sentinel on a divergence: in-flight driver loops
        #: route every block through its stepped twin from then on.
        self.demoted = False

    def demote(self) -> None:
        """Force every block onto its stepped twin, including for loops
        already inside the driver.

        Instead of a per-block ``demoted`` check in the hot dispatch loop,
        demotion rewrites the driver tuples with an infinite block cost:
        ``local_cycles + inf`` trips the existing sample-window condition
        (``inf >= anything``, even an idle sampler's ``inf`` due point),
        which routes through the stepped twin with the *entry* cycle
        count — the fused closure and its exit-cycles ABI are never
        touched again, so cycle totals stay bit-exact.
        """
        self.demoted = True
        infinite = float("inf")
        self.driver[:] = [
            (infinite, fused, stepped) for _cost, fused, stepped in self.driver
        ]
        if self.traces is not None:
            # Traces are built over these very blocks; a demoted table
            # must drop them too, or a compiled chain would keep running
            # the code path the sentinel just proved divergent.
            self.traces.disable()


#: decoded kinds that retire a load / store (mirrors the step loop's
#: per-instruction ``stats.loads`` / ``stats.stores`` increments)
_LOAD_KINDS = frozenset(
    {K_LDR, K_LDR_IDX, K_LDR_FRAME, K_CMPI_MEM, K_CMP_MEM, K_TSTI_MEM,
     K_LDRF, K_LDRF_FRAME, K_JSLDRSMI}
)
_STORE_KINDS = frozenset({K_STR, K_STR_FRAME, K_STRF, K_STRF_FRAME})

#: kinds that read the condition flags / kinds that define all four of
#: them.  Every flag-writing kind sets n, z, c and v, so a block whose
#: first flag access is a write has no flag live-in: flags then never
#: cross its entry and the closures can use the slim no-flags ABI.
_FLAG_READ_KINDS = frozenset({K_BCC, K_CSET})

#: last-instruction kinds whose closures touch executor/engine state
#: (cycle-clock flush, deopt-state capture, ret stash, nested calls) —
#: blocks ending in one of these cannot be shadow-executed by the
#: divergence sentinel.  Everything else mutates only its positional
#: state arguments plus the predictor/stats objects, both of which the
#: sentinel snapshot-restores.
_UNAUDITABLE_LAST = frozenset(
    {K_CALL_JS, K_CALL_DYN, K_CALL_RT, K_RET, K_DEOPT, K_JSLDRSMI}
)
_FLAG_WRITE_KINDS = frozenset(
    {K_CMPI, K_CMP, K_TSTI, K_TST, K_MZCMP, K_ADDS, K_SUBS, K_MULS,
     K_ADDSI, K_SUBSI, K_NEGS, K_CMPI_MEM, K_CMP_MEM, K_TSTI_MEM, K_FCMP}
)

#: condition-code source expressions over the (n, z, c, v) flag locals —
#: textual mirrors of repro.machine.dispatch.CC_EVAL
_CC_EXPR = {
    int(CC.EQ): "z",
    int(CC.NE): "not z",
    int(CC.LT): "n != v",
    int(CC.GE): "n == v",
    int(CC.GT): "(not z) and (n == v)",
    int(CC.LE): "z or (n != v)",
    int(CC.HS): "c",
    int(CC.LO): "not c",
    int(CC.HI): "c and not z",
    int(CC.LS): "(not c) or z",
    int(CC.VS): "v",
    int(CC.VC): "not v",
    int(CC.MI): "n",
    int(CC.PL): "not n",
}

#: reg-reg ALU function objects -> infix operator (the rest fall back to
#: explicit statement templates or a bound helper)
_RR_INFIX = {
    operator.add: "+",
    operator.sub: "-",
    operator.mul: "*",
    operator.and_: "&",
    operator.or_: "|",
    operator.xor: "^",
}
_FRR_INFIX = {operator.add: "+", operator.sub: "-", operator.mul: "*"}


def compile_blocks(code: "CodeObject", executor: "Executor") -> BlockTable:
    """Partition ``code`` and compile every block's fused/stepped closures."""
    return _BlockCompiler(code, executor).compile()


class _BlockCompiler:
    def __init__(self, code: "CodeObject", executor: "Executor") -> None:
        from .executor import MachineError

        self.code = code
        self.executor = executor
        if code._decoded is None:
            code._decoded = decode(code, executor.op_cost)
        self.decoded = code._decoded
        config = executor.heap.config
        self.smi_min = config.smi_min
        self.smi_max = config.smi_max
        self.taken_extra = executor.cost_model.taken_extra
        self.mispredict = executor.cost_model.mispredict_penalty
        self.pmask = executor.predictor.mask
        self._const_count = 0
        #: shared globals for every generated closure of this code object.
        #: ``pred``/``ptable`` bind the gshare predictor by identity — both
        #: are created once in Executor.__init__ and never reassigned, so
        #: inlined branch code mutates the very state the step loop sees.
        self.glb: Dict[str, object] = {
            "ex": executor,
            "engine": executor.engine,
            "stats": executor.stats,
            "pred": executor.predictor,
            "ptable": executor.predictor.table,
            "MachineError": MachineError,
            "DeoptSignal": DeoptSignal,
            "isnan": isnan,
            "isinf": isinf,
            "copysign": copysign,
            "inf": inf,
            "sdiv": _sdiv,
            "code": code,
            "UNDEF": executor.heap.undefined,
            # typed-variant bookkeeping (repro.analysis.typeflow): python-
            # level counters only — never part of ExecStats or the cycle
            # model, so simulated results stay bit-identical.
            "tstat": getattr(
                executor, "typed_counters", [0, 0, 0, 0, 0, 0, 0]
            ),
        }

    # -- helpers ---------------------------------------------------------

    def _const(self, value: object) -> str:
        name = f"C{self._const_count}"
        self._const_count += 1
        self.glb[name] = value
        return name

    def _lit(self, value: object) -> str:
        """Inline a value as a source literal, or bind it as a constant."""
        if value is None or value is True or value is False:
            return repr(value)
        if type(value) is int:
            return repr(value)
        if type(value) is float:
            if isnan(value) or isinf(value):
                return self._const(value)
            return repr(value)  # float repr round-trips exactly
        if type(value) is str:
            return repr(value)
        return self._const(value)

    def _ret(self, bid: object) -> str:
        if self.flags_live:
            return f"return ({bid}, cycles, n, z, c, v)"
        return f"return ({bid}, cycles)"

    def _flags_live_in(self, start: int, end: int) -> bool:
        """True when the block reads n/z/c/v before defining them."""
        for pc in range(start, end):
            kind = self.decoded[pc][0]
            if kind in _FLAG_READ_KINDS:
                return True
            if kind in _FLAG_WRITE_KINDS:
                return False
        return False

    # -- compilation -----------------------------------------------------

    def compile(self) -> BlockTable:
        table = BlockTable(self.executor)
        table.spans = block_spans(self.code.instrs)
        table.block_of = {start: i for i, (start, _end) in enumerate(table.spans)}
        self.block_of = table.block_of
        self.n_blocks = len(table.spans)
        # ABI selection must precede assembly: one live-in block forces the
        # flag-threading signature onto every closure of this code object.
        self.flags_live = table.flags_live = any(
            self._flags_live_in(start, end) for start, end in table.spans
        )
        table.auditable = [
            self.decoded[end - 1][0] not in _UNAUDITABLE_LAST
            for _start, end in table.spans
        ]
        self.plans: Dict[int, object] = {}
        if (
            getattr(self.executor, "typed_blocks", False)
            and not self.flags_live
            # Typed variants are a privilege of the top two ladder rungs
            # (repro.machine.continuations): a function demoted to
            # RUNG_GENERIC or below compiles generic fused blocks only.
            and getattr(self.code, "_tier_rung", 0) < 2
        ):
            # Imported lazily: typeflow itself imports block_spans from
            # this module at load time.
            from ..analysis.typeflow import typed_plans

            self.plans = typed_plans(self.code)
        table.typed_plans = dict(self.plans)
        sources: List[str] = []
        for bid, (start, end) in enumerate(table.spans):
            table.blocks.append(self._compile_block(bid, start, end, sources))
        # One compile()/exec for the whole code object: with ~3 instructions
        # per block, per-call compile() overhead would otherwise dominate
        # the first-run cost of every cell.
        source = "\n".join(sources)
        compiled = _COMPILED_SOURCES.get(source)
        if compiled is None:
            compiled = _COMPILED_SOURCES[source] = compile(
                source, "<blockjit>", "exec"
            )
        exec(compiled, self.glb)  # noqa: S102 - generated from decoded instrs
        for bid, block in enumerate(table.blocks):
            block.fused = self.glb.pop(f"_blk_f{bid}")
            block.stepped = self.glb.pop(f"_blk_s{bid}")
            # _blk_g{bid} generic fallbacks stay in glb: typed closures
            # resolve them as globals on guard failure.
        table.driver = [(b.total_cost, b.fused, b.stepped) for b in table.blocks]
        return table

    def _compile_block(
        self, bid: int, start: int, end: int, sources: List[str]
    ) -> Block:
        block = Block(start, end)
        block.total_cost = self.decoded[end - 1][8]  # prefix of last instr
        for pc in range(start, end):
            kind = self.decoded[pc][0]
            if kind in _LOAD_KINDS:
                block.n_loads += 1
            elif kind in _STORE_KINDS:
                block.n_stores += 1
            elif kind in (K_BCC, K_B):
                block.n_branches += 1
                if kind == K_BCC and self.decoded[pc][3]:  # s1 = is_deopt
                    block.n_deopt_branches += 1
        plan = self.plans.get(bid)
        if plan is not None:
            # The fused slot gets the typed variant; the generic body is
            # kept (as _blk_g{bid}) only when a guard can actually fail
            # into it.  The stepped twin below is always generic — it is
            # the timing/sampling reference the sentinel diffs against.
            sources.append(
                self._assemble(bid, start, end, block, stepped=False, plan=plan)
            )
            if plan.guards:
                sources.append(
                    self._assemble(bid, start, end, block, stepped=False,
                                   generic=True)
                )
        else:
            sources.append(self._assemble(bid, start, end, block, stepped=False))
        sources.append(self._assemble(bid, start, end, block, stepped=True))
        return block

    def _stats_prologue(self, block: Block) -> List[str]:
        """Charge the block's static counter deltas in one batch.

        Exact versus the step loop because every raise point is a block's
        *last* instruction (partition rule), so whenever any instruction of
        the block retires, all of them do.  Counters with a zero delta emit
        nothing.
        """
        lines = [f"stats.instructions += {block.n_instr}"]
        if block.n_loads:
            lines.append(f"stats.loads += {block.n_loads}")
        if block.n_stores:
            lines.append(f"stats.stores += {block.n_stores}")
        if block.n_branches:
            lines.append(f"stats.branches += {block.n_branches}")
        if block.n_deopt_branches:
            lines.append(
                f"stats.deopt_branch_instrs += {block.n_deopt_branches}"
            )
        return lines

    def _assemble(
        self, bid: int, start: int, end: int, block: Block, stepped: bool,
        plan=None, generic: bool = False,
    ) -> str:
        lines: List[str] = []
        actions = {}
        if plan is not None:
            # Hoisted entry guards run before anything is charged: a
            # failing guard tail-calls the generic block with the entry
            # state untouched, so the generic path is bit-identical to
            # never having tried the typed variant.
            for index, fact in enumerate(plan.guards):
                lines.extend(self._guard(fact, bid, index))
            if plan.guards:
                lines.append(f"tstat[3] += {len(plan.guards)}")
            actions = dict(plan.actions)
        lines.extend(self._stats_prologue(block))
        if stepped:
            lines.append("entry = cycles")
        for pc in range(start, end):
            if stepped:
                prefix = self.decoded[pc][8]
                lines.append(f"cycles = entry + {prefix!r}")
                lines.append("if cycles >= ex._next_sample:")
                lines.append(f"    ex._sample(code, {pc}, cycles)")
            if plan is not None and pc == plan.site_pc:
                lines.extend(self._emit_elided_site(pc, plan))
                continue
            action = actions.get(pc)
            if action is not None and action[0] == "skip":
                continue  # pure flag computation of the elided check
            if action is not None and action[0] == "const":
                # Proven heap load: same register state, no heap traffic.
                lines.append(f"regs[{action[1]}] = {self._lit(action[2])}")
                continue
            lines.extend(self._emit(pc, end, stepped))
        last_kind = self.decoded[end - 1][0]
        if last_kind not in (K_BCC, K_B, K_RET, K_DEOPT, K_JSLDRSMI,
                             K_CALL_JS, K_CALL_DYN, K_CALL_RT):
            # Plain fall-through into the next leader.
            lines.append(self._ret(self._target_bid(end)))
        variant = "g" if generic else ("s" if stepped else "f")
        name = f"_blk_{variant}{bid}"
        flags = ", n, z, c, v" if self.flags_live else ""
        return (
            f"def {name}(regs, fregs, frame, special, heap, "
            f"cycles{flags}):\n"
            + "".join(f"    {line}\n" for line in lines)
        )

    def _target_bid(self, pc: int) -> int:
        if pc in self.block_of:
            return self.block_of[pc]
        # Off the end / corrupt target: an out-of-range block id makes the
        # driver raise IndexError, like the step loop's decoded[pc] would.
        return self.n_blocks

    # -- typed variants (repro.analysis.typeflow plans) -------------------

    def _guard_test(self, fact) -> Tuple[List[str], str]:
        """Setup statements plus the *failure* condition for one hoisted
        guard fact.  Shared between the block compiler's entry guards and
        the trace compiler's chain guards so both tiers test a fact with
        byte-identical generated code.  Non-int heap words fail the test
        rather than raising, so the generic fallback reproduces the
        exact MachineError the step loop would have raised."""
        L = self._lit
        tag = fact[0]
        if tag == "par":
            cond = (
                f"regs[{fact[1]}] & 1" if fact[2] == 0
                else f"not (regs[{fact[1]}] & 1)"
            )
            return [], cond
        if tag == "regeq":
            return [], f"regs[{fact[1]}] != {L(fact[2])}"
        if tag == "map":
            return (
                [f"_g = heap[(regs[{fact[1]}] >> 1) + {L(fact[2])}]"],
                f"_g != {L(fact[3])}",
            )
        if tag == "ub":
            idx, base, disp = fact[1], fact[2], fact[3]
            return (
                [f"_g = heap[(regs[{base}] >> 1) + {L(disp)}]"],
                f"not (isinstance(_g, int) and (regs[{idx}] & {_UINT32})"
                f" < (_g & {_UINT32}))",
            )
        if tag == "memsmi":
            base, idx, scale, disp = fact[1], fact[2], fact[3], fact[4]
            addr = f"(regs[{base}] >> 1) + {L(disp)}"
            if idx >= 0:
                addr = (
                    f"(regs[{base}] >> 1) + (regs[{idx}] << {L(scale)})"
                    f" + {L(disp)}"
                )
            return [f"_g = heap[{addr}]"], "not isinstance(_g, int) or (_g & 1)"
        raise ValueError(f"blockjit: unsupported guard fact {fact!r}")

    def _guard(self, fact, bid: int, index: int) -> List[str]:
        """One hoisted entry guard; its failure path tail-calls the
        generic block with the entry state untouched."""
        setup, cond = self._guard_test(fact)
        return setup + [
            f"if {cond}:",
            f"    tstat[3] += {index}",
            "    tstat[4] += 1",
            f"    return _blk_g{bid}(regs, fregs, frame, special, heap, "
            "cycles)",
        ]

    def _emit_elided_site(self, pc: int, plan) -> List[str]:
        """The check site with its test removed.

        The branch variant keeps the generic not-taken path verbatim —
        deterministic gshare update, mispredict accounting, fall-through
        return — minus the flag test (the guard or the entry proof
        already decided it).  The jsldrsmi variant commits the load
        without the tag test.  ``tstat`` counters are python-level only.
        """
        decoded = self.decoded[pc]
        if plan.site == "branch":
            out = [
                "_h = pred.history",
                f"_i = ({pc} ^ _h) & {self.pmask}",
                "_t = ptable[_i]",
                "pred.predictions += 1",
                f"pred.history = (_h << 1) & {self.pmask}",
                "if _t > 0:",
                "    ptable[_i] = _t - 1",
                "if _t >= 2:",
                "    pred.mispredictions += 1",
                "    stats.mispredictions += 1",
                f"    cycles += {self.mispredict!r}",
                "tstat[0] += 1",
            ]
            if plan.n_cond_elided:
                out.append(f"tstat[1] += {plan.n_cond_elided}")
            out.append(self._ret(self._target_bid(pc + 1)))
            return out
        # jsldrsmi: aux = (scale, check_id, reason)
        _kind, _cost, dst, s1, s2, imm, aux, _instr, _prefix, _leader = decoded
        scale = aux[0]
        addr = f"_a = (regs[{s1}] >> 1) + {self._lit(imm)}"
        if s2 >= 0:
            addr = (
                f"_a = (regs[{s1}] >> 1) + "
                f"(regs[{s2}] << {self._lit(scale)}) + {self._lit(imm)}"
            )
        return [
            addr,
            "_v = heap[_a]",
            "if not isinstance(_v, int):",
            "    raise MachineError('jsldrsmi of non-int slot %d' % _a)",
            f"regs[{dst}] = _v >> 1",
            "tstat[2] += 1",
            self._ret(self._target_bid(pc + 1)),
        ]

    # -- per-kind emission ----------------------------------------------

    def _emit(self, pc: int, end: int, stepped: bool) -> List[str]:
        kind, _cost, dst, s1, s2, imm, aux, instr, _prefix, _leader = (
            self.decoded[pc]
        )
        L = self._lit
        smi = f"{self.smi_min} <= _r <= {self.smi_max}"

        if kind == K_BCC:
            cc_expr = _CC_EXPR[int(instr.cc)]
            out = [f"taken = {cc_expr}"]
            if s1 and stepped:
                # Injected speculation fault (step tier only: the driver
                # routes every block through the stepped twin while trips
                # are pending, so the fused tier never sees one).
                out.append("if not taken and ex.forced_deopt_trips > 0:")
                out.append("    ex.forced_deopt_trips -= 1")
                out.append("    taken = True")
            # Inlined gshare predict_and_update (BranchPredictor): 2-bit
            # counter indexed by pc ^ history, mispredict when the
            # counter's direction disagrees with ``taken``.  Same state
            # transitions, same MP-then-TE cycle-add order as the step
            # loop, minus ~one Python call per retired branch.
            out.append("_h = pred.history")
            out.append(f"_i = ({pc} ^ _h) & {self.pmask}")
            out.append("_t = ptable[_i]")
            out.append("pred.predictions += 1")
            out.append("if taken:")
            out.append(f"    pred.history = ((_h << 1) | 1) & {self.pmask}")
            out.append("    if _t < 3:")
            out.append("        ptable[_i] = _t + 1")
            out.append("    if _t < 2:")
            out.append("        pred.mispredictions += 1")
            out.append("        stats.mispredictions += 1")
            out.append(f"        cycles += {self.mispredict!r}")
            out.append("    stats.taken_branches += 1")
            out.append(f"    cycles += {self.taken_extra!r}")
            out.append("    " + self._ret(self._target_bid(s2)))
            out.append(f"pred.history = (_h << 1) & {self.pmask}")
            out.append("if _t > 0:")
            out.append("    ptable[_i] = _t - 1")
            out.append("if _t >= 2:")
            out.append("    pred.mispredictions += 1")
            out.append("    stats.mispredictions += 1")
            out.append(f"    cycles += {self.mispredict!r}")
            out.append(self._ret(self._target_bid(pc + 1)))
            return out
        if kind == K_B:
            return [
                "stats.taken_branches += 1",
                f"cycles += {self.taken_extra!r}",
                self._ret(self._target_bid(s2)),
            ]
        if kind == K_LDR:
            return [
                f"_a = (regs[{s1}] >> 1) + {L(imm)}",
                "_v = heap[_a]",
                "if not isinstance(_v, int):",
                "    raise MachineError('LDR of non-int slot %d -> %r'"
                " % (_a, _v))",
                f"regs[{dst}] = _v",
            ]
        if kind == K_LDR_IDX:
            return [
                f"_a = (regs[{s1}] >> 1) + (regs[{s2}] << {L(aux)}) + {L(imm)}",
                "_v = heap[_a]",
                "if not isinstance(_v, int):",
                "    raise MachineError('LDR of non-int slot %d -> %r'"
                " % (_a, _v))",
                f"regs[{dst}] = _v",
            ]
        if kind == K_LDR_FRAME:
            return [f"regs[{dst}] = frame[{L(imm)}]"]
        if kind == K_MOVI:
            return [f"regs[{dst}] = {L(imm)}"]
        if kind == K_MOVR:
            return [f"regs[{dst}] = regs[{s1}]"]
        if kind == K_CMPI:
            return [
                f"_x = regs[{s1}]",
                f"_d = _x - {L(imm)}",
                "z = _d == 0",
                "n = _d < 0",
                f"c = (_x & {_UINT32}) >= {L(s2)}",
                "v = not (-2147483648 <= _d <= 2147483647)",
            ]
        if kind == K_TSTI:
            return [
                f"_t = regs[{s1}] & {L(imm)}",
                "z = _t == 0",
                "n = _t < 0",
                "c = v = False",
            ]
        if kind == K_CMP:
            return [
                f"_x = regs[{s1}]",
                f"_y = regs[{s2}]",
                "_d = _x - _y",
                "z = _d == 0",
                "n = _d < 0",
                f"c = (_x & {_UINT32}) >= (_y & {_UINT32})",
                "v = not (-2147483648 <= _d <= 2147483647)",
            ]
        if kind == K_ASRI:
            return [f"regs[{dst}] = regs[{s1}] >> {L(imm)}"]
        if kind in (K_ADDS, K_SUBS, K_MULS):
            op = {K_ADDS: "+", K_SUBS: "-", K_MULS: "*"}[kind]
            return [
                f"_r = regs[{s1}] {op} regs[{s2}]",
                f"regs[{dst}] = _r",
                "z = _r == 0",
                "n = _r < 0",
                f"v = not ({smi})",
                "c = False",
            ]
        if kind in (K_ADDSI, K_SUBSI):
            op = "+" if kind == K_ADDSI else "-"
            return [
                f"_r = regs[{s1}] {op} {L(imm)}",
                f"regs[{dst}] = _r",
                "z = _r == 0",
                "n = _r < 0",
                f"v = not ({smi})",
                "c = False",
            ]
        if kind == K_NEGS:
            return [
                f"_x = regs[{s1}]",
                "_r = -_x",
                f"regs[{dst}] = _r",
                "z = _x == 0",
                "n = _r < 0",
                f"v = not ({smi})",
                "c = False",
            ]
        if kind == K_LSLI:
            return [f"regs[{dst}] = regs[{s1}] << {L(imm)}"]
        if kind == K_TST:
            return [
                f"_t = regs[{s1}] & regs[{s2}]",
                "z = _t == 0",
                "n = _t < 0",
                "c = v = False",
            ]
        if kind == K_MZCMP:
            return [
                f"z = regs[{s1}] == 0 and regs[{s2}] < 0",
                "n = False",
                "c = v = False",
            ]
        if kind == K_CALL_RT:
            name, extra, call_regs, returns_float = aux
            args = ", ".join(f"regs[{r}]" for r in call_regs)
            target = "fregs[0]" if returns_float else "regs[0]"
            return [
                "ex.cycles = cycles",
                f"{target} = engine.call_runtime({name!r}, {L(extra)}, "
                f"[{args}], fregs)",
                "cycles = ex.cycles",
                self._ret(self._target_bid(pc + 1)),
            ]
        if kind == K_CSET:
            return [f"regs[{dst}] = 1 if {_CC_EXPR[int(instr.cc)]} else 0"]
        if kind in (K_CMPI_MEM, K_CMP_MEM, K_TSTI_MEM):
            base, index_reg, scale, disp = aux
            addr = f"_a = (regs[{base}] >> 1) + {L(disp)}"
            if index_reg >= 0:
                addr = (
                    f"_a = (regs[{base}] >> 1) + "
                    f"(regs[{index_reg}] << {L(scale)}) + {L(disp)}"
                )
            if kind == K_TSTI_MEM:
                return [
                    addr,
                    f"_t = heap[_a] & {L(imm)}",
                    "z = _t == 0",
                    "n = _t < 0",
                    "c = v = False",
                ]
            if kind == K_CMPI_MEM:
                return [
                    addr,
                    "_x = heap[_a]",
                    "if not isinstance(_x, int):",
                    "    raise MachineError('cmp with non-int memory"
                    " operand')",
                    f"_d = _x - {L(imm)}",
                    "z = _d == 0",
                    "n = _d < 0",
                    f"c = (_x & {_UINT32}) >= {L(s2)}",
                    "v = not (-2147483648 <= _d <= 2147483647)",
                ]
            return [  # K_CMP_MEM
                addr,
                "_y = heap[_a]",
                "if not isinstance(_y, int):",
                "    raise MachineError('cmp with non-int memory operand')",
                f"_x = regs[{s1}]",
                "_d = _x - _y",
                "z = _d == 0",
                "n = _d < 0",
                f"c = (_x & {_UINT32}) >= (_y & {_UINT32})",
                "v = not (-2147483648 <= _d <= 2147483647)",
            ]
        if kind in (K_STR, K_STRF):
            source = f"regs[{s1}]" if kind == K_STR else f"fregs[{s1}]"
            addr = f"_a = (regs[{s2}] >> 1) + {L(imm)}"
            if aux is not None:
                index_reg, scale = aux
                addr = (
                    f"_a = (regs[{s2}] >> 1) + "
                    f"(regs[{index_reg}] << {L(scale)}) + {L(imm)}"
                )
            return [addr, f"heap[_a] = {source}"]
        if kind == K_STR_FRAME:
            return [f"frame[{L(imm)}] = regs[{s1}]"]
        if kind == K_STRF_FRAME:
            return [f"frame[{L(imm)}] = fregs[{s1}]"]
        if kind == K_SCVTF:
            return [f"fregs[{dst}] = float(regs[{s1}])"]
        if kind == K_ALU_RR:
            infix = _RR_INFIX.get(aux)
            if infix is not None:
                return [f"regs[{dst}] = regs[{s1}] {infix} regs[{s2}]"]
            if aux is _lsl:
                return [
                    f"_t = (regs[{s1}] << (regs[{s2}] & 31)) & {_UINT32}",
                    f"regs[{dst}] = _t - 4294967296 "
                    "if _t >= 2147483648 else _t",
                ]
            if aux is _asr:
                return [f"regs[{dst}] = regs[{s1}] >> (regs[{s2}] & 31)"]
            if aux is _lsr:
                return [
                    f"regs[{dst}] = (regs[{s1}] & {_UINT32}) >> "
                    f"(regs[{s2}] & 31)"
                ]
            if aux is _sdiv:
                return [f"regs[{dst}] = sdiv(regs[{s1}], regs[{s2}])"]
            return [f"regs[{dst}] = {self._const(aux)}(regs[{s1}], regs[{s2}])"]
        if kind == K_ALU_RI:
            infix = _RR_INFIX.get(aux)
            if infix is not None:
                return [f"regs[{dst}] = regs[{s1}] {infix} {L(imm)}"]
            if aux is _lsri:
                return [f"regs[{dst}] = (regs[{s1}] & {_UINT32}) >> {L(imm)}"]
            return [f"regs[{dst}] = {self._const(aux)}(regs[{s1}], {L(imm)})"]
        if kind == K_FALU_RR:
            infix = _FRR_INFIX.get(aux)
            if infix is not None:
                return [f"fregs[{dst}] = fregs[{s1}] {infix} fregs[{s2}]"]
            return [
                f"fregs[{dst}] = {self._const(aux)}(fregs[{s1}], fregs[{s2}])"
            ]
        if kind == K_FALU_R:
            if aux is operator.neg:
                return [f"fregs[{dst}] = -fregs[{s1}]"]
            if aux is abs:
                return [f"fregs[{dst}] = abs(fregs[{s1}])"]
            return [f"fregs[{dst}] = {self._const(aux)}(fregs[{s1}])"]
        if kind == K_FDIV:
            return [
                f"_y = fregs[{s2}]",
                f"_x = fregs[{s1}]",
                "if _y == 0.0:",
                "    if _x == 0.0 or isnan(_x):",
                f"        fregs[{dst}] = float('nan')",
                "    else:",
                f"        fregs[{dst}] = inf * "
                "(copysign(1.0, _x) * copysign(1.0, _y))",
                "else:",
                f"    fregs[{dst}] = _x / _y",
            ]
        if kind == K_FMOVR:
            return [f"fregs[{dst}] = fregs[{s1}]"]
        if kind == K_FMOVI:
            return [f"fregs[{dst}] = {L(imm)}"]
        if kind == K_FCMP:
            return [
                f"_x = fregs[{s1}]",
                f"_y = fregs[{s2}]",
                "if isnan(_x) or isnan(_y):",
                "    n = z = False",
                "    c = v = True",
                "else:",
                "    n = _x < _y",
                "    z = _x == _y",
                "    c = _x >= _y",
                "    v = False",
            ]
        if kind == K_FCVTZS:
            return [
                f"_x = fregs[{s1}]",
                "if isnan(_x) or isinf(_x):",
                f"    regs[{dst}] = 0",
                "else:",
                "    _t = int(_x) % 4294967296",
                f"    regs[{dst}] = _t - 4294967296 "
                "if _t >= 2147483648 else _t",
            ]
        if kind == K_LDRF:
            addr = f"(regs[{s1}] >> 1) + {L(imm)}"
            if s2 >= 0:
                addr = f"(regs[{s1}] >> 1) + (regs[{s2}] << {L(aux)}) + {L(imm)}"
            return [f"fregs[{dst}] = float(heap[{addr}])"]
        if kind == K_LDRF_FRAME:
            return [f"fregs[{dst}] = frame[{L(imm)}]"]
        if kind == K_JSLDRSMI:
            scale, check_id, reason = aux
            addr = f"_a = (regs[{s1}] >> 1) + {L(imm)}"
            if s2 >= 0:
                addr = (
                    f"_a = (regs[{s1}] >> 1) + "
                    f"(regs[{s2}] << {L(scale)}) + {L(imm)}"
                )
            out = [
                addr,
                "_v = heap[_a]",
                "if not isinstance(_v, int):",
                "    raise MachineError('jsldrsmi of non-int slot %d' % _a)",
                "if _v & 1:",
                f"    special[{REG_PC}] = {pc}",
                f"    special[{REG_RE}] = {reason if check_id >= 0 else 1}",
            ]
            if check_id < 0:
                out.append(
                    "    raise MachineError("
                    "'jsldrsmi bailout without deopt point')"
                )
            else:
                out.append("    ex.cycles = cycles")
                out.append("    ex.deopt_state = (regs, fregs, frame)")
                out.append(f"    raise DeoptSignal({check_id})")
            out.append(f"regs[{dst}] = _v >> 1")
            out.append(self._ret(self._target_bid(pc + 1)))
            return out
        if kind == K_CALL_JS:
            args = ", ".join(f"regs[{r}]" for r in aux)
            return [
                "ex.cycles = cycles",
                f"regs[0] = engine.call_shared({L(imm)}, regs[{THIS_REG}], "
                f"[{args}])",
                "cycles = ex.cycles",
                self._ret(self._target_bid(pc + 1)),
            ]
        if kind == K_CALL_DYN:
            args = ", ".join(f"regs[{r}]" for r in aux)
            return [
                "ex.cycles = cycles",
                f"regs[0] = engine.call_value(regs[{s1}], UNDEF, [{args}], "
                "None)",
                "cycles = ex.cycles",
                self._ret(self._target_bid(pc + 1)),
            ]
        if kind == K_RET:
            return [
                "ex.cycles = cycles",
                f"ex.ret_value = regs[{s1}]",
                self._ret(-1),
            ]
        if kind == K_DEOPT:
            return [
                "ex.cycles = cycles",
                "ex.deopt_state = (regs, fregs, frame)",
                f"raise DeoptSignal({L(imm)})",
            ]
        if kind == K_MSR:
            return [f"special[{L(imm)}] = regs[{s1}]"]
        raise ValueError(  # pragma: no cover - decode() covers every MOp
            f"blockjit: unimplemented dispatch kind {kind}"
        )
