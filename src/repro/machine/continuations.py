"""Deoptless re-dispatch: specialized continuations instead of bailout.

Following "Deoptless: Speculation with Dispatched On-Stack Replacement
and Specialized Continuations" (arXiv 2203.02340): when a typed guard or
deopt check fails, the engine does not have to abandon optimized
execution — it can *dispatch* into a continuation specialized for the
type-state it just observed (the failing guard's fact, negated) and
resume mid-loop with the machine state carried over.  The LBBV line
(arXiv 1411.0352) supplies the versioning vocabulary: continuations are
keyed by the same facts :mod:`repro.analysis.typeflow` proves for the
typed block variants, so its ``TypedBlockPlan`` lattice pre-seeds the
variant table with every guard state the static analysis already named.

This module owns the *policy* state of that mechanism:

* the :class:`ContinuationTable` — per-``(function, dispatch pc,
  type-state token)`` variant registry with lazy first-miss compilation,
  seeded entries from the typeflow lattice, eviction scoped to the
  storming token (a storm on one type-state must not evict variants
  that never tripped), and a cycle-budget re-dispatch breaker proving
  livelock-freedom;
* the **degradation ladder** rung constants — the graceful replacement
  for the old all-or-nothing ``optimization_disabled`` cliff.  Each
  storm or budget exhaustion steps the function down ONE rung (dropping
  the artifacts of the tier it leaves behind) instead of disabling
  everything; only the final rung is the permanent interpreter.

The *mechanism* — deciding dispatch vs. classic bailout, charging
cycles, transferring register/spill state — lives in
:meth:`repro.engine.Engine._deoptimize`, which is reached with
bit-identical state from all three executor tiers, so continuation
behavior is deterministic and tier-invariant by construction (the
186-config cross-tier sweep stays bit-identical).

At this simulator's abstraction level a dispatched continuation's body
is realized as the generic completion of the activation from the deopt
program point (the same state transfer the interpreter tail performs),
charged at re-entry cost instead of the 250-cycle stack-frame
conversion; see DESIGN.md §13 for the fidelity argument.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "RUNG_FULL",
    "RUNG_NOTRACE",
    "RUNG_GENERIC",
    "RUNG_CLASSIC",
    "RUNG_STEPPED",
    "RUNG_INTERP",
    "RUNG_NAMES",
    "DISPATCH_CYCLES",
    "CONTINUATION_COMPILE_CYCLES",
    "ContinuationTable",
    "continuation_token",
    "default_continuations",
    "fact_holds",
    "resolve_redispatch_budget",
]

# ---------------------------------------------------------------------------
# Degradation ladder
# ---------------------------------------------------------------------------

#: all tiers live: traces, typed variants, continuation dispatch
RUNG_FULL = 0
#: trace tier dropped; typed variants + continuations remain
RUNG_NOTRACE = 1
#: typed variants dropped; generic fused blocks + continuations remain
RUNG_GENERIC = 2
#: continuation dispatch off; generic fused blocks, classic deopt only
RUNG_CLASSIC = 3
#: fused blocks dropped; per-instruction step loop only
RUNG_STEPPED = 4
#: permanent interpreter (the only rung that sets optimization_disabled)
RUNG_INTERP = 5

RUNG_NAMES = (
    "full",
    "no-trace",
    "generic-blocks",
    "classic-deopt",
    "stepped",
    "interpreter",
)

#: simulated cycles charged per dispatched re-entry (vs. the 250-cycle
#: interpreter stack-frame conversion a classic bailout pays): the
#: continuation re-enters machine-level execution with registers in
#: place, paying only the variant lookup + indirect jump.
DISPATCH_CYCLES = 40

#: extra simulated cycles charged once per lazily compiled continuation
#: (first miss of a (pc, token) key): specializing an existing block
#: body for one flipped fact, far cheaper than a full re-optimization.
CONTINUATION_COMPILE_CYCLES = 120


def default_continuations() -> bool:
    """Process-wide default for continuation dispatch (REPRO_CONTINUATIONS,
    on unless explicitly disabled)."""
    return os.environ.get("REPRO_CONTINUATIONS", "1").lower() not in (
        "0", "false", "off", "no",
    )


def resolve_redispatch_budget() -> float:
    """Cycle budget of the re-dispatch breaker (REPRO_CONT_BUDGET).

    A consecutive-dispatch streak (no intervening clean machine exit)
    that accumulates more simulated cycles than this is refused further
    dispatch and falls back to the classic bailout path — the ladder's
    strike counters then see the deopt.  This is the livelock proof: a
    fault plan flipping the same guard on every dispatch terminates
    because each dispatch charges at least :data:`DISPATCH_CYCLES`, so
    the streak reaches the budget in at most ``budget / DISPATCH_CYCLES``
    re-entries.
    """
    raw = os.environ.get("REPRO_CONT_BUDGET", "")
    try:
        value = float(raw) if raw else 2000.0
    except ValueError:
        value = 2000.0
    return max(value, float(DISPATCH_CYCLES))


# ---------------------------------------------------------------------------
# Fact evaluation (mirror of blockjit._guard_test, pass-polarity)
# ---------------------------------------------------------------------------

_UINT32 = 0xFFFFFFFF


def fact_holds(fact, regs: List[int], heap_words) -> Optional[bool]:
    """Evaluate a typeflow fact against observed machine state.

    Pass-polarity mirror of the generated guard tests in
    :meth:`repro.machine.blockjit._Codegen._guard_test` — True when the
    fact holds on ``(regs, heap)``, False when it fails, None when the
    fact is outside the language or the state cannot be read (the
    caller then skips the audit rather than guessing).
    """
    try:
        tag = fact[0]
        if tag == "par":
            return (regs[fact[1]] & 1) == fact[2]
        if tag == "regeq":
            return regs[fact[1]] == fact[2]
        if tag == "map":
            word = heap_words[(regs[fact[1]] >> 1) + fact[2]]
            return word == fact[3]
        if tag == "ub":
            idx, base, disp = fact[1], fact[2], fact[3]
            length = heap_words[(regs[base] >> 1) + disp]
            return isinstance(length, int) and (
                (regs[idx] & _UINT32) < (length & _UINT32)
            )
        if tag == "memsmi":
            base, idx, scale, disp = fact[1], fact[2], fact[3], fact[4]
            addr = (regs[base] >> 1) + disp
            if idx >= 0:
                addr += regs[idx] << scale
            word = heap_words[addr]
            return isinstance(word, int) and not (word & 1)
    except (IndexError, TypeError):
        return None
    return None


def continuation_token(code, check_id: int) -> str:
    """Type-state token of the continuation a failing check dispatches to.

    The token names the *negated* guard fact — the type-state the engine
    just observed — rendered through the same vocabulary typeflow's
    classifications speak, so seeded lattice entries and dynamically
    discovered states share one namespace.  Checks whose condition has
    no fact in the analysis language fall back to the check kind: one
    generic continuation per kind.
    """
    from ..analysis.typeflow import analyze_typeflow, render_fact

    verdict = analyze_typeflow(code).classifications.get(check_id)
    if verdict is not None and verdict.fact is not None:
        return "!" + render_fact(verdict.fact)
    point = code.deopt_points.get(check_id)
    return "!" + (point.kind.name if point is not None else f"check{check_id}")


def dispatch_fact(code, check_id: int):
    """The failing guard's fact (or None) for sentinel re-evaluation."""
    from ..analysis.typeflow import analyze_typeflow

    verdict = analyze_typeflow(code).classifications.get(check_id)
    return verdict.fact if verdict is not None else None


# ---------------------------------------------------------------------------
# Variant table
# ---------------------------------------------------------------------------


class ContinuationTable:
    """Registry of specialized continuations plus the breaker state.

    Keys are ``(shared.index, bytecode_pc, token)`` — deliberately
    independent of ``code.serial``, so variants survive the recompiles
    the classic path still performs and a re-tiered function re-enters
    its warm variant set instead of rediscovering it one miss at a time.
    """

    def __init__(self, budget: float) -> None:
        self.budget = float(budget)
        #: (shared_index, bytecode_pc, token) -> dispatch count
        self.variants: Dict[Tuple[int, int, str], int] = {}
        #: keys pre-registered from the typeflow TypedBlockPlan lattice
        self.seeded: Set[Tuple[int, int, str]] = set()
        #: code serials whose lattice has been harvested already
        self._seeded_serials: Set[int] = set()
        #: shared_index -> [consecutive dispatches, streak cycles];
        #: cleared by a clean machine exit (Engine.call_shared)
        self.streaks: Dict[int, List[float]] = {}
        #: functions whose continuations the sentinel poisoned — a
        #: spurious dispatch (guard fact still held) demotes the whole
        #: function back to classic bailouts; the classic path is always
        #: safe, so this fails closed.
        self.demoted: Set[int] = set()
        #: pending forced lookup misses (POISON_VARIANT fault): the next
        #: N lookups evict their key and take the lazy-recompile path
        self.poison_misses = 0
        #: pending re-arms of the forced-trip flag (REDISPATCH_LOOP
        #: fault): each dispatch re-arms one trip until exhausted — the
        #: breaker must terminate the loop, not the fault running dry
        self.loop_armed = 0
        # -- counters surfaced via Engine.resilience_stats() -----------
        self.dispatches = 0
        self.lazy_compiles = 0
        self.seeded_hits = 0
        self.breaker_trips = 0
        self.evictions = 0
        self.poisoned_lookups = 0
        self.spurious_dispatches = 0

    # -- seeding -------------------------------------------------------

    def seed(self, shared_index: int, code) -> None:
        """Harvest the typeflow lattice of ``code`` once: every fact a
        ``TypedBlockPlan`` guards on names a type-state whose *negation*
        is a continuation the dispatcher may need — register those keys
        up front so the first real dispatch into one is a seeded hit,
        not a lazy compile."""
        serial = getattr(code, "serial", -1)
        if serial in self._seeded_serials:
            return
        self._seeded_serials.add(serial)
        from ..analysis.typeflow import analyze_typeflow, render_fact

        result = analyze_typeflow(code)
        points = getattr(code, "deopt_points", {}) or {}
        for plan in result.plans.values():
            point = points.get(plan.check_id)
            if point is None:
                continue
            for fact in (plan.fact,) + tuple(plan.guards):
                key = (shared_index, point.bytecode_pc, "!" + render_fact(fact))
                if key not in self.variants:
                    self.variants[key] = 0
                    self.seeded.add(key)

    # -- dispatch ------------------------------------------------------

    def allow(self, shared_index: int) -> bool:
        """Breaker check: may this function dispatch again right now?"""
        streak = self.streaks.get(shared_index)
        return streak is None or streak[1] < self.budget

    def dispatch_cost(self, shared_index: int, bytecode_pc: int,
                      token: str) -> float:
        """Resolve (or lazily compile) the variant for one dispatch and
        return the simulated cycles the dispatch costs.  Updates the
        variant registry and its counters."""
        key = (shared_index, bytecode_pc, token)
        cost = float(DISPATCH_CYCLES)
        if self.poison_misses > 0 and key in self.variants:
            # Poisoned lookup: the cached variant is treated as lost and
            # recompiled on the spot — the dispatch still succeeds.
            self.poison_misses -= 1
            self.poisoned_lookups += 1
            self.seeded.discard(key)
            del self.variants[key]
            self.evictions += 1
        if key not in self.variants:
            self.variants[key] = 0
            self.lazy_compiles += 1
            cost += float(CONTINUATION_COMPILE_CYCLES)
        elif key in self.seeded and self.variants[key] == 0:
            self.seeded_hits += 1
        self.variants[key] += 1
        return cost

    def note_dispatch(self, shared_index: int, cycles: float) -> None:
        """Account one completed dispatch against the function's streak."""
        self.dispatches += 1
        streak = self.streaks.get(shared_index)
        if streak is None:
            self.streaks[shared_index] = [1, float(cycles)]
        else:
            streak[0] += 1
            streak[1] += float(cycles)

    def reset_streak(self, shared_index: int) -> None:
        self.streaks.pop(shared_index, None)

    # -- eviction ------------------------------------------------------

    def evict_token(self, shared_index: int, token: str) -> int:
        """Drop every variant of one storming type-state, leaving the
        function's other continuations untouched (the ladder contract:
        a storm on one type-state must not evict variants that never
        tripped)."""
        doomed = [
            key for key in self.variants
            if key[0] == shared_index and key[2] == token
        ]
        for key in doomed:
            del self.variants[key]
            self.seeded.discard(key)
        self.evictions += len(doomed)
        return len(doomed)

    def evict_function(self, shared_index: int) -> int:
        """Drop every variant of a function (terminal ladder rung)."""
        doomed = [key for key in self.variants if key[0] == shared_index]
        for key in doomed:
            del self.variants[key]
            self.seeded.discard(key)
        self.evictions += len(doomed)
        return len(doomed)

    def poison(self, shared_index: int) -> None:
        """Sentinel demotion: stop dispatching for this function."""
        self.demoted.add(shared_index)

    # -- observability -------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "dispatches": self.dispatches,
            "lazy_compiles": self.lazy_compiles,
            "seeded_hits": self.seeded_hits,
            "seeded_variants": len(self.seeded),
            "variants": len(self.variants),
            "breaker_trips": self.breaker_trips,
            "evictions": self.evictions,
            "poisoned_lookups": self.poisoned_lookups,
            "spurious_dispatches": self.spurious_dispatches,
            "demoted_functions": len(self.demoted),
        }
