"""Decoded-operand dispatch table for the fast executor.

The original interpreter loop re-read :class:`MachineInstr` attribute
slots and re-branched over the :class:`MOp` enum for every retired
instruction; profiling showed that dominating the harness (~83 % of the
wall clock of a figure run).  :func:`decode` runs once per code object and
flattens each instruction into a plain tuple

    (kind, cost, dst, s1, s2, imm, aux, instr, prefix, leader)

where ``kind`` is a synthetic small int chosen *after* looking at the
operands — e.g. ``LDR`` decodes to a frame-slot, no-index, or indexed
variant — so the hot loop compares plain ints, never touches enum objects,
and skips operand checks that can be settled statically:

* per-instruction base cost is pre-resolved (no dict lookup per retire);
* immediates are pre-cast (``int(imm)`` / ``float(imm)``) where the
  semantics require it, and kept raw where they do not;
* condition codes become evaluator functions over the (n, z, c, v) flags;
* rare reg-reg / reg-imm ALU ops collapse to a function slot in ``aux``
  (the functions below replicate the masking/wrapping semantics exactly);
* ``JSLDRSMI`` pre-resolves its check id and bailout reason code;
* ``CALL_RT`` pre-unpacks ``(name, extra, args, returns_float)``.

The last two slots carry the block-relative timing view shared with the
block-compiled executor (:mod:`repro.machine.blockjit`): ``prefix`` is the
cumulative base cycle cost from the instruction's fused-block leader
through the instruction itself (partial sums folded left, so the step
loop's ``entry + prefix`` reproduces the exact float the block path's
single ``entry + total`` add produces at block exit), and ``leader`` is 1
when the pc starts a fused block (where the step loop re-latches its
block-entry cycle count).

The decoded form is cached on ``CodeObject._decoded`` at first execution.
Code objects are immutable after generation (deopt/reoptimization builds a
new object), so the cache never needs invalidation.  Slot meanings per
kind are documented next to each constant; the ``instr`` slot keeps the
original :class:`MachineInstr` alive for tracing and the pipeline models.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, List, Tuple

from ..isa.base import CC, FRAME_BASE, MOp
from ..isa.semantics import fused_block_leaders
from ..jit.checks import REASON_CODES

if TYPE_CHECKING:
    from .executor import CostModel
    from ..jit.codegen import CodeObject

_UINT32 = 0xFFFFFFFF

# Synthetic kind codes, roughly in dynamic-frequency order (the executor's
# dispatch chain tests them in this order).
K_BCC = 0            # s1=is_deopt, s2=target, aux=cc evaluator
K_LDR = 1            # dst <- heap[(regs[s1]>>1) + imm]
K_LDR_IDX = 2        # dst <- heap[(regs[s1]>>1) + (regs[s2]<<aux) + imm]
K_LDR_FRAME = 3      # dst <- frame[imm]
K_MOVI = 4           # dst <- imm
K_MOVR = 5           # dst <- regs[s1]
K_CMPI = 6           # flags from regs[s1] vs imm; s2 = int(imm) & UINT32
K_TSTI = 7           # flags from regs[s1] & imm (imm pre-cast int)
K_CMP = 8            # flags from regs[s1] vs regs[s2]
K_ASRI = 9           # dst <- regs[s1] >> imm
K_B = 10             # unconditional branch to s2
K_ADDS = 11          # dst <- regs[s1] + regs[s2], SMI-overflow flags
K_ADDSI = 12         # dst <- regs[s1] + imm (pre-cast), SMI-overflow flags
K_LSLI = 13          # dst <- regs[s1] << imm
K_CALL_RT = 14       # aux = (name, extra, args, returns_float)
K_CSET = 15          # dst <- 1 if cc else 0; aux=cc evaluator
K_CMPI_MEM = 16      # flags from heap[mem] vs imm; s2 = int(imm) & UINT32; aux=mem
K_CMP_MEM = 17       # flags from regs[s1] vs heap[mem]; aux=mem
K_STR = 18           # heap[mem] <- regs[s1]; s2=base, imm=disp, aux=None|(index, scale)
K_STR_FRAME = 19     # frame[imm] <- regs[s1]
K_SCVTF = 20         # fregs[dst] <- float(regs[s1])
K_ALU_RR = 21        # dst <- aux(regs[s1], regs[s2])
K_ALU_RI = 22        # dst <- aux(regs[s1], imm)
K_SUBS = 23          # like K_ADDS
K_SUBSI = 24         # like K_ADDSI
K_MULS = 25          # flag-setting multiply
K_NEGS = 26          # dst <- -regs[s1]; Z from the *source* (minus-zero quirk)
K_TST = 27           # flags from regs[s1] & regs[s2]
K_MZCMP = 28         # Z <- regs[s1] == 0 and regs[s2] < 0
K_FALU_RR = 29       # fregs[dst] <- aux(fregs[s1], fregs[s2])
K_FALU_R = 30        # fregs[dst] <- aux(fregs[s1])
K_FDIV = 31          # IEEE division with JS zero/NaN rules
K_FMOVR = 32         # fregs[dst] <- fregs[s1]
K_FMOVI = 33         # fregs[dst] <- imm (pre-cast float)
K_FCMP = 34          # unordered-aware float compare
K_FCVTZS = 35        # dst <- ToInt32(fregs[s1])
K_LDRF = 36          # fregs[dst] <- float(heap[mem]); s1=base, s2=index, imm=disp, aux=scale
K_LDRF_FRAME = 37    # fregs[dst] <- frame[imm]
K_STRF = 38          # heap[mem] <- fregs[s1]; s2=base, imm=disp, aux=None|(index, scale)
K_STRF_FRAME = 39    # frame[imm] <- fregs[s1]
K_TSTI_MEM = 40      # flags from heap[mem] & imm; aux=mem
K_JSLDRSMI = 41      # s1=base, s2=index, imm=disp, aux=(scale, check_id, reason)
K_CALL_JS = 42       # imm = shared index, aux = args tuple
K_CALL_DYN = 43      # callee word in regs[s1], aux = args tuple
K_RET = 44           # return regs[s1]
K_DEOPT = 45         # raise DeoptSignal(imm)
K_MSR = 46           # special[imm] <- regs[s1]


def _lsl(a: int, b: int) -> int:
    result = (a << (b & 31)) & _UINT32
    return result - 0x100000000 if result >= 0x80000000 else result


def _asr(a: int, b: int) -> int:
    return a >> (b & 31)


def _lsr(a: int, b: int) -> int:
    return (a & _UINT32) >> (b & 31)


def _lsri(a: int, b: int) -> int:
    return (a & _UINT32) >> b


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return 0  # ARM semantics: division by zero -> 0
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


#: reg-reg ALU ops -> function slot (semantics identical to the old loop)
_ALU_RR_FN = {
    MOp.ADD: operator.add,
    MOp.SUB: operator.sub,
    MOp.MUL: operator.mul,
    MOp.AND: operator.and_,
    MOp.ORR: operator.or_,
    MOp.EOR: operator.xor,
    MOp.LSL: _lsl,
    MOp.ASR: _asr,
    MOp.LSR: _lsr,
    MOp.SDIV: _sdiv,
}

#: reg-imm ALU ops -> (function, pre-cast imm?); ADDI/SUBI historically used
#: the raw immediate, the bitwise/shift forms cast to int.
_ALU_RI_FN = {
    MOp.ADDI: (operator.add, False),
    MOp.SUBI: (operator.sub, False),
    MOp.ANDI: (operator.and_, True),
    MOp.ORRI: (operator.or_, True),
    MOp.EORI: (operator.xor, True),
    MOp.LSRI: (_lsri, True),
}

_FALU_RR_FN = {
    MOp.FADD: operator.add,
    MOp.FSUB: operator.sub,
    MOp.FMUL: operator.mul,
}

_FALU_R_FN = {
    MOp.FNEG: operator.neg,
    MOp.FABS: abs,
}

#: condition-code evaluators over (n, z, c, v)
CC_EVAL = {
    int(CC.EQ): lambda n, z, c, v: z,
    int(CC.NE): lambda n, z, c, v: not z,
    int(CC.LT): lambda n, z, c, v: n != v,
    int(CC.GE): lambda n, z, c, v: n == v,
    int(CC.GT): lambda n, z, c, v: (not z) and (n == v),
    int(CC.LE): lambda n, z, c, v: z or (n != v),
    int(CC.HS): lambda n, z, c, v: c,
    int(CC.LO): lambda n, z, c, v: not c,
    int(CC.HI): lambda n, z, c, v: c and not z,
    int(CC.LS): lambda n, z, c, v: (not c) or z,
    int(CC.VS): lambda n, z, c, v: v,
    int(CC.VC): lambda n, z, c, v: not v,
    int(CC.MI): lambda n, z, c, v: n,
    int(CC.PL): lambda n, z, c, v: not n,
}

DecodedInstr = Tuple[
    int, float, int, int, int, object, object, object, float, int
]


def decode(code: "CodeObject", op_cost: dict) -> List[DecodedInstr]:
    """Flatten a code object's instructions for the fast dispatch loop."""
    entries: List[DecodedInstr] = []
    leaders = fused_block_leaders(tuple(code.instrs))
    running = 0.0
    for pc, instr in enumerate(code.instrs):
        op = instr.op
        cost = op_cost[op]
        dst, s1, s2, imm = instr.dst, instr.s1, instr.s2, instr.imm
        aux: object = None

        if op == MOp.BCC:
            kind = K_BCC
            s1 = 1 if instr.is_deopt_branch else 0
            s2 = instr.target
            aux = CC_EVAL[int(instr.cc)]
        elif op == MOp.B:
            kind = K_B
            s2 = instr.target
        elif op == MOp.LDR:
            base, index_reg, scale, disp = instr.mem
            if base == FRAME_BASE:
                kind, imm = K_LDR_FRAME, disp
            elif index_reg < 0:
                kind, s1, imm = K_LDR, base, disp
            else:
                kind, s1, s2, imm, aux = K_LDR_IDX, base, index_reg, disp, scale
        elif op == MOp.STR:
            base, index_reg, scale, disp = instr.mem
            if base == FRAME_BASE:
                kind, imm = K_STR_FRAME, disp
            else:
                kind, s2, imm = K_STR, base, disp
                aux = (index_reg, scale) if index_reg >= 0 else None
        elif op == MOp.MOVI:
            kind = K_MOVI
        elif op == MOp.MOVR:
            kind = K_MOVR
        elif op == MOp.CMPI:
            kind = K_CMPI
            s2 = int(imm) & _UINT32
        elif op == MOp.TSTI:
            kind, imm = K_TSTI, int(imm)
        elif op == MOp.CMP:
            kind = K_CMP
        elif op == MOp.TST:
            kind = K_TST
        elif op == MOp.ASRI:
            kind = K_ASRI
        elif op == MOp.LSLI:
            kind = K_LSLI
        elif op == MOp.ADDS:
            kind = K_ADDS
        elif op == MOp.ADDSI:
            kind, imm = K_ADDSI, int(imm)
        elif op == MOp.SUBS:
            kind = K_SUBS
        elif op == MOp.SUBSI:
            kind, imm = K_SUBSI, int(imm)
        elif op == MOp.MULS:
            kind = K_MULS
        elif op == MOp.NEGS:
            kind = K_NEGS
        elif op == MOp.MZCMP:
            kind = K_MZCMP
        elif op == MOp.CSET:
            kind = K_CSET
            aux = CC_EVAL[int(instr.cc)]
        elif op in _ALU_RR_FN:
            kind = K_ALU_RR
            aux = _ALU_RR_FN[op]
        elif op in _ALU_RI_FN:
            kind = K_ALU_RI
            aux, cast = _ALU_RI_FN[op]
            if cast:
                imm = int(imm)
        elif op in _FALU_RR_FN:
            kind = K_FALU_RR
            aux = _FALU_RR_FN[op]
        elif op in _FALU_R_FN:
            kind = K_FALU_R
            aux = _FALU_R_FN[op]
        elif op == MOp.FDIV:
            kind = K_FDIV
        elif op == MOp.FMOVR:
            kind = K_FMOVR
        elif op == MOp.FMOVI:
            kind, imm = K_FMOVI, float(imm)
        elif op == MOp.FCMP:
            kind = K_FCMP
        elif op == MOp.SCVTF:
            kind = K_SCVTF
        elif op == MOp.FCVTZS:
            kind = K_FCVTZS
        elif op == MOp.LDRF:
            base, index_reg, scale, disp = instr.mem
            if base == FRAME_BASE:
                kind, imm = K_LDRF_FRAME, disp
            else:
                kind, s1, s2, imm, aux = K_LDRF, base, index_reg, disp, scale
        elif op == MOp.STRF:
            base, index_reg, scale, disp = instr.mem
            if base == FRAME_BASE:
                kind, imm = K_STRF_FRAME, disp
            else:
                kind, s2, imm = K_STRF, base, disp
                aux = (index_reg, scale) if index_reg >= 0 else None
        elif op == MOp.CMP_MEM:
            kind = K_CMP_MEM
            aux = instr.mem
        elif op == MOp.CMPI_MEM:
            imm = int(imm)
            kind, s2 = K_CMPI_MEM, imm & _UINT32
            aux = instr.mem
        elif op == MOp.TSTI_MEM:
            kind, imm = K_TSTI_MEM, int(imm)
            aux = instr.mem
        elif op == MOp.JSLDRSMI:
            kind = K_JSLDRSMI
            base, index_reg, scale, disp = instr.mem
            s1, s2, imm = base, index_reg, disp
            check_id = code.smi_load_checks.get(pc, -1)
            point = code.deopt_points.get(check_id) if check_id >= 0 else None
            reason = REASON_CODES.get(point.kind, 1) if point is not None else 1
            aux = (scale, check_id, reason)
        elif op == MOp.CALL_RT:
            kind = K_CALL_RT
            name, extra = instr.aux  # type: ignore[misc]
            aux = (name, extra, tuple(instr.args), instr.returns_float)
        elif op == MOp.CALL_JS:
            kind, imm = K_CALL_JS, int(imm)
            aux = tuple(instr.args)
        elif op == MOp.CALL_DYN:
            kind = K_CALL_DYN
            aux = tuple(instr.args)
        elif op == MOp.RET:
            kind = K_RET
        elif op == MOp.DEOPT:
            kind, imm = K_DEOPT, int(imm)
        elif op == MOp.MSR:
            kind, imm = K_MSR, int(imm)
        else:  # pragma: no cover - every MOp is handled above
            raise ValueError(f"unimplemented machine op {op.name}")

        is_leader = 1 if pc in leaders else 0
        if is_leader:
            running = 0.0
        # Left-fold of the block's costs: ``prefix`` at the block's last
        # instruction is exactly the float the block executor adds in one
        # go, so step-mode and block-mode cycle totals are bit-identical.
        running = running + cost
        entries.append(
            (kind, cost, dst, s1, s2, imm, aux, instr, running, is_leader)
        )
    return entries
