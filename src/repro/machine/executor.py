"""Functional simulator for the modelled ISAs.

Executes :class:`~repro.jit.codegen.CodeObject` instructions against the
simulated heap, with:

* ARM-style flags (N/Z/C/V); flag-setting arithmetic reports *SMI-range*
  overflow, mirroring V8's tagged-arithmetic overflow behaviour (a 32-bit
  ``adds`` on tagged words overflows exactly when the 31-bit payload does);
* a pluggable fast timing model (per-class costs + branch predictor), the
  "runs on real silicon" proxy for Sections III-IV;
* optional instruction tracing for the detailed pipeline models (the gem5
  proxy for Section V);
* cycle-driven PC sampling for the perf-style profiler;
* deoptimization: taken deopt branches raise :class:`DeoptSignal`; the
  SMI-extension's ``jsldrsmi`` instead sets REG_RE/REG_PC and triggers the
  bailout at commit time, as in the paper's Fig. 12 datapath.

Each activation gets a fresh register file (register-window style), which
lets the simulator avoid modelling callee-save traffic; call costs are
charged as a lump sum instead.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..isa.base import CC, FRAME_BASE, MOp, REG_PC, REG_RE
from ..jit.checks import REASON_CODES
from ..jit.codegen import THIS_REG, CodeObject
from ..jit.deopt import DeoptSignal
from ..values.heap import Heap

_UINT32 = 0xFFFFFFFF


class CostModel:
    """Per-instruction-class cycle costs for the fast timing model.

    Calibrated to an out-of-order server core: *amortized* costs, i.e. the
    marginal cycles an extra instruction of that class adds to a wide O3
    pipeline.  Independent single-cycle ALU work (the bulk of check
    conditions) is largely absorbed by spare issue slots, so its amortized
    cost is well below one cycle; loads, stores, FP and division carry the
    real latencies; mispredicted branches pay a full redirect.  This is the
    property the paper's Section IV-B leans on: rarely-taken, correctly
    predicted deopt branches are nearly free, while condition computations
    still occupy real resources.
    """

    __slots__ = (
        "alu",
        "mov",
        "load",
        "store",
        "float_alu",
        "float_div",
        "int_div",
        "branch",
        "taken_extra",
        "mispredict_penalty",
        "call_overhead",
        "cset",
    )

    def __init__(
        self,
        alu: float = 0.18,
        mov: float = 0.10,
        load: float = 0.55,
        store: float = 0.60,
        float_alu: float = 1.0,
        float_div: float = 8.0,
        int_div: float = 6.0,
        branch: float = 0.12,
        taken_extra: float = 0.30,
        mispredict_penalty: float = 14.0,
        call_overhead: float = 20.0,
        cset: float = 0.18,
    ) -> None:
        self.alu = alu
        self.mov = mov
        self.load = load
        self.store = store
        self.float_alu = float_alu
        self.float_div = float_div
        self.int_div = int_div
        self.branch = branch
        self.taken_extra = taken_extra
        self.mispredict_penalty = mispredict_penalty
        self.call_overhead = call_overhead
        self.cset = cset

    def op_costs(self) -> dict:
        """MOp -> base cost table."""
        costs = {}
        for op in MOp:
            costs[op] = self.alu
        for op in (MOp.MOVR, MOp.MOVI, MOp.FMOVR, MOp.FMOVI):
            costs[op] = self.mov
        for op in (MOp.LDR, MOp.LDRF, MOp.JSLDRSMI):
            costs[op] = self.load
        for op in (MOp.STR, MOp.STRF):
            costs[op] = self.store
        for op in (MOp.FADD, MOp.FSUB, MOp.FMUL, MOp.FNEG, MOp.FABS, MOp.FCMP,
                   MOp.SCVTF, MOp.FCVTZS):
            costs[op] = self.float_alu
        costs[MOp.FDIV] = self.float_div
        costs[MOp.SDIV] = self.int_div
        for op in (MOp.B, MOp.BCC):
            costs[op] = self.branch
        costs[MOp.CSET] = self.cset
        for op in (MOp.CALL_JS, MOp.CALL_DYN, MOp.CALL_RT):
            costs[op] = self.call_overhead
        # Memory-operand compares pay ALU + load.
        for op in (MOp.CMP_MEM, MOp.CMPI_MEM, MOp.TSTI_MEM):
            costs[op] = self.alu + self.load
        costs[MOp.RET] = self.branch
        costs[MOp.DEOPT] = 0.0
        costs[MOp.MSR] = self.mov
        return costs


class BranchPredictor:
    """Gshare-flavoured predictor: 2-bit counters indexed by pc ^ history."""

    __slots__ = ("table", "history", "mask", "predictions", "mispredictions")

    def __init__(self, bits: int = 12) -> None:
        self.table = bytearray([1]) * (1 << bits)  # weakly not-taken
        self.history = 0
        self.mask = (1 << bits) - 1
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Returns True when the branch was mispredicted."""
        index = (pc ^ self.history) & self.mask
        counter = self.table[index]
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1
        if taken and counter < 3:
            self.table[index] = counter + 1
        elif not taken and counter > 0:
            self.table[index] = counter - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.mask
        return mispredicted


class ExecStats:
    """Hardware-counter style statistics (Fig. 10's metrics)."""

    __slots__ = (
        "instructions",
        "branches",
        "taken_branches",
        "mispredictions",
        "loads",
        "stores",
        "deopt_branch_instrs",
    )

    def __init__(self) -> None:
        self.instructions = 0
        self.branches = 0
        self.taken_branches = 0
        self.mispredictions = 0
        self.loads = 0
        self.stores = 0
        self.deopt_branch_instrs = 0

    def snapshot(self) -> dict:
        return {
            "instructions": self.instructions,
            "branches": self.branches,
            "taken_branches": self.taken_branches,
            "mispredictions": self.mispredictions,
            "loads": self.loads,
            "stores": self.stores,
            "deopt_branches": self.deopt_branch_instrs,
        }


class MachineError(Exception):
    """Simulator-level fault (corrupt code or unchecked speculation)."""


def _fits(config, value: int) -> bool:
    return config.smi_min <= value <= config.smi_max


class Executor:
    """Executes compiled code; one instance per engine."""

    def __init__(self, engine, cost_model: Optional[CostModel] = None) -> None:
        self.engine = engine
        self.heap: Heap = engine.heap
        self.cost_model = cost_model or CostModel()
        self.op_cost = self.cost_model.op_costs()
        self.predictor = BranchPredictor()
        self.stats = ExecStats()
        self.cycles = 0.0
        #: optional list; when set, every retired instruction appends
        #: (instr, taken, mem_word_addr) for the pipeline models.
        self.trace: Optional[list] = None
        #: PC sampler callback: fn(code, pc) — called on sample ticks.
        self.sampler = None
        self.sample_period = 0.0
        self._next_sample = math.inf
        #: machine state captured when a DeoptSignal is raised, for the
        #: deoptimizer's frame materialization.
        self.deopt_state = None

    def set_sampling(self, sampler, period: float) -> None:
        self.sampler = sampler
        self.sample_period = period
        self._next_sample = self.cycles + period if sampler else math.inf

    # ------------------------------------------------------------------

    def run(self, code: CodeObject, args: Sequence[int], this_word: int) -> int:
        """Execute ``code`` to completion; returns the tagged result word.

        Raises :class:`DeoptSignal` when a deoptimization check fires.
        """
        heap_words = self.heap.words
        config = self.heap.config
        smi_min, smi_max = config.smi_min, config.smi_max
        instrs = code.instrs
        regs: List[int] = [0] * code.target.gpr_count
        fregs: List[float] = [0.0] * code.target.fpr_count
        frame: List[object] = [0] * max(1, code.stack_slots)
        special = [0, 0, 0]
        for index, arg in enumerate(args):
            regs[index] = arg
        regs[THIS_REG] = this_word
        n = z = False
        c = v = False
        pc = 0
        cost = self.op_cost
        stats = self.stats
        predictor = self.predictor
        local_cycles = self.cycles
        tracing = self.trace is not None
        trace = self.trace
        engine = self.engine

        def mem_addr(mem) -> int:
            base, index_reg, scale, disp = mem
            if base == FRAME_BASE:
                return -1  # frame access marker
            address = (regs[base] >> 1) + disp
            if index_reg >= 0:
                address += regs[index_reg] << scale
            return address

        def cond(cc_value: int) -> bool:
            if cc_value == CC.EQ:
                return z
            if cc_value == CC.NE:
                return not z
            if cc_value == CC.LT:
                return n != v
            if cc_value == CC.GE:
                return n == v
            if cc_value == CC.GT:
                return (not z) and (n == v)
            if cc_value == CC.LE:
                return z or (n != v)
            if cc_value == CC.HS:
                return c
            if cc_value == CC.LO:
                return not c
            if cc_value == CC.HI:
                return c and not z
            if cc_value == CC.LS:
                return (not c) or z
            if cc_value == CC.VS:
                return v
            if cc_value == CC.VC:
                return not v
            if cc_value == CC.MI:
                return n
            return not n  # PL

        while True:
            instr = instrs[pc]
            op = instr.op
            stats.instructions += 1
            local_cycles += cost[op]
            if local_cycles >= self._next_sample:
                self._sample(code, pc, local_cycles)
            if tracing:
                trace.append((instr, False, -1))  # placeholder; patched below

            if op == MOp.LDR:
                mem = instr.mem
                stats.loads += 1
                if mem[0] == FRAME_BASE:
                    regs[instr.dst] = frame[mem[3]]  # type: ignore[assignment]
                else:
                    address = mem_addr(mem)
                    value = heap_words[address]
                    if not isinstance(value, int):
                        raise MachineError(
                            f"LDR of non-int slot {address} -> {value!r}"
                        )
                    regs[instr.dst] = value
                    if tracing:
                        trace[-1] = (instr, False, address)
                pc += 1
            elif op == MOp.STR:
                mem = instr.mem
                stats.stores += 1
                if mem[0] == FRAME_BASE:
                    frame[mem[3]] = regs[instr.s1]
                else:
                    address = mem_addr(mem)
                    heap_words[address] = regs[instr.s1]
                    if tracing:
                        trace[-1] = (instr, False, address)
                pc += 1
            elif op == MOp.MOVR:
                regs[instr.dst] = regs[instr.s1]
                pc += 1
            elif op == MOp.MOVI:
                regs[instr.dst] = instr.imm  # type: ignore[assignment]
                pc += 1
            elif op == MOp.ADD:
                regs[instr.dst] = regs[instr.s1] + regs[instr.s2]
                pc += 1
            elif op == MOp.SUB:
                regs[instr.dst] = regs[instr.s1] - regs[instr.s2]
                pc += 1
            elif op == MOp.MUL:
                regs[instr.dst] = regs[instr.s1] * regs[instr.s2]
                pc += 1
            elif op == MOp.ADDI:
                regs[instr.dst] = regs[instr.s1] + instr.imm
                pc += 1
            elif op == MOp.SUBI:
                regs[instr.dst] = regs[instr.s1] - instr.imm
                pc += 1
            elif op == MOp.LSLI:
                regs[instr.dst] = regs[instr.s1] << instr.imm
                pc += 1
            elif op == MOp.ASRI:
                regs[instr.dst] = regs[instr.s1] >> instr.imm
                pc += 1
            elif op == MOp.BCC:
                taken = cond(instr.cc)
                stats.branches += 1
                if instr.is_deopt_branch:
                    stats.deopt_branch_instrs += 1
                if predictor.predict_and_update(pc, taken):
                    stats.mispredictions += 1
                    local_cycles += self.cost_model.mispredict_penalty
                if tracing:
                    trace[-1] = (instr, taken, -1)
                if taken:
                    stats.taken_branches += 1
                    local_cycles += self.cost_model.taken_extra
                    pc = instr.target
                else:
                    pc += 1
            elif op == MOp.B:
                stats.branches += 1
                stats.taken_branches += 1
                local_cycles += self.cost_model.taken_extra
                if tracing:
                    trace[-1] = (instr, True, -1)
                pc = instr.target
            elif op == MOp.CMP:
                a, b = regs[instr.s1], regs[instr.s2]
                diff = a - b
                z = diff == 0
                n = diff < 0
                c = (a & _UINT32) >= (b & _UINT32)
                v = not (-(1 << 31) <= diff <= (1 << 31) - 1)
                pc += 1
            elif op == MOp.CMPI:
                a, b = regs[instr.s1], instr.imm
                diff = a - b
                z = diff == 0
                n = diff < 0
                c = (a & _UINT32) >= (int(b) & _UINT32)
                v = not (-(1 << 31) <= diff <= (1 << 31) - 1)
                pc += 1
            elif op == MOp.TSTI:
                masked = regs[instr.s1] & int(instr.imm)
                z = masked == 0
                n = masked < 0
                c = v = False
                pc += 1
            elif op == MOp.TST:
                masked = regs[instr.s1] & regs[instr.s2]
                z = masked == 0
                n = masked < 0
                c = v = False
                pc += 1
            elif op == MOp.ADDS or op == MOp.ADDSI:
                b = regs[instr.s2] if op == MOp.ADDS else int(instr.imm)
                result = regs[instr.s1] + b
                regs[instr.dst] = result
                z = result == 0
                n = result < 0
                v = not (smi_min <= result <= smi_max)
                c = False
                pc += 1
            elif op == MOp.SUBS or op == MOp.SUBSI:
                b = regs[instr.s2] if op == MOp.SUBS else int(instr.imm)
                result = regs[instr.s1] - b
                regs[instr.dst] = result
                z = result == 0
                n = result < 0
                v = not (smi_min <= result <= smi_max)
                c = False
                pc += 1
            elif op == MOp.MULS:
                result = regs[instr.s1] * regs[instr.s2]
                regs[instr.dst] = result
                z = result == 0
                n = result < 0
                v = not (smi_min <= result <= smi_max)
                c = False
                pc += 1
            elif op == MOp.NEGS:
                source = regs[instr.s1]
                result = -source
                regs[instr.dst] = result
                z = source == 0
                n = result < 0
                v = not (smi_min <= result <= smi_max)
                c = False
                pc += 1
            elif op == MOp.MZCMP:
                z = regs[instr.s1] == 0 and regs[instr.s2] < 0
                n = False
                c = v = False
                pc += 1
            elif op == MOp.CSET:
                regs[instr.dst] = 1 if cond(instr.cc) else 0
                pc += 1
            elif op == MOp.AND:
                regs[instr.dst] = regs[instr.s1] & regs[instr.s2]
                pc += 1
            elif op == MOp.ORR:
                regs[instr.dst] = regs[instr.s1] | regs[instr.s2]
                pc += 1
            elif op == MOp.EOR:
                regs[instr.dst] = regs[instr.s1] ^ regs[instr.s2]
                pc += 1
            elif op == MOp.ANDI:
                regs[instr.dst] = regs[instr.s1] & int(instr.imm)
                pc += 1
            elif op == MOp.ORRI:
                regs[instr.dst] = regs[instr.s1] | int(instr.imm)
                pc += 1
            elif op == MOp.EORI:
                regs[instr.dst] = regs[instr.s1] ^ int(instr.imm)
                pc += 1
            elif op == MOp.LSL:
                shift = regs[instr.s2] & 31
                result = (regs[instr.s1] << shift) & _UINT32
                if result >= 1 << 31:
                    result -= 1 << 32
                regs[instr.dst] = result
                pc += 1
            elif op == MOp.ASR:
                regs[instr.dst] = regs[instr.s1] >> (regs[instr.s2] & 31)
                pc += 1
            elif op == MOp.LSR:
                regs[instr.dst] = (regs[instr.s1] & _UINT32) >> (regs[instr.s2] & 31)
                pc += 1
            elif op == MOp.LSRI:
                regs[instr.dst] = (regs[instr.s1] & _UINT32) >> int(instr.imm)
                pc += 1
            elif op == MOp.SDIV:
                divisor = regs[instr.s2]
                if divisor == 0:
                    regs[instr.dst] = 0  # ARM semantics: division by zero -> 0
                else:
                    quotient = abs(regs[instr.s1]) // abs(divisor)
                    if (regs[instr.s1] < 0) != (divisor < 0):
                        quotient = -quotient
                    regs[instr.dst] = quotient
                pc += 1
            elif op == MOp.LDRF:
                mem = instr.mem
                stats.loads += 1
                if mem[0] == FRAME_BASE:
                    fregs[instr.dst] = frame[mem[3]]  # type: ignore[assignment]
                else:
                    address = mem_addr(mem)
                    value = heap_words[address]
                    fregs[instr.dst] = float(value)  # type: ignore[arg-type]
                    if tracing:
                        trace[-1] = (instr, False, address)
                pc += 1
            elif op == MOp.STRF:
                mem = instr.mem
                stats.stores += 1
                if mem[0] == FRAME_BASE:
                    frame[mem[3]] = fregs[instr.s1]
                else:
                    address = mem_addr(mem)
                    heap_words[address] = fregs[instr.s1]
                    if tracing:
                        trace[-1] = (instr, False, address)
                pc += 1
            elif op == MOp.FADD:
                fregs[instr.dst] = fregs[instr.s1] + fregs[instr.s2]
                pc += 1
            elif op == MOp.FSUB:
                fregs[instr.dst] = fregs[instr.s1] - fregs[instr.s2]
                pc += 1
            elif op == MOp.FMUL:
                fregs[instr.dst] = fregs[instr.s1] * fregs[instr.s2]
                pc += 1
            elif op == MOp.FDIV:
                denominator = fregs[instr.s2]
                numerator = fregs[instr.s1]
                if denominator == 0.0:
                    if numerator == 0.0 or math.isnan(numerator):
                        fregs[instr.dst] = float("nan")
                    else:
                        sign = math.copysign(1.0, numerator) * math.copysign(
                            1.0, denominator
                        )
                        fregs[instr.dst] = math.inf * sign
                else:
                    fregs[instr.dst] = numerator / denominator
                pc += 1
            elif op == MOp.FNEG:
                fregs[instr.dst] = -fregs[instr.s1]
                pc += 1
            elif op == MOp.FABS:
                fregs[instr.dst] = abs(fregs[instr.s1])
                pc += 1
            elif op == MOp.FMOVR:
                fregs[instr.dst] = fregs[instr.s1]
                pc += 1
            elif op == MOp.FMOVI:
                fregs[instr.dst] = float(instr.imm)
                pc += 1
            elif op == MOp.FCMP:
                a, b = fregs[instr.s1], fregs[instr.s2]
                if math.isnan(a) or math.isnan(b):
                    n, z, c, v = False, False, True, True
                else:
                    n = a < b
                    z = a == b
                    c = a >= b
                    v = False
                pc += 1
            elif op == MOp.SCVTF:
                fregs[instr.dst] = float(regs[instr.s1])
                pc += 1
            elif op == MOp.FCVTZS:
                # JS ToInt32 truncation semantics (wrap modulo 2^32): this is
                # what the compiler's float64->int32 lowering implements.
                value = fregs[instr.s1]
                if math.isnan(value) or math.isinf(value):
                    regs[instr.dst] = 0
                else:
                    wrapped = int(value) % 4294967296
                    regs[instr.dst] = (
                        wrapped - 4294967296 if wrapped >= 2147483648 else wrapped
                    )
                pc += 1
            elif op == MOp.JSLDRSMI:
                mem = instr.mem
                stats.loads += 1
                address = mem_addr(mem)
                value = heap_words[address]
                if tracing:
                    trace[-1] = (instr, False, address)
                if not isinstance(value, int):
                    raise MachineError(f"jsldrsmi of non-int slot {address}")
                if value & 1:
                    # Commit-time bailout (Fig. 12): update the special
                    # registers and raise through the bailout handler.
                    check_id = code.smi_load_checks.get(pc, -1)
                    special[REG_PC] = pc
                    special[REG_RE] = REASON_CODES.get(
                        code.deopt_points[check_id].kind, 1
                    ) if check_id >= 0 else 1
                    if check_id < 0:
                        raise MachineError("jsldrsmi bailout without deopt point")
                    self.cycles = local_cycles
                    self.deopt_state = (regs, fregs, frame)
                    raise DeoptSignal(check_id)
                regs[instr.dst] = value >> 1
                pc += 1
            elif op == MOp.CMP_MEM:
                address = mem_addr(instr.mem)
                stats.loads += 1
                b = heap_words[address]
                if not isinstance(b, int):
                    raise MachineError("cmp with non-int memory operand")
                a = regs[instr.s1]
                diff = a - b
                z = diff == 0
                n = diff < 0
                c = (a & _UINT32) >= (b & _UINT32)
                v = not (-(1 << 31) <= diff <= (1 << 31) - 1)
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif op == MOp.CMPI_MEM:
                address = mem_addr(instr.mem)
                stats.loads += 1
                a = heap_words[address]
                if not isinstance(a, int):
                    raise MachineError("cmp with non-int memory operand")
                b = int(instr.imm)
                diff = a - b
                z = diff == 0
                n = diff < 0
                c = (a & _UINT32) >= (b & _UINT32)
                v = not (-(1 << 31) <= diff <= (1 << 31) - 1)
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif op == MOp.TSTI_MEM:
                address = mem_addr(instr.mem)
                stats.loads += 1
                a = heap_words[address]
                masked = a & int(instr.imm)  # type: ignore[operator]
                z = masked == 0
                n = masked < 0  # type: ignore[operator]
                c = v = False
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif op == MOp.CALL_JS:
                self.cycles = local_cycles
                call_args = [regs[r] for r in instr.args]
                regs[0] = engine.call_shared(int(instr.imm), regs[THIS_REG], call_args)
                local_cycles = self.cycles
                pc += 1
            elif op == MOp.CALL_DYN:
                self.cycles = local_cycles
                call_args = [regs[r] for r in instr.args]
                regs[0] = engine.call_value(
                    regs[instr.s1], self.heap.undefined, call_args, None
                )
                local_cycles = self.cycles
                pc += 1
            elif op == MOp.CALL_RT:
                self.cycles = local_cycles
                name, extra = instr.aux  # type: ignore[misc]
                result = engine.call_runtime(
                    name, extra, [regs[r] for r in instr.args], fregs
                )
                local_cycles = self.cycles
                if instr.returns_float:
                    fregs[0] = result  # type: ignore[assignment]
                else:
                    regs[0] = result  # type: ignore[assignment]
                pc += 1
            elif op == MOp.RET:
                self.cycles = local_cycles
                return regs[instr.s1]
            elif op == MOp.DEOPT:
                self.cycles = local_cycles
                self.deopt_state = (regs, fregs, frame)
                raise DeoptSignal(int(instr.imm))
            elif op == MOp.MSR:
                special[int(instr.imm)] = regs[instr.s1]
                pc += 1
            else:  # pragma: no cover - full dispatch above
                raise MachineError(f"unimplemented machine op {op.name}")

    def _sample(self, code: CodeObject, pc: int, cycles: float) -> None:
        if self.sampler is not None:
            self.sampler.record_jit(code, pc)
            self._next_sample = cycles + self.sample_period
        else:
            self._next_sample = math.inf

    def charge_external(self, cycles: float, in_jit: bool = False) -> None:
        """Advance time for non-JIT work (interpreter, builtins, GC)."""
        self.cycles += cycles
        while self.cycles >= self._next_sample:
            if self.sampler is None:
                self._next_sample = math.inf
                return
            self.sampler.record_other()
            self._next_sample += self.sample_period
