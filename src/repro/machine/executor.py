"""Functional simulator for the modelled ISAs.

Executes :class:`~repro.jit.codegen.CodeObject` instructions against the
simulated heap, with:

* ARM-style flags (N/Z/C/V); flag-setting arithmetic reports *SMI-range*
  overflow, mirroring V8's tagged-arithmetic overflow behaviour (a 32-bit
  ``adds`` on tagged words overflows exactly when the 31-bit payload does);
* a pluggable fast timing model (per-class costs + branch predictor), the
  "runs on real silicon" proxy for Sections III-IV;
* optional instruction tracing for the detailed pipeline models (the gem5
  proxy for Section V);
* cycle-driven PC sampling for the perf-style profiler;
* deoptimization: taken deopt branches raise :class:`DeoptSignal`; the
  SMI-extension's ``jsldrsmi`` instead sets REG_RE/REG_PC and triggers the
  bailout at commit time, as in the paper's Fig. 12 datapath.

Each activation gets a fresh register file (register-window style), which
lets the simulator avoid modelling callee-save traffic; call costs are
charged as a lump sum instead.

Execution is two-tier (see DESIGN.md "Two-tier executor"):

* the **step loop** (:meth:`Executor._run_steps`) retires one decoded
  instruction per iteration and *defines* the timing/sampling semantics;
* the **block executor** (:meth:`Executor._run_blocks`, built by
  :mod:`repro.machine.blockjit`) retires whole basic blocks through fused
  closures, charging each block's precomputed cycle total in one add, and
  bails to a per-block stepped variant whenever per-instruction fidelity
  is required (a PC sample due inside the block, or a pending injected
  deopt trip).  Tracing for the pipeline models disables block mode
  entirely.  Both tiers share the block-relative cycle prefixes computed
  by :func:`repro.machine.dispatch.decode`, so results, cycle totals,
  sample attributions and deopt pcs are bit-identical between them.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..isa.base import MOp, REG_PC, REG_RE  # noqa: F401  (REG_RE: public re-export)
from ..jit.codegen import THIS_REG, CodeObject
from ..jit.deopt import DeoptSignal
from ..values.heap import Heap
from .dispatch import (
    K_ADDS,
    K_ADDSI,
    K_ALU_RI,
    K_ALU_RR,
    K_ASRI,
    K_B,
    K_BCC,
    K_CALL_DYN,
    K_CALL_JS,
    K_CALL_RT,
    K_CMP,
    K_CMP_MEM,
    K_CMPI,
    K_CMPI_MEM,
    K_CSET,
    K_DEOPT,
    K_FALU_R,
    K_FALU_RR,
    K_FCMP,
    K_FCVTZS,
    K_FDIV,
    K_FMOVI,
    K_FMOVR,
    K_JSLDRSMI,
    K_LDR,
    K_LDR_FRAME,
    K_LDR_IDX,
    K_LDRF,
    K_LDRF_FRAME,
    K_LSLI,
    K_MOVI,
    K_MOVR,
    K_MSR,
    K_MULS,
    K_MZCMP,
    K_NEGS,
    K_RET,
    K_SCVTF,
    K_STR,
    K_STR_FRAME,
    K_STRF,
    K_STRF_FRAME,
    K_SUBS,
    K_SUBSI,
    K_TST,
    K_TSTI,
    K_TSTI_MEM,
    decode,
)

_UINT32 = 0xFFFFFFFF


class CostModel:
    """Per-instruction-class cycle costs for the fast timing model.

    Calibrated to an out-of-order server core: *amortized* costs, i.e. the
    marginal cycles an extra instruction of that class adds to a wide O3
    pipeline.  Independent single-cycle ALU work (the bulk of check
    conditions) is largely absorbed by spare issue slots, so its amortized
    cost is well below one cycle; loads, stores, FP and division carry the
    real latencies; mispredicted branches pay a full redirect.  This is the
    property the paper's Section IV-B leans on: rarely-taken, correctly
    predicted deopt branches are nearly free, while condition computations
    still occupy real resources.
    """

    __slots__ = (
        "alu",
        "mov",
        "load",
        "store",
        "float_alu",
        "float_div",
        "int_div",
        "branch",
        "taken_extra",
        "mispredict_penalty",
        "call_overhead",
        "cset",
    )

    def __init__(
        self,
        alu: float = 0.18,
        mov: float = 0.10,
        load: float = 0.55,
        store: float = 0.60,
        float_alu: float = 1.0,
        float_div: float = 8.0,
        int_div: float = 6.0,
        branch: float = 0.12,
        taken_extra: float = 0.30,
        mispredict_penalty: float = 14.0,
        call_overhead: float = 20.0,
        cset: float = 0.18,
    ) -> None:
        self.alu = alu
        self.mov = mov
        self.load = load
        self.store = store
        self.float_alu = float_alu
        self.float_div = float_div
        self.int_div = int_div
        self.branch = branch
        self.taken_extra = taken_extra
        self.mispredict_penalty = mispredict_penalty
        self.call_overhead = call_overhead
        self.cset = cset

    def op_costs(self) -> dict:
        """MOp -> base cost table."""
        costs = {}
        for op in MOp:
            costs[op] = self.alu
        for op in (MOp.MOVR, MOp.MOVI, MOp.FMOVR, MOp.FMOVI):
            costs[op] = self.mov
        for op in (MOp.LDR, MOp.LDRF, MOp.JSLDRSMI):
            costs[op] = self.load
        for op in (MOp.STR, MOp.STRF):
            costs[op] = self.store
        for op in (MOp.FADD, MOp.FSUB, MOp.FMUL, MOp.FNEG, MOp.FABS, MOp.FCMP,
                   MOp.SCVTF, MOp.FCVTZS):
            costs[op] = self.float_alu
        costs[MOp.FDIV] = self.float_div
        costs[MOp.SDIV] = self.int_div
        for op in (MOp.B, MOp.BCC):
            costs[op] = self.branch
        costs[MOp.CSET] = self.cset
        for op in (MOp.CALL_JS, MOp.CALL_DYN, MOp.CALL_RT):
            costs[op] = self.call_overhead
        # Memory-operand compares pay ALU + load.
        for op in (MOp.CMP_MEM, MOp.CMPI_MEM, MOp.TSTI_MEM):
            costs[op] = self.alu + self.load
        costs[MOp.RET] = self.branch
        costs[MOp.DEOPT] = 0.0
        costs[MOp.MSR] = self.mov
        return costs


class BranchPredictor:
    """Gshare-flavoured predictor: 2-bit counters indexed by pc ^ history."""

    __slots__ = ("table", "history", "mask", "predictions", "mispredictions")

    def __init__(self, bits: int = 12) -> None:
        self.table = bytearray([1]) * (1 << bits)  # weakly not-taken
        self.history = 0
        self.mask = (1 << bits) - 1
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Returns True when the branch was mispredicted."""
        index = (pc ^ self.history) & self.mask
        counter = self.table[index]
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1
        if taken and counter < 3:
            self.table[index] = counter + 1
        elif not taken and counter > 0:
            self.table[index] = counter - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.mask
        return mispredicted


class ExecStats:
    """Hardware-counter style statistics (Fig. 10's metrics)."""

    __slots__ = (
        "instructions",
        "branches",
        "taken_branches",
        "mispredictions",
        "loads",
        "stores",
        "deopt_branch_instrs",
    )

    def __init__(self) -> None:
        self.instructions = 0
        self.branches = 0
        self.taken_branches = 0
        self.mispredictions = 0
        self.loads = 0
        self.stores = 0
        self.deopt_branch_instrs = 0

    def snapshot(self) -> dict:
        return {
            "instructions": self.instructions,
            "branches": self.branches,
            "taken_branches": self.taken_branches,
            "mispredictions": self.mispredictions,
            "loads": self.loads,
            "stores": self.stores,
            "deopt_branches": self.deopt_branch_instrs,
        }


class MachineError(Exception):
    """Simulator-level fault (corrupt code or unchecked speculation)."""


def _fits(config, value: int) -> bool:
    return config.smi_min <= value <= config.smi_max


class Executor:
    """Executes compiled code; one instance per engine."""

    def __init__(self, engine, cost_model: Optional[CostModel] = None) -> None:
        self.engine = engine
        self.heap: Heap = engine.heap
        self.cost_model = cost_model or CostModel()
        self.op_cost = self.cost_model.op_costs()
        self.predictor = BranchPredictor()
        self.stats = ExecStats()
        self.cycles = 0.0
        #: optional list; when set, every retired instruction appends
        #: (instr, taken, mem_word_addr) for the pipeline models.
        self.trace: Optional[list] = None
        #: PC sampler callback: fn(code, pc) — called on sample ticks.
        self.sampler = None
        self.sample_period = 0.0
        self._next_sample = math.inf
        #: machine state captured when a DeoptSignal is raised, for the
        #: deoptimizer's frame materialization.
        self.deopt_state = None
        #: fault-injection budget: when positive, the next executed deopt
        #: branch whose condition did NOT fire is taken anyway (a spurious
        #: deopt).  The state transfer must still be correct — the
        #: differential oracle in repro.resilience asserts exactly that.
        #: While trips are pending, the block executor routes every block
        #: through its stepped tier so the trip lands on the exact branch.
        self.forced_deopt_trips = 0
        #: block-compiled execution (repro.machine.blockjit); wired by the
        #: engine from EngineConfig.blockjit / REPRO_BLOCKJIT.
        self.blockjit = False
        #: typed block variants (repro.analysis.typeflow plans consumed by
        #: repro.machine.blockjit); wired by the engine from
        #: EngineConfig.typed_blocks / REPRO_TYPED_BLOCKS.
        self.typed_blocks = False
        #: trace tier (repro.machine.tracejit): hot block chains compiled
        #: into loop-spanning, call-chaining closures.  Wired by the
        #: engine from EngineConfig.tracejit / REPRO_TRACEJIT; only
        #: meaningful while ``blockjit`` is also set.
        self.tracejit = False
        #: lazy basic block versioning (repro.machine.lbbv): runtime
        #: type-state-specialized block versions with guard-free
        #: chaining.  Wired by the engine from EngineConfig.lbbv /
        #: REPRO_LBBV; only meaningful while ``blockjit`` and
        #: ``typed_blocks`` are also set (versions are keyed on the
        #: typed tier's fact vocabulary).
        self.lbbv = False
        #: python-level typed-tier counters (never part of ExecStats or
        #: the simulated cycle model): [branch checks elided, condition
        #: instructions elided or folded, jsldrsmi tag tests elided,
        #: entry guards evaluated, guard failures, version entries via
        #: dispatcher, version body executions] — chained (guard-free)
        #: version entries are executions minus dispatcher entries.
        self.typed_counters = [0, 0, 0, 0, 0, 0, 0]
        #: result word stashed by a fused RET block for the block driver.
        self.ret_value = 0
        #: optional repro.supervise.sentinel.DivergenceSentinel; wired by
        #: the engine from EngineConfig.audit / REPRO_AUDIT.  When set,
        #: block execution runs through the audit-aware driver loop.
        self._audit = None

    def set_sampling(self, sampler, period: float) -> None:
        self.sampler = sampler
        self.sample_period = period
        self._next_sample = self.cycles + period if sampler else math.inf

    def next_sample_due(self) -> float:
        """Simulated cycle at which the next PC sample fires (inf when
        sampling is off).  The block executor's fused tier runs a block
        only when the block's exit cycle count stays below this due point
        (see :func:`repro.profiling.sampler.window_straddles_tick`)."""
        return self._next_sample

    # ------------------------------------------------------------------

    def run(self, code: CodeObject, args: Sequence[int], this_word: int) -> int:
        """Execute ``code`` to completion; returns the tagged result word.

        Raises :class:`DeoptSignal` when a deoptimization check fires.

        Dispatches to the block-compiled executor when enabled; the
        per-instruction step loop remains the semantic reference and the
        only tier that supports tracing for the pipeline models.  A code
        object demoted by the divergence sentinel
        (:mod:`repro.supervise.sentinel`) stays on the step tier for the
        rest of the process.
        """
        rung = code._tier_rung
        if (
            self.blockjit
            and self.trace is None
            and not code._supervise_demoted
            and rung < 4  # continuations.RUNG_STEPPED: step loop only
        ):
            # Trace promotion is a rung-0 privilege: the first ladder
            # descent (continuations.RUNG_NOTRACE) already drops it.
            if self.tracejit and rung == 0:
                from .tracejit import run_traced

                return run_traced(self, code, args, this_word)
            return self._run_blocks(code, args, this_word)
        return self._run_steps(code, args, this_word)

    def _run_blocks(
        self, code: CodeObject, args: Sequence[int], this_word: int
    ) -> int:
        """Block-compiled execution (repro.machine.blockjit).

        Retires one fused basic block per iteration.  Statistics are
        charged block-at-a-time by a generated prologue inside each
        closure, from precomputed static counts (exactly what the step
        loop accumulates one instruction at a time — every raise point is
        a block's last instruction, so the batched counts never overrun
        the stepped ones).  A block whose cycle window may contain a
        sample tick, or any block while an injected deopt trip is
        pending, runs through its stepped twin instead of its fused
        closure.
        """
        from .blockjit import compile_blocks

        table = code._blocks
        if table is None or table.executor is not self:
            table = code._blocks = compile_blocks(code, self)
        if self.lbbv:
            versions = code._versions
            if versions is None or versions.table is not table:
                from .lbbv import attach_versions

                attach_versions(code, table, self)
        regs: List[int] = [0] * code.target.gpr_count
        fregs: List[float] = [0.0] * code.target.fpr_count
        frame: List[object] = [0] * max(1, code.stack_slots)
        special = [0, 0, 0]
        for index, arg in enumerate(args):
            regs[index] = arg
        regs[THIS_REG] = this_word
        heap_words = self.heap.words
        blocks = table.driver
        local_cycles = self.cycles
        bid = 0
        if table.flags_live:
            # Rare ABI: some block reads flags it did not set, so the
            # closures thread (n, z, c, v) through their signature.
            n = z = c = v = False
            while True:
                total_cost, fused, stepped = blocks[bid]
                exit_cycles = local_cycles + total_cost
                if (exit_cycles >= self._next_sample
                        or self.forced_deopt_trips > 0):
                    bid, local_cycles, n, z, c, v = stepped(
                        regs, fregs, frame, special, heap_words,
                        local_cycles, n, z, c, v,
                    )
                else:
                    bid, local_cycles, n, z, c, v = fused(
                        regs, fregs, frame, special, heap_words,
                        exit_cycles, n, z, c, v,
                    )
                if bid < 0:
                    return self.ret_value
        audit = self._audit
        if audit is not None:
            # Divergence-sentinel variant of the loop below, inline so a
            # call-heavy workload (thousands of tiny activations) pays no
            # extra call frame per activation.  The schedule is anchored
            # to the global ``stats.instructions`` counter (already kept
            # current by every closure prologue), so progress towards the
            # next audit spans nested and recursive activations.  Each
            # activation holds the due threshold in a local and re-reads
            # ``audit.due`` when its (possibly stale) local fires — if a
            # descendant activation already audited and advanced the
            # threshold, this one stands down instead of double-auditing.
            # A due audit waits for the next *auditable* block.  Demotion
            # needs no per-block check: BlockTable.demote rewrites the
            # driver costs to inf, so in-flight loops (this one and
            # nested activations') fall onto the stepped route via the
            # sample-window condition.
            auditable = table.auditable
            stats = self.stats
            due = audit.due
            while True:
                total_cost, fused, stepped = blocks[bid]
                exit_cycles = local_cycles + total_cost
                if exit_cycles >= self._next_sample or self.forced_deopt_trips > 0:
                    bid, local_cycles = stepped(
                        regs, fregs, frame, special, heap_words, local_cycles,
                    )
                    if bid < 0:
                        return self.ret_value
                    continue
                if stats.instructions >= due and auditable[bid]:
                    due = audit.due
                    if stats.instructions >= due:
                        audit.audit_block(
                            self, code, table, bid, regs, fregs, frame,
                            special, local_cycles,
                        )
                        due = audit.due = (
                            stats.instructions + audit.next_interval()
                        )
                        if table.demoted:
                            # The audit just demoted this very code
                            # object: run the real execution through the
                            # reference twin so its side effects happen
                            # exactly once.
                            bid, local_cycles = stepped(
                                regs, fregs, frame, special, heap_words,
                                local_cycles,
                            )
                            if bid < 0:
                                return self.ret_value
                            continue
                bid, local_cycles = fused(
                    regs, fregs, frame, special, heap_words, exit_cycles,
                )
                if bid < 0:
                    return self.ret_value
        while True:
            total_cost, fused, stepped = blocks[bid]
            exit_cycles = local_cycles + total_cost
            # Inline window_straddles_tick(self._next_sample, exit_cycles):
            # a sample tick inside the block forces per-pc attribution.
            # Both attributes must be re-read per block — nested calls
            # inside a block move the sample clock and consume trips.
            if exit_cycles >= self._next_sample or self.forced_deopt_trips > 0:
                bid, local_cycles = stepped(
                    regs, fregs, frame, special, heap_words, local_cycles,
                )
            else:
                bid, local_cycles = fused(
                    regs, fregs, frame, special, heap_words, exit_cycles,
                )
            if bid < 0:
                return self.ret_value

    def _run_steps(
        self, code: CodeObject, args: Sequence[int], this_word: int
    ) -> int:
        """The per-instruction step loop (the timing/sampling reference).

        The loop dispatches over :mod:`repro.machine.dispatch` decoded
        entries (cached on the code object at first execution) instead of
        raw :class:`MachineInstr` objects; the chain below is ordered by
        measured dynamic frequency over the suite.
        """
        heap_words = self.heap.words
        config = self.heap.config
        smi_min, smi_max = config.smi_min, config.smi_max
        decoded = code._decoded
        if decoded is None:
            decoded = code._decoded = decode(code, self.op_cost)
        regs: List[int] = [0] * code.target.gpr_count
        fregs: List[float] = [0.0] * code.target.fpr_count
        frame: List[object] = [0] * max(1, code.stack_slots)
        special = [0, 0, 0]
        for index, arg in enumerate(args):
            regs[index] = arg
        regs[THIS_REG] = this_word
        n = z = False
        c = v = False
        pc = 0
        stats = self.stats
        predictor = self.predictor
        predict_and_update = predictor.predict_and_update
        local_cycles = self.cycles
        tracing = self.trace is not None
        trace = self.trace
        engine = self.engine
        next_sample = self._next_sample
        taken_extra = self.cost_model.taken_extra
        mispredict_penalty = self.cost_model.mispredict_penalty

        entry_cycles = local_cycles
        while True:
            kind, cost, dst, s1, s2, imm, aux, instr, prefix, leader = decoded[pc]
            stats.instructions += 1
            # Block-relative accounting: ``entry + prefix`` at a block's
            # last instruction is the very float the block executor's
            # single ``entry + total`` add produces, keeping the two
            # tiers' cycle totals bit-identical.
            if leader:
                entry_cycles = local_cycles
            local_cycles = entry_cycles + prefix
            if local_cycles >= next_sample:
                self._sample(code, pc, local_cycles)
                next_sample = self._next_sample
            if tracing:
                trace.append((instr, False, -1))  # placeholder; patched below

            if kind == K_BCC:
                taken = aux(n, z, c, v)
                stats.branches += 1
                if s1:
                    stats.deopt_branch_instrs += 1
                    if not taken and self.forced_deopt_trips > 0:
                        # Injected speculation fault: take the deopt branch
                        # even though the guarded condition holds.
                        self.forced_deopt_trips -= 1
                        taken = True
                if predict_and_update(pc, taken):
                    stats.mispredictions += 1
                    local_cycles += mispredict_penalty
                if tracing:
                    trace[-1] = (instr, taken, -1)
                if taken:
                    stats.taken_branches += 1
                    local_cycles += taken_extra
                    pc = s2
                else:
                    pc += 1
            elif kind == K_LDR:
                stats.loads += 1
                address = (regs[s1] >> 1) + imm
                value = heap_words[address]
                if not isinstance(value, int):
                    raise MachineError(
                        f"LDR of non-int slot {address} -> {value!r}"
                    )
                regs[dst] = value
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif kind == K_LDR_IDX:
                stats.loads += 1
                address = (regs[s1] >> 1) + (regs[s2] << aux) + imm
                value = heap_words[address]
                if not isinstance(value, int):
                    raise MachineError(
                        f"LDR of non-int slot {address} -> {value!r}"
                    )
                regs[dst] = value
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif kind == K_MOVI:
                regs[dst] = imm
                pc += 1
            elif kind == K_MOVR:
                regs[dst] = regs[s1]
                pc += 1
            elif kind == K_CMPI:
                a = regs[s1]
                diff = a - imm
                z = diff == 0
                n = diff < 0
                c = (a & _UINT32) >= s2
                v = not (-2147483648 <= diff <= 2147483647)
                pc += 1
            elif kind == K_TSTI:
                masked = regs[s1] & imm
                z = masked == 0
                n = masked < 0
                c = v = False
                pc += 1
            elif kind == K_CMP:
                a, b = regs[s1], regs[s2]
                diff = a - b
                z = diff == 0
                n = diff < 0
                c = (a & _UINT32) >= (b & _UINT32)
                v = not (-2147483648 <= diff <= 2147483647)
                pc += 1
            elif kind == K_ASRI:
                regs[dst] = regs[s1] >> imm
                pc += 1
            elif kind == K_B:
                stats.branches += 1
                stats.taken_branches += 1
                local_cycles += taken_extra
                if tracing:
                    trace[-1] = (instr, True, -1)
                pc = s2
            elif kind == K_ADDS:
                result = regs[s1] + regs[s2]
                regs[dst] = result
                z = result == 0
                n = result < 0
                v = not (smi_min <= result <= smi_max)
                c = False
                pc += 1
            elif kind == K_ADDSI:
                result = regs[s1] + imm
                regs[dst] = result
                z = result == 0
                n = result < 0
                v = not (smi_min <= result <= smi_max)
                c = False
                pc += 1
            elif kind == K_LSLI:
                regs[dst] = regs[s1] << imm
                pc += 1
            elif kind == K_CALL_RT:
                self.cycles = local_cycles
                name, extra, call_regs, returns_float = aux
                result = engine.call_runtime(
                    name, extra, [regs[r] for r in call_regs], fregs
                )
                local_cycles = self.cycles
                next_sample = self._next_sample
                if returns_float:
                    fregs[0] = result  # type: ignore[assignment]
                else:
                    regs[0] = result  # type: ignore[assignment]
                pc += 1
            elif kind == K_CSET:
                regs[dst] = 1 if aux(n, z, c, v) else 0
                pc += 1
            elif kind == K_CMPI_MEM:
                base, index_reg, scale, disp = aux
                address = (regs[base] >> 1) + disp
                if index_reg >= 0:
                    address += regs[index_reg] << scale
                stats.loads += 1
                a = heap_words[address]
                if not isinstance(a, int):
                    raise MachineError("cmp with non-int memory operand")
                diff = a - imm
                z = diff == 0
                n = diff < 0
                c = (a & _UINT32) >= s2
                v = not (-2147483648 <= diff <= 2147483647)
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif kind == K_CMP_MEM:
                base, index_reg, scale, disp = aux
                address = (regs[base] >> 1) + disp
                if index_reg >= 0:
                    address += regs[index_reg] << scale
                stats.loads += 1
                b = heap_words[address]
                if not isinstance(b, int):
                    raise MachineError("cmp with non-int memory operand")
                a = regs[s1]
                diff = a - b
                z = diff == 0
                n = diff < 0
                c = (a & _UINT32) >= (b & _UINT32)
                v = not (-2147483648 <= diff <= 2147483647)
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif kind == K_STR:
                stats.stores += 1
                address = (regs[s2] >> 1) + imm
                if aux is not None:
                    address += regs[aux[0]] << aux[1]
                heap_words[address] = regs[s1]
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif kind == K_STR_FRAME:
                stats.stores += 1
                frame[imm] = regs[s1]
                pc += 1
            elif kind == K_LDR_FRAME:
                stats.loads += 1
                regs[dst] = frame[imm]  # type: ignore[assignment]
                pc += 1
            elif kind == K_SCVTF:
                fregs[dst] = float(regs[s1])
                pc += 1
            elif kind == K_ALU_RR:
                regs[dst] = aux(regs[s1], regs[s2])
                pc += 1
            elif kind == K_ALU_RI:
                regs[dst] = aux(regs[s1], imm)
                pc += 1
            elif kind == K_SUBS:
                result = regs[s1] - regs[s2]
                regs[dst] = result
                z = result == 0
                n = result < 0
                v = not (smi_min <= result <= smi_max)
                c = False
                pc += 1
            elif kind == K_SUBSI:
                result = regs[s1] - imm
                regs[dst] = result
                z = result == 0
                n = result < 0
                v = not (smi_min <= result <= smi_max)
                c = False
                pc += 1
            elif kind == K_MULS:
                result = regs[s1] * regs[s2]
                regs[dst] = result
                z = result == 0
                n = result < 0
                v = not (smi_min <= result <= smi_max)
                c = False
                pc += 1
            elif kind == K_NEGS:
                source = regs[s1]
                result = -source
                regs[dst] = result
                z = source == 0
                n = result < 0
                v = not (smi_min <= result <= smi_max)
                c = False
                pc += 1
            elif kind == K_TST:
                masked = regs[s1] & regs[s2]
                z = masked == 0
                n = masked < 0
                c = v = False
                pc += 1
            elif kind == K_MZCMP:
                z = regs[s1] == 0 and regs[s2] < 0
                n = False
                c = v = False
                pc += 1
            elif kind == K_FALU_RR:
                fregs[dst] = aux(fregs[s1], fregs[s2])
                pc += 1
            elif kind == K_FALU_R:
                fregs[dst] = aux(fregs[s1])
                pc += 1
            elif kind == K_FDIV:
                denominator = fregs[s2]
                numerator = fregs[s1]
                if denominator == 0.0:
                    if numerator == 0.0 or math.isnan(numerator):
                        fregs[dst] = float("nan")
                    else:
                        sign = math.copysign(1.0, numerator) * math.copysign(
                            1.0, denominator
                        )
                        fregs[dst] = math.inf * sign
                else:
                    fregs[dst] = numerator / denominator
                pc += 1
            elif kind == K_FMOVR:
                fregs[dst] = fregs[s1]
                pc += 1
            elif kind == K_FMOVI:
                fregs[dst] = imm
                pc += 1
            elif kind == K_FCMP:
                a, b = fregs[s1], fregs[s2]
                if math.isnan(a) or math.isnan(b):
                    n, z, c, v = False, False, True, True
                else:
                    n = a < b
                    z = a == b
                    c = a >= b
                    v = False
                pc += 1
            elif kind == K_FCVTZS:
                # JS ToInt32 truncation semantics (wrap modulo 2^32): this is
                # what the compiler's float64->int32 lowering implements.
                value = fregs[s1]
                if math.isnan(value) or math.isinf(value):
                    regs[dst] = 0
                else:
                    wrapped = int(value) % 4294967296
                    regs[dst] = (
                        wrapped - 4294967296 if wrapped >= 2147483648 else wrapped
                    )
                pc += 1
            elif kind == K_LDRF:
                stats.loads += 1
                address = (regs[s1] >> 1) + imm
                if s2 >= 0:
                    address += regs[s2] << aux
                value = heap_words[address]
                fregs[dst] = float(value)  # type: ignore[arg-type]
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif kind == K_LDRF_FRAME:
                stats.loads += 1
                fregs[dst] = frame[imm]  # type: ignore[assignment]
                pc += 1
            elif kind == K_STRF:
                stats.stores += 1
                address = (regs[s2] >> 1) + imm
                if aux is not None:
                    address += regs[aux[0]] << aux[1]
                heap_words[address] = fregs[s1]
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif kind == K_STRF_FRAME:
                stats.stores += 1
                frame[imm] = fregs[s1]
                pc += 1
            elif kind == K_TSTI_MEM:
                base, index_reg, scale, disp = aux
                address = (regs[base] >> 1) + disp
                if index_reg >= 0:
                    address += regs[index_reg] << scale
                stats.loads += 1
                a = heap_words[address]
                masked = a & imm  # type: ignore[operator]
                z = masked == 0
                n = masked < 0  # type: ignore[operator]
                c = v = False
                if tracing:
                    trace[-1] = (instr, False, address)
                pc += 1
            elif kind == K_JSLDRSMI:
                stats.loads += 1
                address = (regs[s1] >> 1) + imm
                if s2 >= 0:
                    address += regs[s2] << aux[0]
                value = heap_words[address]
                if tracing:
                    trace[-1] = (instr, False, address)
                if not isinstance(value, int):
                    raise MachineError(f"jsldrsmi of non-int slot {address}")
                if value & 1:
                    # Commit-time bailout (Fig. 12): update the special
                    # registers and raise through the bailout handler.
                    check_id = aux[1]
                    special[REG_PC] = pc
                    special[REG_RE] = aux[2] if check_id >= 0 else 1
                    if check_id < 0:
                        raise MachineError("jsldrsmi bailout without deopt point")
                    self.cycles = local_cycles
                    self.deopt_state = (regs, fregs, frame)
                    raise DeoptSignal(check_id)
                regs[dst] = value >> 1
                pc += 1
            elif kind == K_CALL_JS:
                self.cycles = local_cycles
                call_args = [regs[r] for r in aux]
                regs[0] = engine.call_shared(imm, regs[THIS_REG], call_args)
                local_cycles = self.cycles
                next_sample = self._next_sample
                pc += 1
            elif kind == K_CALL_DYN:
                self.cycles = local_cycles
                call_args = [regs[r] for r in aux]
                regs[0] = engine.call_value(
                    regs[s1], self.heap.undefined, call_args, None
                )
                local_cycles = self.cycles
                next_sample = self._next_sample
                pc += 1
            elif kind == K_RET:
                self.cycles = local_cycles
                return regs[s1]
            elif kind == K_DEOPT:
                self.cycles = local_cycles
                self.deopt_state = (regs, fregs, frame)
                raise DeoptSignal(imm)
            elif kind == K_MSR:
                special[imm] = regs[s1]
                pc += 1
            else:  # pragma: no cover - decode() covers every MOp
                raise MachineError(f"unimplemented dispatch kind {kind}")

    def _sample(self, code: CodeObject, pc: int, cycles: float) -> None:
        if self.sampler is not None:
            self.sampler.record_jit(code, pc)
            self._next_sample = cycles + self.sample_period
        else:
            self._next_sample = math.inf

    def charge_external(self, cycles: float, in_jit: bool = False) -> None:
        """Advance time for non-JIT work (interpreter, builtins, GC)."""
        self.cycles += cycles
        while self.cycles >= self._next_sample:
            if self.sampler is None:
                self._next_sample = math.inf
                return
            self.sampler.record_other()
            self._next_sample += self.sample_period
