"""Lazy basic block versioning: runtime type-state-specialized blocks.

The typed tier (PR 6, DESIGN.md §11) specializes each fused block once,
on facts provable on *every* path to it, behind hoisted entry guards.
This module implements lazy basic block versioning (Chevalier-Boisvert &
Feeley, arXiv 1411.0352; typed shapes in 1507.02437) on top of the same
machinery: a block may hold up to :data:`MAX_VERSIONS` *versions*, each
keyed by an incoming type-state drawn from the typeflow fact vocabulary
(parity / constant / map / bounds / packed-smi —
:data:`repro.analysis.typeflow.GUARDABLE_FACTS`), with version bodies
generated lazily on the first execution that actually reaches the state.

Three mechanisms, in increasing order of payoff:

* **Dispatch.** A block that would benefit from a version gets its
  driver slot wrapped in a generated *dispatcher*: a nested sequence of
  the shared guard tests (:meth:`_BlockCompiler._guard_test` — the very
  same predicates the typed tier hoists) that tail-calls the first
  version whose key facts all hold, falling back to the original fused
  closure (typed or generic) otherwise.

* **Lazy bodies.** A version is *registered* with a placeholder closure
  appended to the driver; the placeholder compiles the real body on the
  version's first execution, patches its driver slot, and tail-calls the
  compiled body with the entry state untouched — zero simulated cycles,
  exactly like the process-wide source cache in blockjit.

* **Guard-free chaining.** A version body's exit indices are rewritten
  at compile time: an edge whose propagated fact state establishes a
  successor version's entire key jumps to that *version* directly —
  the successor runs **zero entry guards** because the predecessor's
  state already proved them.  Every chained edge is recorded in the
  version table and re-derived by mclint's ``version-entry-guard``
  invariant (:func:`repro.analysis.mclint.check_version_chains`).

Fidelity contract — *a version may side-exit, never diverge*: a version
body is the block's typed-variant body (identical cycle charging,
predictor updates and counter deltas) whose driver entry shares the base
block's ``total_cost`` and generic **stepped twin**, so sample-window
routing, forced-trip consumption and demotion behave bit-identically to
the base slot; only python-level ``tstat``/``vstat`` diagnostics and the
(interchangeable) block indices differ.  The divergence sentinel
shadow-executes versions against the base stepped twin
(:meth:`repro.supervise.sentinel.DivergenceSentinel.audit_version`) and
a mismatch demotes the whole version table with its block table.

Past :data:`MAX_VERSIONS` states per block the table **widens**: the
request returns the generic/base block id and counts the event, which
bounds the version population at ``MAX_VERSIONS × n_blocks`` and makes
specialization provably terminating (tests assert the cap).

``REPRO_LBBV`` turns the tier off; it defaults on wherever typed blocks
are on (versioning is meaningless without the typed vocabulary, and the
executor gates it accordingly).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from .blockjit import _COMPILED_SOURCES, _BlockCompiler

if TYPE_CHECKING:
    from ..jit.codegen import CodeObject
    from .blockjit import BlockTable
    from .executor import Executor

#: versions per block before the table widens to the generic/base block.
MAX_VERSIONS = 4


def default_lbbv() -> bool:
    """Process-wide default for lazy block versioning (REPRO_LBBV)."""
    return os.environ.get("REPRO_LBBV", "1").lower() not in (
        "0", "false", "off", "no",
    )


def _poison(regs, fregs, frame, special, heap, cycles):
    """Driver slot ``n_blocks`` once version entries exist past it.

    Before versioning, a corrupt/off-end block id raised ``IndexError``
    straight from the driver indexing; appending version entries would
    silently swallow that, so the sentinel slot re-raises the exact
    error the bare list lookup produced.
    """
    raise IndexError("list index out of range")


class BlockVersion:
    """One registered version of one fused block."""

    __slots__ = ("bid", "key", "index", "slot", "plan", "compiled",
                 "negated", "chained_out")

    def __init__(self, bid: int, key: FrozenSet) -> None:
        self.bid = bid
        #: guardable facts this version assumes *beyond* the block's
        #: static entry state (canonical identity; tested by the
        #: dispatcher, promised by chained edges).
        self.key = key
        #: driver index of this version (>= n_blocks + 1)
        self.index = -1
        #: index into VersionTable.hits
        self.slot = -1
        #: guard-free TypedBlockPlan, or None for a pass-through version
        #: kept only for chain continuity / negated-state re-dispatch
        self.plan = None
        self.compiled = None
        #: True when seeded from a tripped guard's negated state
        self.negated = False
        #: recorded guard-free chained edges: (successor base bid,
        #: target driver index).  mclint re-derives the skipped facts —
        #: the target version's full key — and checks this version's
        #: propagated edge state establishes every one of them.
        self.chained_out: List[Tuple[int, int]] = []


class _VersionCompiler(_BlockCompiler):
    """Block compiler variant that redirects exit indices into versions.

    Reuses every emission path of :class:`_BlockCompiler` — bodies are
    byte-equal to the typed variants the static tier would generate —
    and only overrides target resolution: exits whose edge state proved
    a successor version's key jump to the version's driver index.
    """

    def __init__(self, code: "CodeObject", executor: "Executor",
                 table: "BlockTable") -> None:
        super().__init__(code, executor)
        self.block_of = table.block_of
        self.n_blocks = len(table.spans)
        self.flags_live = False  # versions are never built under flags ABI
        #: base bid -> driver index, installed per compiled version
        self.redirect: Dict[int, int] = {}

    def _target_bid(self, pc: int) -> int:
        bid = super()._target_bid(pc)
        return self.redirect.get(bid, bid)


class VersionTable:
    """All runtime block versions of one code object, bound to one
    :class:`~repro.machine.blockjit.BlockTable` (and therefore one
    executor).  Rebuilt whenever the block table is."""

    def __init__(self, code: "CodeObject", table: "BlockTable",
                 executor: "Executor") -> None:
        self.code = code
        self.table = table
        self.executor = executor
        self.n_base = len(table.spans)
        #: base bid -> registered versions, in creation order
        self.versions: Dict[int, List[BlockVersion]] = {}
        #: driver index -> version
        self.by_index: Dict[int, BlockVersion] = {}
        #: driver index -> base bid (identity below n_base; -1 = poison)
        self.base_of: List[int] = list(range(self.n_base))
        #: per-version execution counts (index = BlockVersion.slot)
        self.hits: List[int] = []
        #: base bids whose driver slot is wrapped by a dispatcher
        self.dispatched: Dict[int, object] = {}
        self.created = 0
        self.compiled = 0
        self.widenings = 0
        self.widened: Dict[int, int] = {}
        self.negated_seeds = 0
        self.disabled = False
        #: base bids whose exits were statically re-pointed into
        #: successor versions (bid -> {successor base bid: driver index})
        self.rechained: Dict[int, Dict[int, int]] = {}
        self._rechain_fns: Dict[int, object] = {}
        self._rechain_placeholders: Dict[int, object] = {}
        self._gain_memo: Dict[Tuple[int, FrozenSet], bool] = {}
        self._key_memo: Dict[FrozenSet, FrozenSet] = {}
        self._seeding = False
        self._compiler: Optional[_VersionCompiler] = None
        self._ctx = None
        self.active = (
            getattr(executor, "lbbv", False)
            and getattr(executor, "blockjit", False)
            and getattr(executor, "typed_blocks", False)
            and not table.flags_live
            and not table.demoted
            and getattr(code, "_tier_rung", 0) < 2
            and not getattr(code, "_supervise_demoted", False)
        )
        if self.active:
            from ..analysis.typeflow import version_analysis

            self.ctx = version_analysis(code)
            if self.ctx.flags_live or not self.ctx.static_entry:
                self.active = False
            else:
                self._static_keys = {
                    bid: self._key(entry)
                    for bid, entry in self.ctx.static_entry.items()
                }
                self._seed()
        else:
            self.ctx = None

    # -- helpers ---------------------------------------------------------

    def _key(self, state) -> FrozenSet:
        from ..analysis.typeflow import version_key

        snapshot = frozenset(state)
        cached = self._key_memo.get(snapshot)
        if cached is None:
            cached = self._key_memo[snapshot] = version_key(snapshot)
        return cached

    def base_bid(self, bid: object) -> object:
        """Map a driver index a version body returned onto its base
        block id (identity for base indices and non-indices); used by
        the sentinel so version exits compare equal to the stepped
        twin's base exits."""
        if type(bid) is int and self.n_base <= bid < len(self.base_of):
            base = self.base_of[bid]
            return base if base >= 0 else self.n_base
        return bid

    def disable(self) -> None:
        """Stop creating, compiling into, or dispatching versions.

        Existing driver entries stay (the block table's own ``demote``
        turns them stepped); placeholders hit after disable still
        compile-and-run for the in-flight dispatch but no longer patch
        the driver."""
        self.disabled = True

    def _entry_state(self, bid: int, key) -> FrozenSet:
        return frozenset(key | self.ctx.static_entry.get(bid, frozenset()))

    # -- registration ----------------------------------------------------

    def _seed(self) -> None:
        """Pre-register versions for the statically visible type-states.

        Two seed sources, both lazy (only keys, plans and dispatchers
        exist up front; bodies compile on first execution):

        * **Hoisted-guard states.** Every block whose static typed plan
          carries entry guards gets a version keyed by those guard
          facts.  The dispatcher subsumes the hoisted guard test (same
          predicate, same count), the version body is guard-free, and —
          the actual payoff — chained edges from versions whose state
          re-establishes the facts (loop back edges, post-check
          fallthroughs) enter with **zero** guards, where the static
          tier re-evaluates its hoisted guard on every execution.

        * **Edge states.** For every block whose site the static tier
          could not elide guard-free, each incoming edge whose
          individual state *does* prove the site (the precision the
          per-block meet lost) gets a version keyed by that state's
          guardable facts.

        * **Merge-lost edge states.** The per-block meet is exactly
          where the static tier loses precision: an edge whose source
          state proves facts the destination's merged entry cannot.
          Every such edge whose facts transitively reach a site the
          richer state elides (``_chain_gain``) seeds a version of the
          destination keyed by the lost facts — and the *source* block
          is **rechained**: its exit indices are re-pointed at the
          version, statically, so the version is entered with zero
          guards on every execution of that edge.

        Runtime re-seeding (negated states from tripped guards) adds
        more through the same capped request path.
        """
        from ..analysis.typeflow import guardable_fact

        rechain: Dict[int, Dict[int, int]] = {}
        self._seeding = True
        try:
            for bid, entry in sorted(self.ctx.static_entry.items()):
                edge_states: Dict[int, FrozenSet] = {}
                for succ, state in self.ctx.out_states(bid, entry):
                    if 0 <= succ < self.n_base:
                        key = self._key(state)
                        held = edge_states.get(succ)
                        edge_states[succ] = (
                            key if held is None else held & key
                        )
                targets: Dict[int, int] = {}
                for succ in sorted(edge_states):
                    lost = edge_states[succ] - self._static_keys.get(
                        succ, frozenset()
                    )
                    if not lost or not self._chain_gain(succ, lost):
                        continue
                    index = self.request(succ, lost)
                    if index != succ:
                        targets[succ] = index
                if targets:
                    rechain[bid] = targets
            for bid, static_plan in sorted(self.table.typed_plans.items()):
                if not static_plan.guards:
                    continue
                key = frozenset(
                    f for f in static_plan.guards if guardable_fact(f)
                )
                if key:
                    self.request(bid, key)
            incoming: Dict[int, List[FrozenSet]] = {}
            for bid, entry in self.ctx.static_entry.items():
                for succ, state in self.ctx.out_states(bid, entry):
                    if 0 <= succ < self.n_base:
                        incoming.setdefault(succ, []).append(
                            self._key(state)
                        )
            for bid in sorted(incoming):
                if self.ctx.sites.get(bid) is None:
                    continue
                static_plan = self.table.typed_plans.get(bid)
                if static_plan is not None and not static_plan.guards:
                    continue  # base fused already elides with zero guards
                for key in incoming[bid]:
                    if self.ctx.plan_for(bid, self._entry_state(bid, key)):
                        self.request(bid, key)
        finally:
            self._seeding = False
        for bid, targets in rechain.items():
            self._install_rechain(bid, targets)
        for bid in sorted(self.versions):
            self._regen_dispatcher(bid)

    def _chain_gain(self, bid: int, extra: FrozenSet) -> bool:
        """Does entering ``bid`` with ``extra`` facts beyond its static
        entry eventually pay?  True when the richer state — propagated
        forward until it decays to the static meet — reaches any block
        where it buys a guard-free plan the static tier lacks (no plan
        at all, or a plan behind entry guards).  Keeps seeding and the
        compile-time chain walk from minting pass-through versions that
        can never elide anything."""
        memo_key = (bid, extra)
        cached = self._gain_memo.get(memo_key)
        if cached is not None:
            return cached
        seen = set()
        frontier = [(bid, self._entry_state(bid, extra))]
        gain = False
        while frontier:
            b, state = frontier.pop()
            if b in seen:
                continue
            seen.add(b)
            gained = self._key(state) - self._static_keys.get(
                b, frozenset()
            )
            if not gained:
                continue  # decayed to the static meet: nothing new
            static_plan = self.table.typed_plans.get(b)
            if (static_plan is None or static_plan.guards) and \
                    self.ctx.plan_for(b, state):
                gain = True
                break
            for succ, out in self.ctx.out_states(b, frozenset(state)):
                if 0 <= succ < self.n_base:
                    frontier.append((succ, out))
        self._gain_memo[memo_key] = gain
        return gain

    def request(self, bid: int, key) -> int:
        """Resolve (registering if needed) the best version of ``bid``
        for incoming state ``key``; returns a driver index, or ``bid``
        itself when the base block is already optimal or the table
        widened.  Never compiles — bodies are lazy."""
        if not self.active or self.disabled or self.table.demoted:
            return bid
        if not (0 <= bid < self.n_base):
            return bid
        static = self._static_keys.get(bid)
        if static is None:  # unreachable for the must-analysis: no seed
            return bid      # state to specialize against, stay generic
        extra = frozenset(f for f in key if f not in static)
        if not extra:
            return bid
        existing = self.versions.setdefault(bid, [])
        for version in existing:
            if version.key == extra:
                return version.index
        if len(existing) < MAX_VERSIONS:
            return self._create(bid, extra).index
        # Widen: reuse the most specific registered subset of the state,
        # else fall back to the base block.  Creation is capped, so the
        # version population is finite and specialization terminates.
        best = None
        for version in existing:
            if version.key <= extra and (
                best is None
                or len(version.key) > len(best.key)
                or (len(version.key) == len(best.key)
                    and sorted(map(repr, version.key))
                    < sorted(map(repr, best.key)))
            ):
                best = version
        if best is not None:
            return best.index
        self.widenings += 1
        self.widened[bid] = self.widened.get(bid, 0) + 1
        return bid

    def observe_negated(self, check_id: int) -> Optional[int]:
        """Runtime re-seed from a tripped guard: register (and dispatch
        into) a version keyed by the *negated* fact of the failing
        check.

        Only parity facts are invertible inside the guard vocabulary
        (``par(r, p)`` failing proves ``par(r, 1-p)``); other tags
        negate to set-complements the lattice cannot represent.  The
        negated version is typically a pass-through (the site fact is
        now provably false, so nothing elides *here*) whose value is
        downstream: its dispatcher entry recognizes the post-deopt
        state immediately and its chained edges carry the negated fact
        to any successor it does prove."""
        if not self.active or self.disabled or self.table.demoted:
            return None
        for bid, site in self.ctx.sites.items():
            if site.check_id != check_id:
                continue
            fact = site.fact
            if fact is None or fact[0] != "par":
                return None
            negated = ("par", fact[1], 1 - fact[2])
            before = self.created
            index = self.request(bid, frozenset((negated,)))
            if index == bid:
                return None
            if self.created > before:
                version = self.by_index[index]
                version.negated = True
                self.negated_seeds += 1
                self._regen_dispatcher(bid)
            return index
        return None

    def _create(self, bid: int, extra: FrozenSet) -> BlockVersion:
        version = BlockVersion(bid, extra)
        version.plan = self.ctx.plan_for(bid, self._entry_state(bid, extra))
        version.slot = len(self.hits)
        self.hits.append(0)
        version.index = self._alloc_index(version)
        self.versions[bid].append(version)
        self.by_index[version.index] = version
        self.created += 1
        if version.plan is not None and not self._seeding:
            self._regen_dispatcher(bid)
        return version

    def _alloc_index(self, version: BlockVersion) -> int:
        driver = self.table.driver
        if len(driver) == self.n_base:
            # First version entry: interpose the poison slot so the
            # off-end/corrupt target sentinel (n_blocks) keeps raising
            # IndexError exactly as the bare driver lookup did.
            driver.append((float("inf"), _poison, _poison))
            self.table.auditable.append(False)
            self.base_of.append(-1)
        index = len(driver)
        block = self.table.blocks[version.bid]
        cost = float("inf") if self.table.demoted else block.total_cost
        driver.append((cost, self._make_placeholder(version), block.stepped))
        self.table.auditable.append(self.table.auditable[version.bid])
        self.base_of.append(version.bid)
        return index

    # -- rechained base blocks -------------------------------------------

    def _install_rechain(self, bid: int, targets: Dict[int, int]) -> None:
        """Re-point ``bid``'s exits into successor versions — lazily.

        The driver slot is swapped for a placeholder that compiles the
        rechained body (same span, same typed plan, same cost and
        stepped twin — only the returned successor indices differ) on
        the block's first post-seed execution.  The redirect is sound
        with **zero** guards because the promoted facts come from the
        must-analysis of this block's own static entry: they hold on
        every execution of the edge, unconditionally."""
        self.rechained[bid] = targets

        def _placeholder(regs, fregs, frame, special, heap, cycles,
                         _bid=bid):
            fn = self._compile_rechain(_bid)
            return fn(regs, fregs, frame, special, heap, cycles)

        self._rechain_placeholders[bid] = _placeholder
        if not self.table.demoted and not self.disabled:
            cost, _orig, stepped = self.table.driver[bid]
            self.table.driver[bid] = (cost, _placeholder, stepped)

    def _compile_rechain(self, bid: int):
        """Compile (idempotently) the rechained body of base block
        ``bid``: the block's own static assembly — typed variant plus
        generic guard-failure twin when its plan carries guards — with
        exit indices redirected into the seeded successor versions.
        The generic twin redirects too: the promoted facts derive from
        the static entry, not from the plan's guards, so they hold on
        the guard-failure path as well."""
        fn = self._rechain_fns.get(bid)
        if fn is not None:
            return fn
        start, end = self.table.spans[bid]
        block = self.table.blocks[bid]
        plan = self.table.typed_plans.get(bid)
        compiler = self._compiler_for()
        compiler.redirect = dict(self.rechained[bid])
        try:
            sources = []
            if plan is not None and plan.guards:
                sources.append(compiler._assemble(
                    bid, start, end, block, stepped=False, generic=True
                ))
            sources.append(compiler._assemble(
                bid, start, end, block, stepped=False, plan=plan
            ))
        finally:
            compiler.redirect = {}
        source = "\n".join(sources)
        compiled = _COMPILED_SOURCES.get(source)
        if compiled is None:
            compiled = _COMPILED_SOURCES[source] = compile(
                source, "<lbbv>", "exec"
            )
        exec(compiled, compiler.glb)  # noqa: S102 - generated from decoded
        fn = compiler.glb.pop(f"_blk_f{bid}")
        self._rechain_fns[bid] = fn
        if bid in self.dispatched:
            # A dispatcher wrapped this slot after the placeholder went
            # in; its fallback resolves _vf{bid} as a global, so the
            # swap below retargets already-generated dispatch code.
            self.dispatched[bid] = fn
            compiler.glb[f"_vf{bid}"] = fn
        if not self.table.demoted and not self.disabled:
            cost, current, stepped = self.table.driver[bid]
            if current is self._rechain_placeholders.get(bid):
                self.table.driver[bid] = (cost, fn, stepped)
        return fn

    # -- compilation -----------------------------------------------------

    def _compiler_for(self) -> _VersionCompiler:
        compiler = self._compiler
        if compiler is None:
            compiler = self._compiler = _VersionCompiler(
                self.code, self.executor, self.table
            )
            compiler.glb["vstat"] = self.hits
            compiler.glb["blocks"] = self.table.driver
        return compiler

    def _make_placeholder(self, version: BlockVersion):
        def _placeholder(regs, fregs, frame, special, heap, cycles):
            fn = self.compile_version(version)
            return fn(regs, fregs, frame, special, heap, cycles)

        return _placeholder

    def compile_version(self, version: BlockVersion):
        """Compile the version body (idempotent), patch its driver slot,
        and return the compiled closure.

        The body is the block's typed-variant assembly under the
        version's entry state — guard-free by construction
        (``plan_for`` only returns plans whose facts the state already
        implies) — with exit indices redirected into successor versions
        wherever the outgoing edge state establishes their keys.
        """
        if version.compiled is not None:
            return version.compiled
        bid = version.bid
        start, end = self.table.spans[bid]
        block = self.table.blocks[bid]
        entry = self._entry_state(bid, version.key)
        # Guard-free chained edges: meet the per-edge states of multi-
        # edge successors, then promote every edge whose state proves a
        # (possibly newly registered) successor version's full key.
        edge_states: Dict[int, FrozenSet] = {}
        for succ, state in self.ctx.out_states(bid, entry):
            key = self._key(state)
            held = edge_states.get(succ)
            edge_states[succ] = key if held is None else (held & key)
        redirect: Dict[int, int] = {}
        for succ in sorted(edge_states):
            lost = edge_states[succ] - self._static_keys.get(
                succ, frozenset()
            )
            if not lost or not self._chain_gain(succ, lost):
                continue
            target = self.request(succ, lost)
            if target != succ:
                redirect[succ] = target
                version.chained_out.append((succ, target))
        # Pass-through versions (no guard-free plan of their own) keep
        # the block's *static* plan — hoisted guards included — so a
        # chain link never elides less than the base slot it replaces.
        body_plan = version.plan
        if body_plan is None:
            body_plan = self.table.typed_plans.get(bid)
        compiler = self._compiler_for()
        compiler.redirect = redirect
        try:
            source = compiler._assemble(
                bid, start, end, block, stepped=False, plan=body_plan
            )
            twin = None
            if body_plan is not None and body_plan.guards:
                twin = compiler._assemble(
                    bid, start, end, block, stepped=False, generic=True
                )
        finally:
            compiler.redirect = {}
        head, _, body = source.partition("\n")
        head = head.replace(f"def _blk_f{bid}(", f"def _vb{version.index}(", 1)
        source = (
            head + f"\n    vstat[{version.slot}] += 1\n    tstat[6] += 1\n"
            + body
        )
        if twin is not None:
            # The guard-failure twin is version-private (each version
            # carries its own redirect map), so both definition and the
            # tail-call in the typed body get a per-version name.  The
            # redirect stays sound on the failure path: promoted facts
            # come from the version's entry state, not its guards.
            gname = f"_vbg{version.index}"
            source = source.replace(f"_blk_g{bid}(", f"{gname}(")
            source = (
                twin.replace(f"def _blk_g{bid}(", f"def {gname}(", 1)
                .replace(f"_blk_g{bid}(", f"{gname}(")
                + "\n" + source
            )
        compiled = _COMPILED_SOURCES.get(source)
        if compiled is None:
            compiled = _COMPILED_SOURCES[source] = compile(
                source, "<lbbv>", "exec"
            )
        exec(compiled, compiler.glb)  # noqa: S102 - generated from decoded
        fn = compiler.glb.pop(f"_vb{version.index}")
        version.compiled = fn
        self.compiled += 1
        engine = getattr(self.executor, "engine", None)
        if engine is not None and getattr(
            getattr(engine, "config", None), "verify", False
        ):
            from ..analysis.mclint import assert_version_chains_clean

            assert_version_chains_clean(self)
        if not self.table.demoted and not self.disabled:
            self.table.driver[version.index] = (
                block.total_cost, fn, block.stepped,
            )
        return fn

    # -- dispatch --------------------------------------------------------

    def _regen_dispatcher(self, bid: int) -> None:
        """(Re)generate the entry dispatcher wrapping ``bid``'s driver
        slot: shared guard tests per candidate version, in creation
        order, tail-calling the first fully-proven version via the live
        driver (so lazy placeholders and patched bodies both resolve);
        all-fail falls through to the original fused closure."""
        if self.table.demoted or self.disabled:
            return
        # Dispatch tests are paid on *every* base entry, so a candidate
        # is only worth testing when its key costs no more than what a
        # hit saves: the static plan's own hoisted guards, or — when
        # the static tier elides nothing here — the two-check floor
        # (branch + condition) a guard-free plan removes.  Fatter keys
        # stay chain-only: reached guard-free through predecessor
        # versions, never probed at the base slot.  Cheapest key first,
        # creation order breaking ties.
        static_plan = self.table.typed_plans.get(bid)
        budget = (
            len(static_plan.guards)
            if static_plan is not None and static_plan.guards
            else 2
        )
        candidates = [
            v for v in self.versions.get(bid, ())
            if v.negated or (v.plan is not None and len(v.key) <= budget)
        ]
        candidates.sort(key=lambda v: len(v.key))
        if not candidates:
            return
        compiler = self._compiler_for()
        if bid not in self.dispatched:
            # Capture the original typed/generic fused closure before
            # the slot is patched; the dispatcher's fallback call and
            # the trace tier both want the unwrapped body.
            self.dispatched[bid] = self.table.driver[bid][1]
        compiler.glb[f"_vf{bid}"] = self.dispatched[bid]
        lines: List[str] = []
        for version in candidates:
            depth = 0
            for fact in sorted(version.key, key=repr):
                setup, cond = compiler._guard_test(fact)
                pad = "    " * depth
                lines.append(f"{pad}tstat[3] += 1")
                lines.extend(pad + s for s in setup)
                lines.append(f"{pad}if not ({cond}):")
                depth += 1
            pad = "    " * depth
            lines.append(f"{pad}tstat[5] += 1")
            lines.append(
                f"{pad}return blocks[{version.index}][1]"
                "(regs, fregs, frame, special, heap, cycles)"
            )
        lines.append(
            f"return _vf{bid}(regs, fregs, frame, special, heap, cycles)"
        )
        source = (
            f"def _vd{bid}(regs, fregs, frame, special, heap, cycles):\n"
            + "".join(f"    {line}\n" for line in lines)
        )
        compiled = _COMPILED_SOURCES.get(source)
        if compiled is None:
            compiled = _COMPILED_SOURCES[source] = compile(
                source, "<lbbv>", "exec"
            )
        exec(compiled, compiler.glb)  # noqa: S102 - generated guard tests
        dispatcher = compiler.glb.pop(f"_vd{bid}")
        cost, _fused, stepped = self.table.driver[bid]
        self.table.driver[bid] = (cost, dispatcher, stepped)

    # -- reporting -------------------------------------------------------

    def occupancy(self) -> Dict[int, int]:
        return {bid: len(vs) for bid, vs in self.versions.items() if vs}

    def state_report(self) -> List[Dict[str, object]]:
        """Structured per-version report for stats/blockcost surfaces."""
        from ..analysis.typeflow import render_fact

        rows: List[Dict[str, object]] = []
        for bid in sorted(self.versions):
            for version in self.versions[bid]:
                rows.append({
                    "block": bid,
                    "index": version.index,
                    "state": tuple(sorted(
                        render_fact(f) for f in version.key
                    )),
                    "hits": self.hits[version.slot],
                    "compiled": version.compiled is not None,
                    "elides_site": version.plan is not None,
                    "negated": version.negated,
                    "chained_out": [
                        (succ, target) for succ, target in version.chained_out
                    ],
                })
        return rows


def attach_versions(code: "CodeObject", table: "BlockTable",
                    executor: "Executor") -> VersionTable:
    """Bind (or rebuild) the code object's version table against the
    current block table; cached on ``code._versions`` and torn down with
    it on every degradation-ladder descent."""
    versions = getattr(code, "_versions", None)
    if versions is not None and versions.table is table:
        return versions
    versions = VersionTable(code, table, executor)
    code._versions = versions
    return versions
